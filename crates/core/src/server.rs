//! Concurrent sketch-serving middleware (the paper's deployment model,
//! Sec. 6 / 9.5).
//!
//! A [`PbdsServer`] owns an `Arc<Database>` plus a shared
//! [`SketchCatalog`] and serves a stream of
//! parameterized query instances from any number of concurrent
//! [`PbdsSession`]s. Each session:
//!
//! 1. **templatizes** the incoming instance (or accepts an already-split
//!    `(template, binding)` pair),
//! 2. **consults the catalog** — a memoized reuse check against the sketches
//!    captured so far,
//! 3. on a hit, **instruments** the query with the stored sketch and
//!    executes the narrowed plan,
//! 4. on a miss, executes the plain query and — when the self-tuning
//!    [`Strategy`] says so — **enqueues capture work** for a background
//!    worker pool, so capture cost never sits on the query's critical path
//!    (the paper's middleware amortizes capture across the stream; a
//!    synchronous capture would make the *first* user pay it).
//!
//! Results always contain exactly the rows plain execution would produce
//! (bag equality; row *order* of unsorted results may differ with the chosen
//! access path): sketches only narrow *where* the engine looks, never *what*
//! the query means, and the top-k runtime re-validation falls back to plain
//! execution when a stored sketch turns out not to cover the new instance.

use crate::catalog::SketchCatalog;
use crate::instrument::UsePredicateStyle;
use crate::pbds::PbdsError;
use crate::tuning::{estimate_selectivity, execute_with_reuse, Action, QueryRecord, Strategy};
use pbds_algebra::{templatize, Expr, LogicalPlan, QueryTemplate};
use pbds_exec::{CompiledExpr, Engine, EngineProfile};
use pbds_persist::{
    encode_op, read_catalog, read_snapshot, write_catalog, write_snapshot, MutationWal, WalOp,
    WalOpRef, CATALOG_FILE, SNAPSHOT_FILE, WAL_FILE,
};
use pbds_provenance::{capture_sketches_with_profile, CaptureConfig};
use pbds_storage::{Database, PartitionRef, Relation, Row, Value};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;

/// Configuration of a [`PbdsServer`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Engine profile used by sessions and capture workers.
    pub profile: EngineProfile,
    /// Self-tuning strategy deciding when to enqueue capture work.
    pub strategy: Strategy,
    /// Predicate style used when instrumenting with a sketch.
    pub style: UsePredicateStyle,
    /// Number of fragments for captured range partitions.
    pub fragments: usize,
    /// Background capture worker threads.
    pub capture_workers: usize,
    /// Morsel-parallel scan workers per query execution (1 = sequential).
    pub scan_parallelism: usize,
    /// Automatic checkpoint policy for durable servers: after this many
    /// WAL-logged mutations the server checkpoints (snapshot + catalog
    /// export + WAL truncation) on the mutator's thread, bounding both WAL
    /// growth and replay time. `None` disables the policy (checkpoints then
    /// happen only via [`PbdsServer::checkpoint`] /
    /// [`PbdsServer::shutdown`]). Ignored for in-memory servers.
    pub checkpoint_every: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            profile: EngineProfile::Indexed,
            strategy: Strategy::Eager {
                selectivity_threshold: 0.75,
            },
            style: UsePredicateStyle::BinarySearch,
            fragments: 256,
            capture_workers: 1,
            scan_parallelism: 1,
            checkpoint_every: Some(256),
        }
    }
}

/// One served query: the result relation plus the execution record.
#[derive(Debug, Clone)]
pub struct ServedQuery {
    /// The query result.
    pub relation: Relation,
    /// What the session did and what it cost.
    pub record: QueryRecord,
    /// True when this miss enqueued background capture work.
    pub capture_enqueued: bool,
}

struct CaptureTask {
    template: QueryTemplate,
    binding: Vec<Value>,
}

/// State shared between sessions, capture workers and mutators.
struct ServerShared {
    /// The served database, swapped atomically by [`PbdsServer::apply_mutation`].
    /// Sessions and capture workers take an `Arc` snapshot per unit of work,
    /// so every query executes against one consistent database state.
    db: RwLock<Arc<Database>>,
    /// Serializes mutators: the whole read-snapshot → copy-on-write → swap
    /// cycle runs under this lock, so concurrent `apply_mutation` calls are
    /// linearized and no update can be lost.
    mutation_lock: Mutex<()>,
    catalog: Arc<SketchCatalog>,
    engine: Engine,
    config: ServerConfig,
    /// Capture tasks enqueued but not yet finished, with a condvar for
    /// [`PbdsServer::drain`].
    in_flight: Mutex<usize>,
    drained: Condvar,
    /// Completed background captures and their cumulative wall-clock nanos.
    captures_done: AtomicU64,
    capture_nanos: AtomicU64,
}

impl ServerShared {
    /// The current database snapshot.
    fn snapshot(&self) -> Arc<Database> {
        Arc::clone(&self.db.read().expect("database lock poisoned"))
    }

    fn capture_finished(&self) {
        let mut n = self.in_flight.lock().expect("in_flight poisoned");
        *n -= 1;
        if *n == 0 {
            self.drained.notify_all();
        }
    }
}

/// A data mutation applied through the serving middleware.
#[derive(Debug, Clone)]
pub enum Mutation {
    /// Append rows at the tail of the table.
    Append(Vec<Row>),
    /// Delete every row matching the predicate (evaluated against the
    /// table's schema; NULL counts as not matching).
    DeleteWhere(Expr),
}

/// What [`PbdsServer::apply_mutation`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MutationOutcome {
    /// The mutated table.
    pub table: String,
    /// The table's new data epoch (unchanged for an empty append or a
    /// delete matching nothing).
    pub epoch: u64,
    /// Rows appended or deleted.
    pub rows_affected: usize,
}

/// Durable state of a server opened over a durability directory.
struct Persistence {
    dir: PathBuf,
    wal: MutationWal,
    /// Sequence number the next WAL record will carry.
    next_seq: u64,
    /// Mutations logged since the last checkpoint (drives the automatic
    /// checkpoint policy).
    since_checkpoint: usize,
}

/// What [`PbdsServer::open`] recovered from disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Catalog entries imported (all of them epoch-valid against the
    /// recovered database).
    pub catalog_imported: usize,
    /// Catalog entries dropped as epoch-stale.
    pub catalog_dropped: usize,
    /// WAL mutations replayed on top of the snapshot (records the snapshot
    /// already covered are skipped by sequence number).
    pub wal_replayed: usize,
}

/// The concurrent sketch-serving middleware. See the [module docs](self).
pub struct PbdsServer {
    shared: Arc<ServerShared>,
    /// `None` once shut down; dropping the sender stops the workers.
    capture_tx: Option<Sender<CaptureTask>>,
    workers: Vec<JoinHandle<()>>,
    /// Durability state; `None` for a purely in-memory server.
    persist: Option<Mutex<Persistence>>,
    /// Set by [`PbdsServer::open`].
    recovery: Option<RecoveryReport>,
}

impl std::fmt::Debug for PbdsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PbdsServer")
            .field("config", &self.shared.config)
            .field("catalog", &self.shared.catalog)
            .finish()
    }
}

impl PbdsServer {
    /// Start a server with a fresh catalog.
    pub fn new(db: Arc<Database>, config: ServerConfig) -> Self {
        PbdsServer::with_catalog(db, Arc::new(SketchCatalog::default()), config)
    }

    /// Start a server over an existing (possibly shared) catalog.
    pub fn with_catalog(
        db: Arc<Database>,
        catalog: Arc<SketchCatalog>,
        config: ServerConfig,
    ) -> Self {
        let shared = Arc::new(ServerShared {
            db: RwLock::new(db),
            mutation_lock: Mutex::new(()),
            catalog,
            engine: Engine::new(config.profile).with_parallelism(config.scan_parallelism),
            config,
            in_flight: Mutex::new(0),
            drained: Condvar::new(),
            captures_done: AtomicU64::new(0),
            capture_nanos: AtomicU64::new(0),
        });
        let (tx, rx) = channel::<CaptureTask>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..config.capture_workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&rx);
                std::thread::spawn(move || capture_worker(&shared, &rx))
            })
            .collect();
        PbdsServer {
            shared,
            capture_tx: Some(tx),
            workers,
            persist: None,
            recovery: None,
        }
    }

    /// Initialize a durability directory with `db` as its first snapshot and
    /// start a durable server over it. Any stale WAL or catalog file left in
    /// the directory (e.g. from a previous experiment) is reset — `create`
    /// means "this database is the new initial state"; use
    /// [`PbdsServer::open`] to resume an existing directory instead.
    pub fn create(
        dir: &Path,
        db: Arc<Database>,
        config: ServerConfig,
    ) -> Result<PbdsServer, PbdsError> {
        std::fs::create_dir_all(dir).map_err(pbds_persist::PersistError::from)?;
        // Reset the WAL and catalog *before* renaming the new snapshot in:
        // a crash anywhere in this sequence leaves either the previous
        // incarnation intact (old snapshot + emptied WAL/catalog — a
        // consistent, merely cold state) or the new initial state. Writing
        // the snapshot first instead would open a window where open() could
        // replay the previous incarnation's WAL onto the new database.
        let (mut wal, stale) = MutationWal::open(&dir.join(WAL_FILE))?;
        if !stale.is_empty() {
            wal.truncate()?;
        }
        write_catalog(&dir.join(CATALOG_FILE), &Default::default())?;
        write_snapshot(&dir.join(SNAPSHOT_FILE), &db, 0)?;
        let mut server = PbdsServer::new(db, config);
        server.persist = Some(Mutex::new(Persistence {
            dir: dir.to_path_buf(),
            wal,
            next_seq: 1,
            since_checkpoint: 0,
        }));
        Ok(server)
    }

    /// Open a durable server from a durability directory written by
    /// [`PbdsServer::create`] / [`PbdsServer::checkpoint`]:
    ///
    /// 1. the **snapshot** is read back (tables with their persisted
    ///    `epoch` / `data_epoch`; derived artifacts rebuild lazily);
    /// 2. the persisted **catalog** is imported — every entry is validated
    ///    against the recovered tables' data epochs and dropped if stale, so
    ///    no restart can resurrect a sketch describing other data;
    /// 3. the **WAL** is replayed through the same mutation path a live
    ///    server uses (records the snapshot already covers are skipped by
    ///    sequence number; a torn tail is truncated to the longest
    ///    whole-record prefix), maintaining the imported catalog entries
    ///    across each replayed mutation exactly as live serving would.
    ///
    /// The result serves with a warm catalog: the first instance of a
    /// template captured before the restart reuses its sketch with no
    /// recapture. See [`PbdsServer::recovery_report`].
    pub fn open(dir: &Path, config: ServerConfig) -> Result<PbdsServer, PbdsError> {
        let (mut db, applied_seq) = read_snapshot(&dir.join(SNAPSHOT_FILE))?;
        let catalog = Arc::new(SketchCatalog::default());
        let import = catalog.import(&db, read_catalog(&dir.join(CATALOG_FILE))?);
        let (wal, records) = MutationWal::open(&dir.join(WAL_FILE))?;
        let mut next_seq = applied_seq + 1;
        let mut replayed = 0usize;
        for record in records {
            if record.seq <= applied_seq {
                continue; // the snapshot already includes this mutation
            }
            let (table, mutation) = match record.op {
                WalOp::Append { table, rows } => (table, Mutation::Append(rows)),
                WalOp::DeleteWhere { table, predicate } => {
                    (table, Mutation::DeleteWhere(predicate))
                }
            };
            // A record was logged only after the mutation succeeded in
            // memory, and replay starts from the same state, so replay
            // errors indicate corruption rather than a bad mutation.
            let (_, maintenance) = mutate_database(&mut db, &table, mutation).map_err(|e| {
                pbds_persist::PersistError::corrupt(format!(
                    "WAL record {} does not replay: {e}",
                    record.seq
                ))
            })?;
            maintain_catalog(&catalog, &db, &table, &maintenance);
            next_seq = record.seq + 1;
            replayed += 1;
        }
        let mut server = PbdsServer::with_catalog(Arc::new(db), catalog, config);
        server.persist = Some(Mutex::new(Persistence {
            dir: dir.to_path_buf(),
            wal,
            next_seq,
            since_checkpoint: replayed,
        }));
        server.recovery = Some(RecoveryReport {
            catalog_imported: import.imported,
            catalog_dropped: import.dropped,
            wal_replayed: replayed,
        });
        Ok(server)
    }

    /// What [`PbdsServer::open`] recovered (`None` for servers not opened
    /// from a durability directory).
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        self.recovery
    }

    /// True when this server persists its state to a durability directory.
    pub fn is_durable(&self) -> bool {
        self.persist.is_some()
    }

    /// Checkpoint the durable state: write a snapshot of the current
    /// database (recording the WAL sequence it includes), export the sketch
    /// catalog, then truncate the WAL. Both files are written atomically
    /// (temp + rename), and the ordering tolerates a crash at any point: a
    /// snapshot without the matching WAL truncation skips the already
    /// included records by sequence number, and a catalog file older than
    /// the snapshot merely loses entries to the epoch check on import.
    ///
    /// Errors with [`PbdsError::NotDurable`] on an in-memory server.
    pub fn checkpoint(&self) -> Result<(), PbdsError> {
        let _serialized = self
            .shared
            .mutation_lock
            .lock()
            .expect("mutation lock poisoned");
        self.checkpoint_locked()
    }

    /// Checkpoint body; the caller must hold the mutation lock so the
    /// database cannot move between "snapshot written" and "WAL truncated".
    fn checkpoint_locked(&self) -> Result<(), PbdsError> {
        let Some(persist) = &self.persist else {
            return Err(PbdsError::NotDurable);
        };
        let mut p = persist.lock().expect("persistence state poisoned");
        self.checkpoint_with(&mut p)
    }

    /// Checkpoint body for callers already holding both the mutation lock
    /// and the persistence state.
    fn checkpoint_with(&self, p: &mut Persistence) -> Result<(), PbdsError> {
        let db = self.shared.snapshot();
        write_snapshot(&p.dir.join(SNAPSHOT_FILE), &db, p.next_seq - 1)?;
        // Captures may land concurrently; the export is simply the set of
        // entries present now. A capture finishing after the export is lost
        // from *this* checkpoint — an optimization, never an answer.
        write_catalog(&p.dir.join(CATALOG_FILE), &self.shared.catalog.export())?;
        p.wal.truncate()?;
        p.since_checkpoint = 0;
        Ok(())
    }

    /// Graceful shutdown: drain in-flight captures so their sketches make it
    /// into the persisted catalog, checkpoint (durable servers), and stop
    /// the worker pool. In-memory servers just drain and stop.
    pub fn shutdown(self) -> Result<(), PbdsError> {
        self.drain();
        if self.persist.is_some() {
            self.checkpoint()?;
        }
        Ok(()) // dropping `self` joins the capture workers
    }

    /// The catalog this server reads and (through capture workers) writes.
    pub fn catalog(&self) -> &Arc<SketchCatalog> {
        &self.shared.catalog
    }

    /// A snapshot of the served database (the state as of the last applied
    /// mutation).
    pub fn db(&self) -> Arc<Database> {
        self.shared.snapshot()
    }

    /// Apply a data mutation to a served table, maintaining every derived
    /// layer: the storage epoch advances (invalidating zone maps, indexes,
    /// columnar chunks and statistics), and the shared [`SketchCatalog`] is
    /// told to extend or invalidate its stored sketches, reuse memos,
    /// partitions and safe-attribute choices.
    ///
    /// Mutations are serialized against each other, and against in-flight
    /// session workers via database snapshots: the table is mutated
    /// copy-on-write and the new database is swapped in atomically, so every
    /// query — including ones running while the mutation lands — executes
    /// against exactly one consistent state, and every query admitted after
    /// `apply_mutation` returns observes the mutation. Serving therefore
    /// stays linearizable: queries and mutations behave as if executed one
    /// at a time in admission order.
    ///
    /// On a durable server the mutation is also appended to the WAL and
    /// fsynced **before** it becomes visible (or is reported to the caller),
    /// so an acknowledged mutation survives a crash; when the automatic
    /// checkpoint policy ([`ServerConfig::checkpoint_every`]) comes due, the
    /// checkpoint runs on this call before it returns.
    pub fn apply_mutation(
        &self,
        table: &str,
        mutation: Mutation,
    ) -> Result<MutationOutcome, PbdsError> {
        let shared = &self.shared;
        let _serialized = shared.mutation_lock.lock().expect("mutation lock poisoned");
        let current = shared.snapshot();
        let mut db = (*current).clone();
        // Encode the WAL record body from the borrowed mutation before it is
        // consumed — no clone of a bulk append's rows, and nothing is
        // encoded at all on in-memory servers.
        let wal_bytes = self.persist.as_ref().map(|_| {
            encode_op(match &mutation {
                Mutation::Append(rows) => WalOpRef::Append { table, rows },
                Mutation::DeleteWhere(predicate) => WalOpRef::DeleteWhere { table, predicate },
            })
        });
        let (outcome, maintenance) = mutate_database(&mut db, table, mutation)?;
        // Write-ahead: the record must be durable before the mutation is
        // visible to any session or acknowledged to the caller. On failure
        // nothing is swapped in and the catalog is untouched.
        let mut checkpoint_due = false;
        if let (Some(persist), Some(bytes)) = (&self.persist, wal_bytes) {
            let mut p = persist.lock().expect("persistence state poisoned");
            let seq = p.next_seq;
            if p.wal.append_encoded(seq, &bytes).is_err() {
                // The WAL may be poisoned by an earlier failure (a torn
                // append that could not be rolled back, or a checkpoint
                // whose truncation died half way). A checkpoint is the
                // recovery move in both cases: it persists every state the
                // log was covering into the snapshot and rebuilds the log
                // from scratch — after which this record can be appended.
                // If even the checkpoint fails, the mutation is refused
                // (nothing has become visible) and the next one retries.
                self.checkpoint_with(&mut p)?;
                p.wal.append_encoded(seq, &bytes)?;
            }
            p.next_seq += 1;
            p.since_checkpoint += 1;
            checkpoint_due = shared
                .config
                .checkpoint_every
                .is_some_and(|n| p.since_checkpoint >= n);
        }
        maintain_catalog(&shared.catalog, &db, table, &maintenance);
        *shared.db.write().expect("database lock poisoned") = Arc::new(db);
        if checkpoint_due {
            // Still under the mutation lock: the snapshot written here is
            // exactly the state the just-logged record produced. The
            // mutation itself is already durable and visible at this point,
            // so a checkpoint failure must not be reported as a mutation
            // failure (a retrying caller would double-apply); the WAL keeps
            // the record and the next mutation retries the checkpoint.
            if let Err(e) = self.checkpoint_locked() {
                eprintln!(
                    "pbds: automatic checkpoint failed ({e}); mutations remain \
                     recoverable from the WAL and the checkpoint will be retried"
                );
            }
        }
        Ok(outcome)
    }

    /// Open a session. Sessions are lightweight and `Send`; open one per
    /// serving thread.
    pub fn session(&self) -> PbdsSession<'_> {
        PbdsSession { server: self }
    }

    /// Serve a whole stream of `(template, binding)` instances across
    /// `threads` session threads, preserving stream order in the returned
    /// vector. Queries are striped over the threads (query `i` runs on
    /// thread `i % threads`), so runs with different thread counts serve the
    /// same stream.
    pub fn serve_stream(
        &self,
        stream: &[(QueryTemplate, Vec<Value>)],
        threads: usize,
    ) -> Result<Vec<ServedQuery>, PbdsError> {
        let threads = threads.clamp(1, stream.len().max(1));
        let mut per_thread: Vec<Vec<(usize, ServedQuery)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let session = self.session();
                    s.spawn(move || {
                        let mut out = Vec::new();
                        for (i, (template, binding)) in stream.iter().enumerate() {
                            if i % threads != t {
                                continue;
                            }
                            match session.serve(template, binding) {
                                Ok(served) => out.push((i, served)),
                                Err(e) => return Err(e),
                            }
                        }
                        Ok(out)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("session thread panicked"))
                .collect::<Result<Vec<_>, PbdsError>>()
        })?;
        let mut merged: Vec<(usize, ServedQuery)> = per_thread.drain(..).flatten().collect();
        merged.sort_by_key(|(i, _)| *i);
        Ok(merged.into_iter().map(|(_, q)| q).collect())
    }

    /// Block until every enqueued capture task has finished.
    pub fn drain(&self) {
        let guard = self.shared.in_flight.lock().expect("in_flight poisoned");
        let _unused = self
            .shared
            .drained
            .wait_while(guard, |n| *n > 0)
            .expect("in_flight poisoned");
    }

    /// `(completed background captures, cumulative capture wall-clock)`.
    pub fn capture_totals(&self) -> (u64, std::time::Duration) {
        (
            self.shared.captures_done.load(Ordering::Relaxed),
            std::time::Duration::from_nanos(self.shared.capture_nanos.load(Ordering::Relaxed)),
        )
    }
}

impl Drop for PbdsServer {
    fn drop(&mut self) {
        // Closing the channel ends the worker loops once the queue is empty.
        self.capture_tx.take();
        for w in self.workers.drain(..) {
            let _unused = w.join();
        }
    }
}

/// A lightweight per-thread handle for serving queries.
pub struct PbdsSession<'s> {
    server: &'s PbdsServer,
}

impl PbdsSession<'_> {
    /// Serve one instance of a template.
    pub fn serve(
        &self,
        template: &QueryTemplate,
        binding: &[Value],
    ) -> Result<ServedQuery, PbdsError> {
        let shared = &self.server.shared;
        // One snapshot per query: the whole serve — safety analysis, reuse
        // lookup, execution — sees a single consistent database state even
        // while mutations land concurrently. The catalog's per-entry epoch
        // check guarantees no sketch maintained past this snapshot's epoch
        // (nor one lagging behind it) is ever offered against it.
        let db = shared.snapshot();
        let plan = template.instantiate(binding);
        if shared.config.strategy == Strategy::NoPbds {
            return self.plain(&db, template, &plan, false);
        }

        let Some(_attrs) = shared.catalog.safe_attrs(&db, template) else {
            return self.plain(&db, template, &plan, false);
        };

        if let Some(est) = estimate_selectivity(&db, &plan) {
            if est > shared.config.strategy.selectivity_threshold() {
                return self.plain(&db, template, &plan, false);
            }
        }

        // Catalog hit (including the revalidation fallback): same code path
        // as the self-tuning executor, so the bookkeeping cannot drift.
        if let Some((record, relation)) = execute_with_reuse(
            &db,
            &shared.engine,
            &shared.catalog,
            shared.config.style,
            template,
            binding,
            &plan,
        )? {
            return Ok(ServedQuery {
                relation,
                record,
                capture_enqueued: false,
            });
        }

        // Miss: maybe enqueue background capture, then answer plainly. The
        // session never waits for the capture.
        let enqueued = shared
            .config
            .strategy
            .capture_on_miss(&shared.catalog, template)
            && self.enqueue_capture(template, binding);
        self.plain(&db, template, &plan, enqueued)
    }

    /// Templatize a raw query instance (extracting its literal parameters)
    /// and serve it. This is the entry point for callers that do not manage
    /// templates themselves; instances of the same query shape share
    /// sketches through the extracted template's name *and* structural
    /// fingerprint, so reusing a name for a different query shape is safe.
    pub fn serve_plan(&self, name: &str, plan: &LogicalPlan) -> Result<ServedQuery, PbdsError> {
        let (template, binding) = templatize(name, plan);
        self.serve(&template, &binding)
    }

    fn enqueue_capture(&self, template: &QueryTemplate, binding: &[Value]) -> bool {
        let shared = &self.server.shared;
        if !shared.catalog.begin_capture(template, binding) {
            return false; // an identical capture is already in flight
        }
        let Some(tx) = self.server.capture_tx.as_ref() else {
            shared.catalog.finish_capture(template, binding);
            return false;
        };
        *shared.in_flight.lock().expect("in_flight poisoned") += 1;
        let task = CaptureTask {
            template: template.clone(),
            binding: binding.to_vec(),
        };
        if tx.send(task).is_err() {
            shared.catalog.finish_capture(template, binding);
            shared.capture_finished();
            return false;
        }
        true
    }

    fn plain(
        &self,
        db: &Database,
        template: &QueryTemplate,
        plan: &LogicalPlan,
        capture_enqueued: bool,
    ) -> Result<ServedQuery, PbdsError> {
        let shared = &self.server.shared;
        let out = shared.engine.execute(db, plan)?;
        Ok(ServedQuery {
            record: QueryRecord {
                template: template.name().to_string(),
                action: Action::Plain,
                elapsed: out.stats.elapsed,
                result_rows: out.relation.len(),
                stats: out.stats,
            },
            relation: out.relation,
            capture_enqueued,
        })
    }
}

/// Catalog maintenance owed after a database mutation (computed by
/// [`mutate_database`], applied by [`maintain_catalog`]). Split in two so a
/// durable server can make the WAL record durable *between* mutating its
/// copy-on-write database and touching the shared catalog.
enum Maintenance {
    /// Nothing changed (empty append / delete matching nothing).
    None,
    /// Rows were appended starting at `old_len`; the table's data epoch was
    /// `prev_epoch` before the append.
    Append { old_len: usize, prev_epoch: u64 },
    /// Rows were deleted; the table's data epoch was `prev_epoch` before.
    Delete { prev_epoch: u64 },
}

/// Apply a mutation to a database in place (no catalog, no WAL): the shared
/// core of [`PbdsServer::apply_mutation`] and WAL replay, so a replayed
/// record takes exactly the code path the live mutation took.
fn mutate_database(
    db: &mut Database,
    table: &str,
    mutation: Mutation,
) -> Result<(MutationOutcome, Maintenance), PbdsError> {
    let prev_epoch = db.table(table)?.data_epoch();
    match mutation {
        Mutation::Append(rows) => {
            let appended = rows.len();
            let old_len = db.table(table)?.len();
            let epoch = db.append_rows(table, rows)?;
            let maintenance = if appended > 0 {
                Maintenance::Append {
                    old_len,
                    prev_epoch,
                }
            } else {
                Maintenance::None
            };
            Ok((
                MutationOutcome {
                    table: table.to_string(),
                    epoch,
                    rows_affected: appended,
                },
                maintenance,
            ))
        }
        Mutation::DeleteWhere(predicate) => {
            // Evaluate the predicate first (propagating evaluation errors
            // before anything is deleted), then delete by mask.
            let doomed: Vec<bool> = {
                let t = db.table(table)?;
                let compiled = CompiledExpr::compile(&predicate, t.schema());
                t.rows()
                    .iter()
                    .map(|row| compiled.matches(row))
                    .collect::<Result<_, _>>()?
            };
            let mut i = 0;
            let deleted = db.delete_where(table, |_| {
                let d = doomed[i];
                i += 1;
                d
            })?;
            let epoch = db.table(table)?.data_epoch();
            let maintenance = if deleted > 0 {
                Maintenance::Delete { prev_epoch }
            } else {
                Maintenance::None
            };
            Ok((
                MutationOutcome {
                    table: table.to_string(),
                    epoch,
                    rows_affected: deleted,
                },
                maintenance,
            ))
        }
    }
}

/// Run the sketch-catalog maintenance owed for a mutation (`db` is the
/// post-mutation database).
fn maintain_catalog(
    catalog: &SketchCatalog,
    db: &Database,
    table: &str,
    maintenance: &Maintenance,
) {
    match *maintenance {
        Maintenance::None => {}
        Maintenance::Append {
            old_len,
            prev_epoch,
        } => {
            let t = db.table(table).expect("mutated table exists");
            catalog.on_append(db, table, &t.rows()[old_len..], prev_epoch);
        }
        Maintenance::Delete { prev_epoch } => catalog.on_delete(db, table, prev_epoch),
    }
}

/// Background capture loop: pull tasks until the channel closes.
fn capture_worker(shared: &ServerShared, rx: &Mutex<Receiver<CaptureTask>>) {
    loop {
        // Hold the lock only while receiving, so workers pull tasks
        // round-robin instead of serializing on one another's captures.
        let task = {
            let rx = rx.lock().expect("capture receiver poisoned");
            rx.recv()
        };
        let Ok(task) = task else {
            return; // channel closed: server is shutting down
        };
        // Contain panics: a failed capture only loses an optimization, but a
        // leaked `in_flight` count would deadlock every future `drain()` and
        // a leaked pending mark would block the binding's capture forever.
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_capture(shared, &task)));
        shared.catalog.finish_capture(&task.template, &task.binding);
        shared.capture_finished();
        if result.is_err() {
            eprintln!(
                "pbds: background capture for template {:?} panicked; \
                 the query stream is unaffected",
                task.template.name()
            );
        }
    }
}

fn run_capture(shared: &ServerShared, task: &CaptureTask) {
    let started = std::time::Instant::now();
    // The capture runs against one database snapshot; if a mutation lands
    // mid-capture, the catalog's epoch-checked insert rejects the (now
    // stale) sketch set rather than storing pre-mutation provenance.
    let db = shared.snapshot();
    // A concurrent capture may have landed a sketch that already covers this
    // binding; re-check before paying the capture cost. The quiet probe
    // keeps hit/miss counters and LRU stamps reflecting serving traffic.
    if shared
        .catalog
        .is_covered(&db, &task.template, &task.binding)
    {
        return;
    }
    let Some(attrs) = shared.catalog.safe_attrs(&db, &task.template) else {
        return;
    };
    let partitions: Vec<PartitionRef> = attrs
        .iter()
        .filter_map(|a| {
            shared
                .catalog
                .partition_for(&db, a, shared.config.fragments)
        })
        .collect();
    if partitions.is_empty() {
        return;
    }
    let plan = task.template.instantiate(&task.binding);
    let Ok(capture) = capture_sketches_with_profile(
        &db,
        &plan,
        &partitions,
        &CaptureConfig::optimized(),
        shared.config.profile,
    ) else {
        return; // capture failure only loses the optimization, never a result
    };
    if shared
        .catalog
        .insert(&db, &task.template, &task.binding, capture.sketches)
        .is_none()
    {
        return; // rejected as stale: a mutation landed while capturing
    }
    shared.captures_done.fetch_add(1, Ordering::Relaxed);
    shared
        .capture_nanos
        .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
}

// Concurrency audit: the server and its catalog are shared across session
// threads and capture workers.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SketchCatalog>();
    assert_send_sync::<PbdsServer>();
    assert_send_sync::<ServerShared>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use pbds_algebra::{col, lit, param, AggExpr, AggFunc};
    use pbds_storage::{DataType, Schema, TableBuilder};

    fn sales_db() -> Arc<Database> {
        let schema = Schema::from_pairs(&[("grp", DataType::Int), ("amount", DataType::Int)]);
        let mut b = TableBuilder::new("sales", schema);
        b.block_size(100).index("grp");
        for i in 0..5_000i64 {
            b.push(vec![Value::Int(i % 50), Value::Int((i * 37) % 1000 + 1)]);
        }
        let mut db = Database::new();
        db.add_table(b.build());
        Arc::new(db)
    }

    fn having_template() -> QueryTemplate {
        QueryTemplate::new(
            "sales-having",
            LogicalPlan::scan("sales")
                .aggregate(
                    vec!["grp"],
                    vec![AggExpr::new(AggFunc::Sum, col("amount"), "total")],
                )
                .filter(col("total").gt(param(0))),
        )
    }

    #[test]
    fn miss_enqueues_capture_then_hits_after_drain() {
        let db = sales_db();
        let server = PbdsServer::new(Arc::clone(&db), ServerConfig::default());
        let session = server.session();
        let t = having_template();

        let first = session.serve(&t, &[Value::Int(50_000)]).unwrap();
        assert_eq!(first.record.action, Action::Plain);
        assert!(first.capture_enqueued, "miss should enqueue capture");
        server.drain();
        assert_eq!(server.catalog().stored_sketches(), 1);
        let (captures, _) = server.capture_totals();
        assert_eq!(captures, 1);

        // A tighter instance now reuses the captured sketch.
        let second = session.serve(&t, &[Value::Int(53_000)]).unwrap();
        assert_eq!(
            second.record.action,
            Action::UseSketch,
            "{:?}",
            second.record
        );
        // And scans less than the plain execution did.
        assert!(second.record.stats.rows_scanned < first.record.stats.rows_scanned);
    }

    #[test]
    fn results_match_plain_execution_regardless_of_action() {
        let db = sales_db();
        let server = PbdsServer::new(Arc::clone(&db), ServerConfig::default());
        let session = server.session();
        let engine = Engine::new(EngineProfile::Indexed);
        let t = having_template();
        for bound in [50_000, 53_000, 40_000, 52_000, 55_000] {
            let served = session.serve(&t, &[Value::Int(bound)]).unwrap();
            let plain = engine
                .execute(&db, &t.instantiate(&[Value::Int(bound)]))
                .unwrap();
            assert!(
                served.relation.bag_eq(&plain.relation),
                "bound {bound}: {:?}",
                served.record.action
            );
            server.drain(); // let captures land so later bounds exercise hits
        }
    }

    #[test]
    fn duplicate_misses_enqueue_only_one_capture() {
        let db = sales_db();
        let server = PbdsServer::new(Arc::clone(&db), ServerConfig::default());
        let t = having_template();
        let stream: Vec<(QueryTemplate, Vec<Value>)> = (0..8)
            .map(|_| (t.clone(), vec![Value::Int(50_000)]))
            .collect();
        let served = server.serve_stream(&stream, 4).unwrap();
        server.drain();
        let enqueued = served.iter().filter(|s| s.capture_enqueued).count();
        assert!(enqueued >= 1);
        // The pending-capture dedup keeps the store from collecting
        // duplicates of one binding.
        assert_eq!(server.catalog().stored_sketches(), 1);
    }

    #[test]
    fn serve_plan_templatizes_instances() {
        let db = sales_db();
        let server = PbdsServer::new(Arc::clone(&db), ServerConfig::default());
        let session = server.session();
        let make_plan = |bound: i64| {
            LogicalPlan::scan("sales")
                .aggregate(
                    vec!["grp"],
                    vec![AggExpr::new(AggFunc::Sum, col("amount"), "total")],
                )
                .filter(col("total").gt(lit(bound)))
        };
        let first = session.serve_plan("adhoc", &make_plan(50_000)).unwrap();
        assert!(first.capture_enqueued);
        server.drain();
        let second = session.serve_plan("adhoc", &make_plan(53_000)).unwrap();
        assert_eq!(second.record.action, Action::UseSketch);
    }

    #[test]
    fn append_mutation_keeps_serving_fresh_and_correct() {
        let db = sales_db();
        let server = PbdsServer::new(Arc::clone(&db), ServerConfig::default());
        let session = server.session();
        let t = having_template();
        let tight = vec![Value::Int(53_000)];
        session.serve(&t, &[Value::Int(50_000)]).unwrap();
        server.drain();
        assert_eq!(
            session.serve(&t, &tight).unwrap().record.action,
            Action::UseSketch
        );

        // Push two groups' totals around; every new row lands in an
        // existing fragment, so the stored sketch is extended, not dropped.
        let outcome = server
            .apply_mutation(
                "sales",
                Mutation::Append(
                    (0..60)
                        .map(|i| vec![Value::Int(i % 3), Value::Int(900)])
                        .collect(),
                ),
            )
            .unwrap();
        assert_eq!(outcome.rows_affected, 60);
        assert_eq!(server.db().table("sales").unwrap().len(), 5_060);

        let served = session.serve(&t, &tight).unwrap();
        let plain = Engine::new(EngineProfile::Indexed)
            .execute(&server.db(), &t.instantiate(&tight))
            .unwrap();
        assert!(
            served.relation.bag_eq(&plain.relation),
            "served result diverged from plain execution after append \
             (action {:?})",
            served.record.action
        );
        assert!(server.catalog().stats().extended >= 1);
        // The maintained sketch keeps answering without recapture.
        assert_eq!(served.record.action, Action::UseSketch);
    }

    #[test]
    fn delete_mutation_keeps_serving_fresh_and_correct() {
        let db = sales_db();
        let server = PbdsServer::new(Arc::clone(&db), ServerConfig::default());
        let session = server.session();
        let t = having_template();
        let tight = vec![Value::Int(53_000)];
        session.serve(&t, &[Value::Int(50_000)]).unwrap();
        server.drain();

        let outcome = server
            .apply_mutation("sales", Mutation::DeleteWhere(col("amount").gt(lit(900))))
            .unwrap();
        assert!(outcome.rows_affected > 0);
        let expected_len = 5_000 - outcome.rows_affected;
        assert_eq!(server.db().table("sales").unwrap().len(), expected_len);

        let served = session.serve(&t, &tight).unwrap();
        let plain = Engine::new(EngineProfile::Indexed)
            .execute(&server.db(), &t.instantiate(&tight))
            .unwrap();
        assert!(
            served.relation.bag_eq(&plain.relation),
            "served result diverged from plain execution after delete \
             (action {:?})",
            served.record.action
        );
    }

    #[test]
    fn bad_mutations_are_rejected_without_side_effects() {
        let db = sales_db();
        let server = PbdsServer::new(Arc::clone(&db), ServerConfig::default());
        // Wrong arity: nothing is appended, the snapshot is unchanged.
        let err = server
            .apply_mutation("sales", Mutation::Append(vec![vec![Value::Int(1)]]))
            .unwrap_err();
        assert!(matches!(
            err,
            PbdsError::Storage(pbds_storage::StorageError::ArityMismatch { .. })
        ));
        assert_eq!(server.db().table("sales").unwrap().len(), 5_000);
        // Unknown table.
        assert!(server
            .apply_mutation("nope", Mutation::Append(vec![]))
            .is_err());
        // A delete predicate referencing a missing column errors before
        // deleting anything.
        let err = server
            .apply_mutation("sales", Mutation::DeleteWhere(col("missing").gt(lit(0))))
            .unwrap_err();
        assert!(matches!(err, PbdsError::Exec(_)));
        assert_eq!(server.db().table("sales").unwrap().len(), 5_000);
    }

    /// A fresh scratch directory under the workspace `target/` dir (tests
    /// must not write outside the repository).
    fn test_dir(name: &str) -> PathBuf {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/core-unit-tests")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create test dir");
        dir
    }

    #[test]
    fn durable_server_reopens_with_a_warm_catalog() {
        let dir = test_dir("durable_warm");
        let db = sales_db();
        let t = having_template();
        let rows_before;
        {
            let server =
                PbdsServer::create(&dir, Arc::clone(&db), ServerConfig::default()).unwrap();
            let session = server.session();
            let first = session.serve(&t, &[Value::Int(50_000)]).unwrap();
            assert!(first.capture_enqueued);
            server.drain();
            assert_eq!(server.catalog().stored_sketches(), 1);
            rows_before = server.db().table("sales").unwrap().rows().to_vec();
            server.shutdown().unwrap();
        }

        let server = PbdsServer::open(&dir, ServerConfig::default()).unwrap();
        let report = server.recovery_report().unwrap();
        assert_eq!(report.catalog_imported, 1, "{report:?}");
        assert_eq!(report.catalog_dropped, 0);
        assert_eq!(report.wal_replayed, 0);
        assert_eq!(
            server.db().table("sales").unwrap().rows(),
            &rows_before[..],
            "recovered rows must be byte-identical"
        );
        // The very first query of the recovered server reuses the persisted
        // sketch — no recapture.
        let session = server.session();
        let served = session.serve(&t, &[Value::Int(53_000)]).unwrap();
        assert_eq!(
            served.record.action,
            Action::UseSketch,
            "{:?}",
            served.record
        );
        assert!(!served.capture_enqueued);
        let (captures, _) = server.capture_totals();
        assert_eq!(captures, 0, "warm start must not pay capture again");
    }

    #[test]
    fn uncheckpointed_mutations_replay_from_the_wal() {
        let dir = test_dir("durable_wal_replay");
        let db = sales_db();
        let t = having_template();
        let config = ServerConfig {
            checkpoint_every: None, // keep everything in the WAL
            ..ServerConfig::default()
        };
        let expected_rows;
        {
            let server = PbdsServer::create(&dir, Arc::clone(&db), config).unwrap();
            let session = server.session();
            session.serve(&t, &[Value::Int(50_000)]).unwrap();
            server.drain();
            server
                .apply_mutation(
                    "sales",
                    Mutation::Append(
                        (0..30)
                            .map(|i| vec![Value::Int(i % 3), Value::Int(800)])
                            .collect(),
                    ),
                )
                .unwrap();
            server
                .apply_mutation("sales", Mutation::DeleteWhere(col("amount").gt(lit(950))))
                .unwrap();
            expected_rows = server.db().table("sales").unwrap().rows().to_vec();
            // No shutdown, no checkpoint: simulate a crash.
            drop(server);
        }

        let server = PbdsServer::open(&dir, config).unwrap();
        let report = server.recovery_report().unwrap();
        assert_eq!(report.wal_replayed, 2, "{report:?}");
        assert_eq!(
            server.db().table("sales").unwrap().rows(),
            &expected_rows[..]
        );
        // Every surviving catalog entry is epoch-valid against the
        // recovered database (maintained through the replayed mutations or
        // dropped — never stale).
        let db_now = server.db();
        for entry in server.catalog().export().entries {
            for (table, epoch) in entry.capture_epochs {
                assert_eq!(
                    db_now.table(&table).unwrap().data_epoch(),
                    epoch,
                    "entry for {table} recovered epoch-stale"
                );
            }
        }
        // Serving still matches plain execution.
        let session = server.session();
        let served = session.serve(&t, &[Value::Int(53_000)]).unwrap();
        let plain = Engine::new(EngineProfile::Indexed)
            .execute(&server.db(), &t.instantiate(&[Value::Int(53_000)]))
            .unwrap();
        assert!(served.relation.bag_eq(&plain.relation));
    }

    #[test]
    fn automatic_checkpoint_policy_truncates_the_wal() {
        let dir = test_dir("durable_auto_checkpoint");
        let db = sales_db();
        let config = ServerConfig {
            checkpoint_every: Some(2),
            ..ServerConfig::default()
        };
        let server = PbdsServer::create(&dir, db, config).unwrap();
        let append = |i: i64| Mutation::Append(vec![vec![Value::Int(i % 50), Value::Int(10)]]);
        server.apply_mutation("sales", append(0)).unwrap();
        let (records, _) = pbds_persist::read_records(&dir.join(WAL_FILE)).unwrap();
        assert_eq!(records.len(), 1, "first mutation stays in the WAL");
        server.apply_mutation("sales", append(1)).unwrap();
        let (records, _) = pbds_persist::read_records(&dir.join(WAL_FILE)).unwrap();
        assert!(
            records.is_empty(),
            "second mutation must trigger the checkpoint and truncate"
        );
        // The checkpointed snapshot carries the post-mutation state.
        let (snap_db, _) = read_snapshot(&dir.join(SNAPSHOT_FILE)).unwrap();
        assert_eq!(snap_db.table("sales").unwrap().len(), 5_002);
        // A third mutation restarts the WAL with a fresh sequence.
        server.apply_mutation("sales", append(2)).unwrap();
        let (records, _) = pbds_persist::read_records(&dir.join(WAL_FILE)).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].seq, 3);
        drop(server);
        let reopened = PbdsServer::open(&dir, config).unwrap();
        assert_eq!(reopened.recovery_report().unwrap().wal_replayed, 1);
        assert_eq!(reopened.db().table("sales").unwrap().len(), 5_003);
    }

    #[test]
    fn create_over_a_stale_directory_discards_the_old_incarnation() {
        let dir = test_dir("durable_recreate");
        let config = ServerConfig {
            checkpoint_every: None,
            ..ServerConfig::default()
        };
        {
            let server = PbdsServer::create(&dir, sales_db(), config).unwrap();
            let session = server.session();
            session
                .serve(&having_template(), &[Value::Int(50_000)])
                .unwrap();
            server.drain();
            server
                .apply_mutation(
                    "sales",
                    Mutation::Append(vec![vec![Value::Int(1), Value::Int(5)]]),
                )
                .unwrap();
            server.checkpoint().unwrap(); // persist a catalog entry
            server
                .apply_mutation(
                    "sales",
                    Mutation::Append(vec![vec![Value::Int(2), Value::Int(6)]]),
                )
                .unwrap();
            drop(server); // leaves an uncheckpointed WAL record + catalog
        }
        // Re-create over the same directory with a different initial state:
        // the old incarnation's WAL and catalog must not leak into it.
        let schema = Schema::from_pairs(&[("x", DataType::Int)]);
        let mut fresh = Database::new();
        fresh.add_table(pbds_storage::Table::new(
            "other",
            schema,
            vec![vec![Value::Int(1)]],
        ));
        let server = PbdsServer::create(&dir, Arc::new(fresh), config).unwrap();
        drop(server);
        let reopened = PbdsServer::open(&dir, config).unwrap();
        let report = reopened.recovery_report().unwrap();
        assert_eq!(report.wal_replayed, 0, "{report:?}");
        assert_eq!(report.catalog_imported, 0, "{report:?}");
        assert_eq!(reopened.db().table_names(), vec!["other"]);
    }

    #[test]
    fn durability_calls_on_memory_servers_error() {
        let server = PbdsServer::new(sales_db(), ServerConfig::default());
        assert!(!server.is_durable());
        assert!(server.recovery_report().is_none());
        assert_eq!(server.checkpoint().unwrap_err(), PbdsError::NotDurable);
        // Shutdown of an in-memory server is still a clean no-op.
        server.shutdown().unwrap();
    }

    #[test]
    fn failed_mutations_are_not_logged_to_the_wal() {
        let dir = test_dir("durable_failed_mutation");
        let server = PbdsServer::create(&dir, sales_db(), ServerConfig::default()).unwrap();
        let err = server
            .apply_mutation("sales", Mutation::Append(vec![vec![Value::Int(1)]]))
            .unwrap_err();
        assert!(matches!(err, PbdsError::Storage(_)));
        let err = server
            .apply_mutation("sales", Mutation::DeleteWhere(col("missing").gt(lit(0))))
            .unwrap_err();
        assert!(matches!(err, PbdsError::Exec(_)));
        drop(server);
        let (records, _) = pbds_persist::read_records(&dir.join(WAL_FILE)).unwrap();
        assert!(
            records.is_empty(),
            "failed mutations must not be replayable"
        );
        let reopened = PbdsServer::open(&dir, ServerConfig::default()).unwrap();
        assert_eq!(reopened.db().table("sales").unwrap().len(), 5_000);
    }

    #[test]
    fn no_pbds_server_never_captures() {
        let db = sales_db();
        let server = PbdsServer::new(
            Arc::clone(&db),
            ServerConfig {
                strategy: Strategy::NoPbds,
                ..ServerConfig::default()
            },
        );
        let t = having_template();
        let stream: Vec<(QueryTemplate, Vec<Value>)> = (0..6)
            .map(|i| (t.clone(), vec![Value::Int(50_000 + i * 500)]))
            .collect();
        let served = server.serve_stream(&stream, 3).unwrap();
        server.drain();
        assert!(served.iter().all(|s| s.record.action == Action::Plain));
        assert_eq!(server.catalog().stored_sketches(), 0);
    }
}
