//! Concurrent sketch-serving middleware (the paper's deployment model,
//! Sec. 6 / 9.5).
//!
//! A [`PbdsServer`] owns an `Arc<Database>` plus a shared
//! [`SketchCatalog`] and serves a stream of
//! parameterized query instances from any number of concurrent
//! [`PbdsSession`]s. Each session:
//!
//! 1. **templatizes** the incoming instance (or accepts an already-split
//!    `(template, binding)` pair),
//! 2. **consults the catalog** — a memoized reuse check against the sketches
//!    captured so far,
//! 3. on a hit, **instruments** the query with the stored sketch and
//!    executes the narrowed plan,
//! 4. on a miss, executes the plain query and — when the self-tuning
//!    [`Strategy`] says so — **enqueues capture work** for a background
//!    worker pool, so capture cost never sits on the query's critical path
//!    (the paper's middleware amortizes capture across the stream; a
//!    synchronous capture would make the *first* user pay it).
//!
//! Results always contain exactly the rows plain execution would produce
//! (bag equality; row *order* of unsorted results may differ with the chosen
//! access path): sketches only narrow *where* the engine looks, never *what*
//! the query means, and the top-k runtime re-validation falls back to plain
//! execution when a stored sketch turns out not to cover the new instance.
//!
//! ## Failure model
//!
//! Long-lived middleware must degrade, not crash. The server runs a
//! fail-safe state machine ([`HealthState`]: `Healthy → Degraded → ReadOnly
//! → FailStop`) whose transitions are driven by the durability layer:
//! a failed WAL append/fsync refuses further writes (read-only) because an
//! acknowledgement it cannot back with durability would be a silent-loss
//! bug; a failed checkpoint merely degrades (the WAL still holds every
//! acknowledged record); repeated capture panics blow a fuse that disables
//! background capture (an optimization, never an answer). A janitor thread
//! repairs in the background — fresh WAL descriptor, re-verify, checkpoint
//! — with capped exponential backoff; success settles health, exhaustion
//! from read-only fail-stops the server. Every event is counted and logged
//! in [`RobustnessEvents`]. Fault drills use [`PbdsServer::create_with_io`]
//! / [`PbdsServer::open_with_io`] (deterministic injected I/O faults) and
//! [`PbdsServer::inject_panic`] (one-shot thread panics).

use crate::catalog::{CatalogDelta, SketchCatalog};
use crate::instrument::UsePredicateStyle;
use crate::pbds::PbdsError;
use crate::tuning::{estimate_selectivity, execute_with_reuse, Action, QueryRecord, Strategy};
use pbds_algebra::{templatize, Expr, LogicalPlan, QueryTemplate};
use pbds_exec::{CompiledExpr, Engine, EngineProfile};
use pbds_persist::{
    encode_op, read_catalog_with, read_snapshot_with, write_catalog_with, write_snapshot_with, Io,
    MutationWal, PersistError, PersistedCatalog, RealIo, WalOp, WalOpRef, CATALOG_FILE,
    SNAPSHOT_FILE, WAL_FILE,
};
use pbds_provenance::{capture_sketches_with_profile, CaptureConfig};
use pbds_storage::{Database, PartitionRef, Relation, Row, StorageError, Value};
use pbds_telemetry::{clock, span, Counter, Gauge, Histogram, MetricsSnapshot, Registry};
use std::collections::{HashMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::sync::Arc;

use pbds_sync::{LockHoldStat, TrackedCondvar, TrackedMutex, TrackedRwLock};
use std::thread::JoinHandle;

/// Configuration of a [`PbdsServer`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Engine profile used by sessions and capture workers.
    pub profile: EngineProfile,
    /// Self-tuning strategy deciding when to enqueue capture work.
    pub strategy: Strategy,
    /// Predicate style used when instrumenting with a sketch.
    pub style: UsePredicateStyle,
    /// Number of fragments for captured range partitions.
    pub fragments: usize,
    /// Background capture worker threads.
    pub capture_workers: usize,
    /// Morsel-parallel scan workers per query execution (1 = sequential).
    pub scan_parallelism: usize,
    /// Automatic checkpoint policy for durable servers: after this many
    /// WAL-logged mutations the server checkpoints (snapshot + catalog
    /// export + WAL truncation) on the commit thread, bounding both WAL
    /// growth and replay time. `None` disables the policy (checkpoints then
    /// happen only via [`PbdsServer::checkpoint`] /
    /// [`PbdsServer::shutdown`]). Ignored for in-memory servers.
    pub checkpoint_every: Option<usize>,
    /// Capacity of the bounded mutation ingest queue
    /// ([`PbdsServer::submit_mutation`]). When the queue is full, submitters
    /// block — backpressure instead of unbounded memory growth.
    pub ingest_queue_depth: usize,
    /// Maximum mutations the commit thread folds into one group commit
    /// (one WAL fsync + one copy-on-write fork + one snapshot swap). `1`
    /// degenerates to the per-mutation-fsync write path (the baseline the
    /// `fig_mutation` bench compares against).
    pub commit_batch_limit: usize,
    /// How many times the background janitor thread retries repairing a
    /// degraded durability layer (reopen-and-verify the WAL + checkpoint)
    /// before giving up, with capped exponential backoff between attempts.
    /// Exhausting the attempts while the server is read-only escalates it to
    /// [`HealthState::FailStop`]. `0` disables background repair entirely:
    /// the server then stays [`HealthState::ReadOnly`] (stable — never
    /// fail-stopped by the janitor) until an explicit
    /// [`PbdsServer::checkpoint`] succeeds. Ignored for in-memory servers.
    pub repair_attempts: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            profile: EngineProfile::Indexed,
            strategy: Strategy::Eager {
                selectivity_threshold: 0.75,
            },
            style: UsePredicateStyle::BinarySearch,
            fragments: 256,
            capture_workers: 1,
            scan_parallelism: 1,
            checkpoint_every: Some(256),
            ingest_queue_depth: 1024,
            commit_batch_limit: 128,
            repair_attempts: 8,
        }
    }
}

/// Fail-safe degradation state of a [`PbdsServer`]. Health only ever
/// escalates (`fetch_max` on the shared atom) while a failure is being
/// handled, and is settled back down only after a *successful* repair —
/// never optimistically. The lattice:
///
/// * [`HealthState::Healthy`] — full service.
/// * [`HealthState::Degraded`] — full service, but a non-critical component
///   failed (a checkpoint failed and will be retried; background capture was
///   disabled after repeated panics). Acknowledged writes are still durable
///   (the WAL holds them); the degradation costs recovery time, not data.
/// * [`HealthState::ReadOnly`] — a WAL append or fsync failed, so new writes
///   can no longer be made durable before acknowledgement. Writes are
///   refused fast with [`PbdsError::ReadOnly`]; reads keep serving from the
///   consistent in-memory state. The janitor retries repair with backoff.
/// * [`HealthState::FailStop`] — repair was exhausted from read-only.
///   Terminal: reads and writes are both refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// Full service.
    Healthy,
    /// Serving fully, but a non-critical durability component is impaired.
    Degraded,
    /// Writes refused (durability cannot be guaranteed); reads keep serving.
    ReadOnly,
    /// Terminal: repair exhausted, reads and writes both refused.
    FailStop,
}

impl HealthState {
    fn as_u8(self) -> u8 {
        self as u8
    }

    fn from_u8(v: u8) -> HealthState {
        match v {
            0 => HealthState::Healthy,
            1 => HealthState::Degraded,
            2 => HealthState::ReadOnly,
            _ => HealthState::FailStop,
        }
    }
}

impl std::fmt::Display for HealthState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HealthState::Healthy => write!(f, "healthy"),
            HealthState::Degraded => write!(f, "degraded"),
            HealthState::ReadOnly => write!(f, "read-only"),
            HealthState::FailStop => write!(f, "fail-stop"),
        }
    }
}

/// Snapshot of a server's robustness counters and recent event messages
/// ([`PbdsServer::robustness_events`]). Counters are cumulative over the
/// server's lifetime; `messages` holds the most recent human-readable events
/// (oldest first, bounded), replacing what used to be `eprintln!`
/// diagnostics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RobustnessEvents {
    /// Commit batches that panicked (their mutations were failed, not lost
    /// silently).
    pub commit_panics: u64,
    /// Background capture tasks that panicked.
    pub capture_panics: u64,
    /// Session threads that panicked under [`PbdsServer::serve_stream`].
    pub session_panics: u64,
    /// WAL batch appends that failed (each one degrades the server to
    /// read-only until repaired).
    pub wal_append_failures: u64,
    /// Automatic checkpoints that failed (mutations stay recoverable from
    /// the WAL; the janitor retries).
    pub checkpoint_failures: u64,
    /// Repair attempts made by the janitor thread.
    pub repair_attempts: u64,
    /// Repairs that succeeded (each one settles health back down).
    pub repairs_succeeded: u64,
    /// Corrupt persisted catalogs quarantined at [`PbdsServer::open`].
    pub catalogs_quarantined: u64,
    /// True once background capture was disabled after repeated panics.
    pub capture_disabled: bool,
    /// Most recent event messages, oldest first.
    pub messages: Vec<String>,
    /// Per-lock-class hold statistics (acquisitions, total/max hold time)
    /// from the `pbds-sync` tracked wrappers. The counters are
    /// **process-wide** — every server in the process shares its lock
    /// classes — and empty in release builds without the `lock-order`
    /// feature, where the wrappers are plain passthroughs.
    pub lock_holds: Vec<LockHoldStat>,
}

/// Where [`PbdsServer::inject_panic`] plants a one-shot panic (for fault
/// drills and the robustness test suite).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicSite {
    /// The next commit batch panics mid-commit.
    Commit = 0,
    /// The next background capture task panics.
    Capture = 1,
    /// The next served query panics its session thread.
    Session = 2,
}

/// Background capture is disabled after this many capture panics.
const MAX_CAPTURE_PANICS: u64 = 3;

/// Most recent robustness event messages retained.
const EVENT_LOG_CAP: usize = 32;

/// Janitor backoff between repair attempts is `1ms << (attempt - 2)`,
/// capped here.
const MAX_REPAIR_BACKOFF_MS: u64 = 64;

/// One served query: the result relation plus the execution record.
#[derive(Debug, Clone)]
pub struct ServedQuery {
    /// The query result.
    pub relation: Relation,
    /// What the session did and what it cost.
    pub record: QueryRecord,
    /// True when this miss enqueued background capture work.
    pub capture_enqueued: bool,
    /// The database snapshot this query was served against. A session takes
    /// exactly one snapshot per query, so `relation` must equal plain
    /// execution against this state — the linearizability suites assert
    /// exactly that, instead of guessing which published state a racing
    /// reader might have seen.
    pub snapshot: Arc<Database>,
}

struct CaptureTask {
    template: QueryTemplate,
    binding: Vec<Value>,
}

/// State shared between sessions, capture workers, submitters and the
/// commit thread.
struct ServerShared {
    /// The served database, swapped atomically once per commit batch.
    /// Sessions and capture workers take an `Arc` snapshot per unit of work,
    /// so every query executes against one consistent database state.
    db: TrackedRwLock<Arc<Database>>,
    /// Serializes the commit thread's batch application against explicit
    /// [`PbdsServer::checkpoint`] calls: the whole read-snapshot →
    /// copy-on-write → swap cycle runs under this lock, so the snapshot a
    /// checkpoint writes can never interleave with a half-applied batch.
    mutation_lock: TrackedMutex<()>,
    catalog: Arc<SketchCatalog>,
    engine: Engine,
    config: ServerConfig,
    /// Durability state; `None` for a purely in-memory server. Lives in the
    /// shared state so the commit thread can append and checkpoint.
    persist: Option<TrackedMutex<Persistence>>,
    /// Capture tasks enqueued but not yet finished, with a condvar for
    /// [`PbdsServer::drain`].
    in_flight: TrackedMutex<usize>,
    drained: TrackedCondvar,
    /// Mutations submitted to the ingest queue but not yet completed, with a
    /// condvar so [`PbdsServer::drain`] can also flush the write path.
    backlog: TrackedMutex<usize>,
    backlog_drained: TrackedCondvar,
    /// Registry-backed counters, gauges and latency histograms. Every
    /// write-path and robustness counter lives here; the typed views
    /// ([`CommitStats`], [`RobustnessEvents`]) and the Prometheus-style
    /// exposition ([`PbdsServer::metrics_snapshot`]) read the same atomics.
    metrics: ServerMetrics,
    /// Current [`HealthState`] as its `u8` discriminant. Escalations use
    /// `fetch_max` (health never accidentally improves under a race);
    /// settling back down happens only in [`ServerShared::settle_health`]
    /// after a successful repair.
    health: AtomicU8,
    /// Set once capture panicked [`MAX_CAPTURE_PANICS`] times; further
    /// capture work is refused at enqueue time.
    capture_disabled: AtomicBool,
    /// Bounded ring of recent event messages (see
    /// [`RobustnessEvents::messages`]).
    event_log: TrackedMutex<VecDeque<String>>,
    /// The span-tracer journal rendered at the moment the server hit
    /// [`HealthState::FailStop`] — `RecoveryReport`-style forensics showing
    /// the last phases every thread went through before the health lattice
    /// hit bottom. `None` until fail-stop; empty string when the tracer is
    /// disarmed (release build without `--features telemetry`).
    failstop_forensics: TrackedMutex<Option<String>>,
    /// Janitor wake-up state + condvar ([`ServerShared::request_repair`]).
    repair: TrackedMutex<RepairState>,
    repair_cv: TrackedCondvar,
    /// One-shot injected panics, indexed by [`PanicSite`] discriminant.
    injected_panics: [AtomicBool; 3],
}

/// Cached handles into the server's metrics [`Registry`]. Handles are
/// registered once at construction, so hot-path recording is a single
/// uncontended atomic op; [`PbdsServer::metrics_snapshot`] freezes the
/// registry (merged with the catalog's) into the `pbds_*` exposition.
struct ServerMetrics {
    registry: Registry,
    /// Completed background captures (`pbds_captures_done`) and their
    /// wall-clock latency distribution (`pbds_capture_seconds`).
    captures_done: Counter,
    capture_seconds: Histogram,
    /// Write-path counters (see [`CommitStats`]).
    mutations_submitted: Counter,
    mutations_committed: Counter,
    batched_commits: Counter,
    fsyncs: Counter,
    max_batch: Gauge,
    /// Latency of one WAL `append_batch` + fsync (`pbds_wal_fsync_seconds`).
    wal_fsync_seconds: Histogram,
    /// End-to-end served-query latency (`pbds_query_seconds`) and
    /// submit-to-durable mutation latency (`pbds_mutation_commit_seconds`).
    query_seconds: Histogram,
    mutation_commit_seconds: Histogram,
    queries_served: Counter,
    /// Deterministic execution totals accumulated over every served query.
    exec_rows_scanned: Counter,
    exec_blocks_skipped: Counter,
    /// Robustness counters (see [`RobustnessEvents`]).
    commit_panics: Counter,
    capture_panics: Counter,
    session_panics: Counter,
    wal_append_failures: Counter,
    checkpoint_failures: Counter,
    repair_attempts_made: Counter,
    repairs_succeeded: Counter,
    catalogs_quarantined: Counter,
}

impl ServerMetrics {
    fn new() -> ServerMetrics {
        let registry = Registry::new();
        ServerMetrics {
            captures_done: registry.counter("pbds_captures_done"),
            capture_seconds: registry.time_histogram("pbds_capture_seconds"),
            mutations_submitted: registry.counter("pbds_commit_mutations_submitted"),
            mutations_committed: registry.counter("pbds_commit_mutations_committed"),
            batched_commits: registry.counter("pbds_commit_batches"),
            fsyncs: registry.counter("pbds_wal_fsyncs"),
            max_batch: registry.gauge("pbds_commit_max_batch"),
            wal_fsync_seconds: registry.time_histogram("pbds_wal_fsync_seconds"),
            query_seconds: registry.time_histogram("pbds_query_seconds"),
            mutation_commit_seconds: registry.time_histogram("pbds_mutation_commit_seconds"),
            queries_served: registry.counter("pbds_queries_served"),
            exec_rows_scanned: registry.counter("pbds_exec_rows_scanned"),
            exec_blocks_skipped: registry.counter("pbds_exec_blocks_skipped"),
            commit_panics: registry.counter("pbds_robustness_commit_panics"),
            capture_panics: registry.counter("pbds_robustness_capture_panics"),
            session_panics: registry.counter("pbds_robustness_session_panics"),
            wal_append_failures: registry.counter("pbds_robustness_wal_append_failures"),
            checkpoint_failures: registry.counter("pbds_robustness_checkpoint_failures"),
            repair_attempts_made: registry.counter("pbds_robustness_repair_attempts"),
            repairs_succeeded: registry.counter("pbds_robustness_repairs_succeeded"),
            catalogs_quarantined: registry.counter("pbds_robustness_catalogs_quarantined"),
            registry,
        }
    }
}

/// Janitor thread wake-up state.
#[derive(Default)]
struct RepairState {
    wanted: bool,
    shutdown: bool,
}

impl ServerShared {
    /// The current database snapshot.
    fn snapshot(&self) -> Arc<Database> {
        Arc::clone(&self.db.read())
    }

    fn capture_finished(&self) {
        let mut n = self.in_flight.lock();
        *n -= 1;
        if *n == 0 {
            self.drained.notify_all();
        }
    }

    fn writes_finished(&self, count: usize) {
        let mut n = self.backlog.lock();
        *n -= count;
        if *n == 0 {
            self.backlog_drained.notify_all();
        }
    }

    /// Checkpoint body for callers holding both the mutation lock and the
    /// persistence state (the commit thread, the janitor and
    /// [`PbdsServer::checkpoint`]).
    fn checkpoint_with(&self, p: &mut Persistence) -> Result<(), PbdsError> {
        let db = self.snapshot();
        write_snapshot_with(
            p.io.as_ref(),
            &p.dir.join(SNAPSHOT_FILE),
            &db,
            p.next_seq - 1,
        )?;
        // Captures may land concurrently; the export is simply the set of
        // entries present now. A capture finishing after the export is lost
        // from *this* checkpoint — an optimization, never an answer.
        write_catalog_with(
            p.io.as_ref(),
            &p.dir.join(CATALOG_FILE),
            &self.catalog.export(),
        )?;
        p.wal.truncate()?;
        p.since_checkpoint = 0;
        Ok(())
    }

    /// Acquire the mutation-serialization lock, recovering from poisoning.
    /// The lock guards no data (`Mutex<()>`): it only orders commit batches,
    /// explicit checkpoints and repair campaigns against each other. A panic
    /// while holding it is already contained (the commit loop catches it and
    /// requests checkpoint repair), so honoring the poison flag would turn
    /// one contained panic into a permanently wedged write path.
    fn serialize_mutations(&self) -> pbds_sync::MutexGuard<'_, ()> {
        self.mutation_lock.lock()
    }

    /// Current health state.
    fn health(&self) -> HealthState {
        HealthState::from_u8(self.health.load(Ordering::SeqCst))
    }

    /// Escalate health to at least `to` (never downward — `fetch_max`) and
    /// log why. Transitions taken on the write path run under the mutation
    /// lock, so a batch can never commit concurrently with the degradation
    /// it should have observed.
    fn degrade(&self, to: HealthState, why: String) {
        let prev = self.health.fetch_max(to.as_u8(), Ordering::SeqCst);
        if prev < to.as_u8() {
            self.note(format!(
                "health {} -> {to}: {why}",
                HealthState::from_u8(prev)
            ));
            if to == HealthState::FailStop {
                // Terminal transition: freeze the span-tracer journal as
                // forensics — the last phases every thread went through
                // before the server stopped (RecoveryReport-style, but for
                // the failure instead of the restart).
                let mut forensics = self.failstop_forensics.lock();
                if forensics.is_none() {
                    *forensics = Some(pbds_telemetry::render_journal());
                }
            }
        } else {
            self.note(why);
        }
    }

    /// Settle health back down after a *successful* repair or checkpoint:
    /// to `Degraded` while capture stays disabled, else `Healthy`.
    /// `FailStop` is terminal and never settled. Callers hold the mutation
    /// lock, so the write path observes the restored state consistently.
    fn settle_health(&self) {
        loop {
            let cur = self.health.load(Ordering::SeqCst);
            let target = if self.capture_disabled.load(Ordering::SeqCst) {
                HealthState::Degraded
            } else {
                HealthState::Healthy
            }
            .as_u8();
            if cur == HealthState::FailStop.as_u8() || cur <= target {
                return;
            }
            if self
                .health
                .compare_exchange(cur, target, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                self.note(format!(
                    "health {} -> {}: repair succeeded",
                    HealthState::from_u8(cur),
                    HealthState::from_u8(target)
                ));
                return;
            }
        }
    }

    /// Record an event message (bounded ring, oldest dropped).
    fn note(&self, msg: String) {
        let mut log = self.event_log.lock();
        if log.len() == EVENT_LOG_CAP {
            log.pop_front();
        }
        log.push_back(msg);
    }

    /// Wake the janitor thread to attempt repair (no-op without a janitor —
    /// in-memory servers and `repair_attempts: 0`).
    fn request_repair(&self) {
        let mut state = self.repair.lock();
        state.wanted = true;
        self.repair_cv.notify_all();
    }

    /// Consume a one-shot injected panic for `site`, panicking if armed.
    fn take_injected_panic(&self, site: PanicSite) {
        if self.injected_panics[site as usize].swap(false, Ordering::SeqCst) {
            panic!("injected {site:?} panic");
        }
    }
}

/// A data mutation applied through the serving middleware.
#[derive(Debug, Clone)]
pub enum Mutation {
    /// Append rows at the tail of the table.
    Append(Vec<Row>),
    /// Delete every row matching the predicate (evaluated against the
    /// table's schema; NULL counts as not matching).
    DeleteWhere(Expr),
}

/// What [`PbdsServer::apply_mutation`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MutationOutcome {
    /// The mutated table.
    pub table: String,
    /// The table's new data epoch (unchanged for an empty append or a
    /// delete matching nothing).
    pub epoch: u64,
    /// Rows appended or deleted.
    pub rows_affected: usize,
    /// WAL sequence number the mutation was logged under. `None` on
    /// in-memory servers and for no-op mutations (empty append, delete
    /// matching nothing), which write no WAL record.
    pub wal_seq: Option<u64>,
    /// Number of mutations the commit batch that acknowledged this one
    /// carried (all durable under the same fsync). `0` for mutations
    /// short-circuited before the ingest queue.
    pub batch_len: usize,
}

/// Write-path counters of a [`PbdsServer`] (see
/// [`PbdsServer::commit_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommitStats {
    /// Mutations accepted into the ingest queue (short-circuited no-ops are
    /// not counted).
    pub mutations_submitted: u64,
    /// Mutations completed successfully by the commit thread.
    pub mutations_committed: u64,
    /// Commit batches that applied at least one mutation — `committed ≫
    /// batched_commits` is group commit working.
    pub batched_commits: u64,
    /// WAL fsyncs issued (one per batch with at least one effective record;
    /// `0` on in-memory servers).
    pub fsyncs: u64,
    /// Largest batch committed so far.
    pub max_batch: u64,
}

/// Shared completion slot of one submitted mutation.
struct TicketState {
    done: TrackedMutex<Option<Result<MutationOutcome, PbdsError>>>,
    cv: TrackedCondvar,
}

impl TicketState {
    fn new() -> Arc<TicketState> {
        Arc::new(TicketState {
            done: TrackedMutex::new("server.ticket", None),
            cv: TrackedCondvar::new(),
        })
    }

    /// Complete the ticket; later completions (e.g. the panic backstop after
    /// a normal completion) are ignored.
    fn complete(&self, result: Result<MutationOutcome, PbdsError>) {
        let mut slot = self.done.lock();
        if slot.is_none() {
            *slot = Some(result);
            self.cv.notify_all();
        }
    }

    fn wait(&self) -> Result<MutationOutcome, PbdsError> {
        let mut slot = self.done.lock();
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self.cv.wait(slot);
        }
    }
}

/// Handle for a mutation submitted to the ingest queue
/// ([`PbdsServer::submit_mutation`]). The mutation is acknowledged —
/// durable on a durable server, visible to new snapshots — exactly when
/// [`MutationTicket::wait`] returns `Ok`. Dropping the ticket without
/// waiting is allowed; the mutation still commits.
#[must_use = "a ticket resolves to the mutation's outcome; drop it only if you don't need acknowledgement"]
pub struct MutationTicket {
    state: Arc<TicketState>,
}

impl MutationTicket {
    /// Block until the commit thread completes the mutation and return its
    /// outcome. On `Ok`, the mutation is durable (durable servers) and
    /// visible to every subsequently taken snapshot.
    pub fn wait(self) -> Result<MutationOutcome, PbdsError> {
        self.state.wait()
    }

    /// True once the mutation has been completed (successfully or not);
    /// [`MutationTicket::wait`] will then return without blocking.
    pub fn is_complete(&self) -> bool {
        self.state.done.lock().is_some()
    }
}

impl std::fmt::Debug for MutationTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MutationTicket")
            .field("complete", &self.is_complete())
            .finish()
    }
}

/// One queue entry: a mutation plus the ticket to complete.
struct WriteRequest {
    table: String,
    mutation: Mutation,
    ticket: Arc<TicketState>,
}

/// Durable state of a server opened over a durability directory.
struct Persistence {
    dir: PathBuf,
    /// The I/O layer every durable write goes through — [`RealIo`] in
    /// production, a fault-injecting one in the robustness suite
    /// ([`PbdsServer::create_with_io`] / [`PbdsServer::open_with_io`]).
    io: Arc<dyn Io>,
    wal: MutationWal,
    /// Sequence number the next WAL record will carry.
    next_seq: u64,
    /// Mutations logged since the last checkpoint (drives the automatic
    /// checkpoint policy).
    since_checkpoint: usize,
}

/// What [`PbdsServer::open`] recovered from disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Catalog entries imported (all of them epoch-valid against the
    /// recovered database).
    pub catalog_imported: usize,
    /// Catalog entries dropped as epoch-stale.
    pub catalog_dropped: usize,
    /// WAL mutations replayed on top of the snapshot (records the snapshot
    /// already covered are skipped by sequence number).
    pub wal_replayed: usize,
    /// True when the persisted catalog was corrupt and was quarantined
    /// (renamed aside) instead of aborting recovery: the catalog is an
    /// optimization, so the server comes up cold rather than not at all.
    /// Data files (snapshot, WAL) are never quarantined — their corruption
    /// still fails [`PbdsServer::open`].
    pub catalog_quarantined: bool,
}

/// The concurrent sketch-serving middleware. See the [module docs](self).
pub struct PbdsServer {
    shared: Arc<ServerShared>,
    /// `None` once shut down; dropping the sender stops the workers.
    capture_tx: Option<Sender<CaptureTask>>,
    workers: Vec<JoinHandle<()>>,
    /// Bounded ingest queue feeding the commit thread; dropping the sender
    /// lets the commit thread drain what is queued and exit.
    ingest_tx: Option<SyncSender<WriteRequest>>,
    commit_thread: Option<JoinHandle<()>>,
    /// Background repair thread (durable servers with `repair_attempts > 0`).
    janitor: Option<JoinHandle<()>>,
    /// Set by [`PbdsServer::open`].
    recovery: Option<RecoveryReport>,
}

impl std::fmt::Debug for PbdsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PbdsServer")
            .field("config", &self.shared.config)
            .field("catalog", &self.shared.catalog)
            .finish()
    }
}

impl PbdsServer {
    /// Start a server with a fresh catalog.
    pub fn new(db: Arc<Database>, config: ServerConfig) -> Self {
        PbdsServer::with_catalog(db, Arc::new(SketchCatalog::default()), config)
    }

    /// Start a server over an existing (possibly shared) catalog.
    pub fn with_catalog(
        db: Arc<Database>,
        catalog: Arc<SketchCatalog>,
        config: ServerConfig,
    ) -> Self {
        PbdsServer::build(db, catalog, config, None, None)
    }

    /// Assemble the shared state and spawn the capture workers and the
    /// commit thread. All constructors funnel through here so the commit
    /// thread always owns the (optional) durability state.
    fn build(
        db: Arc<Database>,
        catalog: Arc<SketchCatalog>,
        config: ServerConfig,
        persist: Option<Persistence>,
        recovery: Option<RecoveryReport>,
    ) -> Self {
        let shared = Arc::new(ServerShared {
            db: TrackedRwLock::new("server.db", db),
            mutation_lock: TrackedMutex::new("server.mutation", ()),
            catalog,
            engine: Engine::new(config.profile).with_parallelism(config.scan_parallelism),
            config,
            persist: persist.map(|p| TrackedMutex::new("server.persist", p)),
            in_flight: TrackedMutex::new("server.in_flight", 0),
            drained: TrackedCondvar::new(),
            backlog: TrackedMutex::new("server.backlog", 0),
            backlog_drained: TrackedCondvar::new(),
            metrics: ServerMetrics::new(),
            health: AtomicU8::new(HealthState::Healthy.as_u8()),
            capture_disabled: AtomicBool::new(false),
            event_log: TrackedMutex::new("server.event_log", VecDeque::new()),
            failstop_forensics: TrackedMutex::new("server.failstop_forensics", None),
            repair: TrackedMutex::new("server.repair", RepairState::default()),
            repair_cv: TrackedCondvar::new(),
            injected_panics: [
                AtomicBool::new(false),
                AtomicBool::new(false),
                AtomicBool::new(false),
            ],
        });
        if recovery.is_some_and(|r| r.catalog_quarantined) {
            shared.metrics.catalogs_quarantined.inc();
            shared.note(
                "persisted catalog was corrupt; quarantined it and started \
                 with a cold catalog"
                    .into(),
            );
        }
        let (tx, rx) = channel::<CaptureTask>();
        let rx = Arc::new(TrackedMutex::new("server.capture_rx", rx));
        let workers = (0..config.capture_workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&rx);
                std::thread::spawn(move || capture_worker(&shared, &rx))
            })
            .collect();
        let (ingest_tx, ingest_rx) = sync_channel::<WriteRequest>(config.ingest_queue_depth.max(1));
        let commit_thread = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || commit_loop(&shared, &ingest_rx))
        };
        let janitor = (shared.persist.is_some() && config.repair_attempts > 0).then(|| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || janitor_loop(&shared))
        });
        PbdsServer {
            shared,
            capture_tx: Some(tx),
            workers,
            ingest_tx: Some(ingest_tx),
            commit_thread: Some(commit_thread),
            janitor,
            recovery,
        }
    }

    /// Initialize a durability directory with `db` as its first snapshot and
    /// start a durable server over it. Any stale WAL or catalog file left in
    /// the directory (e.g. from a previous experiment) is reset — `create`
    /// means "this database is the new initial state"; use
    /// [`PbdsServer::open`] to resume an existing directory instead.
    pub fn create(
        dir: &Path,
        db: Arc<Database>,
        config: ServerConfig,
    ) -> Result<PbdsServer, PbdsError> {
        PbdsServer::create_with_io(dir, db, config, Arc::new(RealIo))
    }

    /// [`PbdsServer::create`] with an explicit [`Io`] layer. Every durable
    /// write of this server (WAL appends, snapshots, catalog exports) goes
    /// through `io`, which is how the fault-injection suite drives a live
    /// server into failures deterministically.
    pub fn create_with_io(
        dir: &Path,
        db: Arc<Database>,
        config: ServerConfig,
        io: Arc<dyn Io>,
    ) -> Result<PbdsServer, PbdsError> {
        io.create_dir_all(dir).map_err(PersistError::from)?;
        // Reset the WAL and catalog *before* renaming the new snapshot in:
        // a crash anywhere in this sequence leaves either the previous
        // incarnation intact (old snapshot + emptied WAL/catalog — a
        // consistent, merely cold state) or the new initial state. Writing
        // the snapshot first instead would open a window where open() could
        // replay the previous incarnation's WAL onto the new database.
        let (mut wal, stale) = MutationWal::open_with(Arc::clone(&io), &dir.join(WAL_FILE))?;
        if !stale.is_empty() {
            wal.truncate()?;
        }
        write_catalog_with(io.as_ref(), &dir.join(CATALOG_FILE), &Default::default())?;
        write_snapshot_with(io.as_ref(), &dir.join(SNAPSHOT_FILE), &db, 0)?;
        Ok(PbdsServer::build(
            db,
            Arc::new(SketchCatalog::default()),
            config,
            Some(Persistence {
                dir: dir.to_path_buf(),
                io,
                wal,
                next_seq: 1,
                since_checkpoint: 0,
            }),
            None,
        ))
    }

    /// Open a durable server from a durability directory written by
    /// [`PbdsServer::create`] / [`PbdsServer::checkpoint`]:
    ///
    /// 1. the **snapshot** is read back (tables with their persisted
    ///    `epoch` / `data_epoch`; derived artifacts rebuild lazily);
    /// 2. the persisted **catalog** is imported — every entry is validated
    ///    against the recovered tables' data epochs and dropped if stale, so
    ///    no restart can resurrect a sketch describing other data;
    /// 3. the **WAL** is replayed through the same mutation path a live
    ///    server uses (records the snapshot already covers are skipped by
    ///    sequence number; a torn tail is truncated to the longest
    ///    whole-record prefix), maintaining the imported catalog entries
    ///    across each replayed mutation exactly as live serving would.
    ///
    /// The result serves with a warm catalog: the first instance of a
    /// template captured before the restart reuses its sketch with no
    /// recapture. See [`PbdsServer::recovery_report`].
    pub fn open(dir: &Path, config: ServerConfig) -> Result<PbdsServer, PbdsError> {
        PbdsServer::open_with_io(dir, config, Arc::new(RealIo))
    }

    /// [`PbdsServer::open`] with an explicit [`Io`] layer (see
    /// [`PbdsServer::create_with_io`]).
    pub fn open_with_io(
        dir: &Path,
        config: ServerConfig,
        io: Arc<dyn Io>,
    ) -> Result<PbdsServer, PbdsError> {
        let (mut db, applied_seq) = read_snapshot_with(io.as_ref(), &dir.join(SNAPSHOT_FILE))?;
        let catalog = Arc::new(SketchCatalog::default());
        // The snapshot and WAL hold *answers*: their corruption fails the
        // open (serving without acknowledged data would be silent loss).
        // The catalog holds an *optimization*: a corrupt one is quarantined
        // (renamed aside, preserved for inspection) and the server comes up
        // cold instead of not at all.
        let catalog_path = dir.join(CATALOG_FILE);
        let (persisted, catalog_quarantined) = if !io.exists(&catalog_path) {
            // A missing catalog — the state an earlier quarantine leaves
            // behind — is a cold start, not an error.
            (PersistedCatalog::default(), false)
        } else {
            match read_catalog_with(io.as_ref(), &catalog_path) {
                Ok(persisted) => (persisted, false),
                Err(e @ PersistError::Io(_)) => return Err(e.into()),
                Err(_) => {
                    let mut quarantine = catalog_path.clone().into_os_string();
                    quarantine.push(".quarantined");
                    io.rename(&catalog_path, Path::new(&quarantine))
                        .map_err(PersistError::from)?;
                    (PersistedCatalog::default(), true)
                }
            }
        };
        let import = catalog.import(&db, persisted);
        let (wal, records) = MutationWal::open_with(Arc::clone(&io), &dir.join(WAL_FILE))?;
        let mut next_seq = applied_seq + 1;
        let mut replayed = 0usize;
        for record in records {
            if record.seq <= applied_seq {
                continue; // the snapshot already includes this mutation
            }
            let (table, mutation) = match record.op {
                WalOp::Append { table, rows } => (table, Mutation::Append(rows)),
                WalOp::DeleteWhere { table, predicate } => {
                    (table, Mutation::DeleteWhere(predicate))
                }
            };
            // A record was logged only after the mutation succeeded in
            // memory, and replay starts from the same state, so replay
            // errors indicate corruption rather than a bad mutation.
            let (_, delta) = mutate_database(&mut db, &table, mutation).map_err(|e| {
                pbds_persist::PersistError::corrupt(format!(
                    "WAL record {} does not replay: {e}",
                    record.seq
                ))
            })?;
            if let Some(delta) = delta {
                catalog.apply_deltas(&db, &[delta]);
            }
            next_seq = record.seq + 1;
            replayed += 1;
        }
        Ok(PbdsServer::build(
            Arc::new(db),
            catalog,
            config,
            Some(Persistence {
                dir: dir.to_path_buf(),
                io,
                wal,
                next_seq,
                since_checkpoint: replayed,
            }),
            Some(RecoveryReport {
                catalog_imported: import.imported,
                catalog_dropped: import.dropped,
                wal_replayed: replayed,
                catalog_quarantined,
            }),
        ))
    }

    /// What [`PbdsServer::open`] recovered (`None` for servers not opened
    /// from a durability directory).
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        self.recovery
    }

    /// True when this server persists its state to a durability directory.
    pub fn is_durable(&self) -> bool {
        self.shared.persist.is_some()
    }

    /// Checkpoint the durable state: write a snapshot of the current
    /// database (recording the WAL sequence it includes), export the sketch
    /// catalog, then truncate the WAL. Both files are written atomically
    /// (temp + rename), and the ordering tolerates a crash at any point: a
    /// snapshot without the matching WAL truncation skips the already
    /// included records by sequence number, and a catalog file older than
    /// the snapshot merely loses entries to the epoch check on import.
    ///
    /// Errors with [`PbdsError::NotDurable`] on an in-memory server.
    pub fn checkpoint(&self) -> Result<(), PbdsError> {
        let _serialized = self.shared.serialize_mutations();
        self.checkpoint_locked()
    }

    /// Checkpoint body; the caller must hold the mutation lock so the
    /// database cannot move between "snapshot written" and "WAL truncated".
    fn checkpoint_locked(&self) -> Result<(), PbdsError> {
        let Some(persist) = &self.shared.persist else {
            return Err(PbdsError::NotDurable);
        };
        let mut p = persist.lock();
        // A successful checkpoint re-establishes full durability (fresh
        // snapshot, fresh WAL on a fresh descriptor), so it doubles as the
        // explicit repair path: settle a degraded/read-only server back to
        // health. FailStop stays terminal.
        self.shared.checkpoint_with(&mut p)?;
        self.shared.settle_health();
        Ok(())
    }

    /// The server's current fail-safe degradation state.
    pub fn health(&self) -> HealthState {
        self.shared.health()
    }

    /// Snapshot of the robustness counters and recent event messages.
    pub fn robustness_events(&self) -> RobustnessEvents {
        let s = &self.shared;
        let m = &s.metrics;
        RobustnessEvents {
            commit_panics: m.commit_panics.get(),
            capture_panics: m.capture_panics.get(),
            session_panics: m.session_panics.get(),
            wal_append_failures: m.wal_append_failures.get(),
            checkpoint_failures: m.checkpoint_failures.get(),
            repair_attempts: m.repair_attempts_made.get(),
            repairs_succeeded: m.repairs_succeeded.get(),
            catalogs_quarantined: m.catalogs_quarantined.get(),
            capture_disabled: s.capture_disabled.load(Ordering::Relaxed),
            messages: s.event_log.lock().iter().cloned().collect(),
            lock_holds: pbds_sync::hold_stats(),
        }
    }

    /// Freeze every metric this server maintains into one deterministic
    /// [`MetricsSnapshot`] under the unified `pbds_*` namespace: the
    /// server's own registry (commit, WAL, capture, query-latency and
    /// robustness series), the catalog's `pbds_catalog_*` registry, the
    /// current health state as the `pbds_health_state` gauge (the lattice
    /// discriminant: 0 healthy … 3 fail-stop), and per-lock-class hold
    /// gauges from the `pbds-sync` tracked wrappers. Render it with
    /// [`MetricsSnapshot::render_text`] for Prometheus-style exposition.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.shared.metrics.registry.snapshot();
        snap.merge(self.shared.catalog.metrics_snapshot());
        snap.gauges.insert(
            "pbds_health_state".to_string(),
            self.shared.health().as_u8() as i64,
        );
        // Lock-hold statistics are process-wide and already aggregated per
        // lock class; inject them as gauges at snapshot time (empty in
        // release builds without the `lock-order` feature).
        for hold in pbds_sync::hold_stats() {
            let class = hold.name.replace('.', "_");
            snap.gauges.insert(
                format!("pbds_lock_{class}_acquisitions"),
                hold.acquisitions.min(i64::MAX as u64) as i64,
            );
            snap.gauges.insert(
                format!("pbds_lock_{class}_held_nanos"),
                hold.total_held.as_nanos().min(i64::MAX as u128) as i64,
            );
            snap.gauges.insert(
                format!("pbds_lock_{class}_max_held_nanos"),
                hold.max_held.as_nanos().min(i64::MAX as u128) as i64,
            );
        }
        snap
    }

    /// The span-tracer journal captured at the moment this server
    /// fail-stopped: `None` while the server has not hit
    /// [`HealthState::FailStop`]; an empty string when it has but the
    /// tracer is disarmed (release build without `--features telemetry`).
    pub fn failstop_forensics(&self) -> Option<String> {
        self.shared.failstop_forensics.lock().clone()
    }

    /// Arm a one-shot panic at `site` (fault drills / robustness tests):
    /// the next commit batch, background capture, or served query panics.
    /// The server's containment turns each into a counted, recoverable
    /// event rather than a crash.
    pub fn inject_panic(&self, site: PanicSite) {
        self.shared.injected_panics[site as usize].store(true, Ordering::SeqCst);
    }

    /// Graceful shutdown: flush the ingest queue (every acknowledged — and
    /// even every merely submitted — mutation commits and, on durable
    /// servers, reaches the WAL), drain in-flight captures so their sketches
    /// make it into the persisted catalog, checkpoint (durable servers), and
    /// stop the worker pool. In-memory servers just drain and stop. No
    /// acknowledged-but-unflushed mutation can exist after this returns.
    pub fn shutdown(self) -> Result<(), PbdsError> {
        self.drain();
        if self.shared.persist.is_some() {
            self.checkpoint()?;
        }
        Ok(()) // dropping `self` joins the commit thread and capture workers
    }

    /// The catalog this server reads and (through capture workers) writes.
    pub fn catalog(&self) -> &Arc<SketchCatalog> {
        &self.shared.catalog
    }

    /// A snapshot of the served database (the state as of the last applied
    /// mutation).
    pub fn db(&self) -> Arc<Database> {
        self.shared.snapshot()
    }

    /// Apply a data mutation to a served table, maintaining every derived
    /// layer: the storage epoch advances (invalidating zone maps, indexes,
    /// columnar chunks and statistics), and the shared [`SketchCatalog`] is
    /// told to extend or invalidate its stored sketches, reuse memos,
    /// partitions and safe-attribute choices.
    ///
    /// This is [`PbdsServer::submit_mutation`] + [`MutationTicket::wait`]:
    /// the mutation rides a group-commit batch with every concurrently
    /// submitted mutation, and this call returns once that batch is durable
    /// and visible. Serving stays linearizable: batches apply in submission
    /// order, the new database is swapped in atomically once per batch, so
    /// every query — including ones running while the batch lands —
    /// executes against exactly one consistent state, and every query
    /// admitted after `apply_mutation` returns observes the mutation.
    ///
    /// On a durable server the mutation is appended to the WAL and covered
    /// by the batch's fsync **before** it becomes visible (or is reported to
    /// the caller), so an acknowledged mutation survives a crash; when the
    /// automatic checkpoint policy ([`ServerConfig::checkpoint_every`])
    /// comes due, the commit thread checkpoints before acknowledging the
    /// next batch.
    pub fn apply_mutation(
        &self,
        table: &str,
        mutation: Mutation,
    ) -> Result<MutationOutcome, PbdsError> {
        let sw = clock::Stopwatch::start();
        let result = self.submit_mutation(table, mutation).wait();
        // Submit-to-durable latency, including the ingest-queue wait and the
        // group-commit fsync the mutation rode.
        self.shared
            .metrics
            .mutation_commit_seconds
            .record_duration(sw.elapsed());
        result
    }

    /// Submit a mutation to the bounded ingest queue and return immediately
    /// with a [`MutationTicket`]. The dedicated commit thread drains the
    /// queue into batches (up to [`ServerConfig::commit_batch_limit`] per
    /// batch), applies each batch through one copy-on-write fork, appends
    /// all of its WAL records under **one** fsync, advances the catalog with
    /// the batch's coalesced deltas, swaps the new database in atomically,
    /// and only then completes the tickets — so durability cost is
    /// amortized across every concurrently submitted mutation. Pipelining
    /// submissions (submit many, then wait) from a single thread batches
    /// exactly like concurrent submitters do.
    ///
    /// No-op mutations (an empty append; and, decided at apply time, a
    /// delete matching no rows) write no WAL record and bump no epoch.
    /// Empty appends short-circuit here without entering the queue.
    ///
    /// Blocks only when the ingest queue is full (backpressure, see
    /// [`ServerConfig::ingest_queue_depth`]).
    pub fn submit_mutation(&self, table: &str, mutation: Mutation) -> MutationTicket {
        let state = TicketState::new();
        let ticket = MutationTicket {
            state: Arc::clone(&state),
        };
        // Fail-safe gate: a degraded-to-read-only server must refuse writes
        // *fast* (never acknowledge what it cannot make durable), and a
        // fail-stopped one refuses everything. Raced submissions that slip
        // past this check are caught again by the commit thread under the
        // mutation lock.
        match self.shared.health() {
            HealthState::ReadOnly => {
                state.complete(Err(PbdsError::ReadOnly));
                return ticket;
            }
            HealthState::FailStop => {
                state.complete(Err(PbdsError::FailStop));
                return ticket;
            }
            HealthState::Healthy | HealthState::Degraded => {}
        }
        // Fix: an empty append cannot change any state — complete it here
        // with no WAL record, no epoch bump and no queue round-trip. (The
        // equivalent delete short-circuit needs the predicate evaluated
        // against the batch-time state, so the commit thread decides it.)
        if matches!(&mutation, Mutation::Append(rows) if rows.is_empty()) {
            let result = self
                .shared
                .snapshot()
                .table(table)
                .map(|t| MutationOutcome {
                    table: table.to_string(),
                    epoch: t.data_epoch(),
                    rows_affected: 0,
                    wal_seq: None,
                    batch_len: 0,
                })
                .map_err(PbdsError::from);
            state.complete(result);
            return ticket;
        }
        self.shared.metrics.mutations_submitted.inc();
        *self.shared.backlog.lock() += 1;
        let request = WriteRequest {
            table: table.to_string(),
            mutation,
            ticket: state,
        };
        let sent = match &self.ingest_tx {
            Some(tx) => tx.send(request).map_err(|e| e.0),
            None => Err(request),
        };
        if let Err(request) = sent {
            // Only reachable mid-teardown: the commit thread is gone.
            request
                .ticket
                .complete(Err(PbdsError::Persist(PersistError::Io(
                    "commit thread unavailable (server shutting down)".into(),
                ))));
            self.shared.writes_finished(1);
        }
        ticket
    }

    /// Write-path counters: batches, fsyncs, largest batch. See
    /// [`CommitStats`]. A typed view over the same registry atomics
    /// [`PbdsServer::metrics_snapshot`] exposes — the two can never
    /// disagree.
    pub fn commit_stats(&self) -> CommitStats {
        let m = &self.shared.metrics;
        CommitStats {
            mutations_submitted: m.mutations_submitted.get(),
            mutations_committed: m.mutations_committed.get(),
            batched_commits: m.batched_commits.get(),
            fsyncs: m.fsyncs.get(),
            max_batch: m.max_batch.get().max(0) as u64,
        }
    }

    /// Open a session. Sessions are lightweight and `Send`; open one per
    /// serving thread.
    pub fn session(&self) -> PbdsSession<'_> {
        PbdsSession { server: self }
    }

    /// Serve a whole stream of `(template, binding)` instances across
    /// `threads` session threads, preserving stream order in the returned
    /// vector. Queries are striped over the threads (query `i` runs on
    /// thread `i % threads`), so runs with different thread counts serve the
    /// same stream.
    pub fn serve_stream(
        &self,
        stream: &[(QueryTemplate, Vec<Value>)],
        threads: usize,
    ) -> Result<Vec<ServedQuery>, PbdsError> {
        let threads = threads.clamp(1, stream.len().max(1));
        let mut per_thread: Vec<Vec<(usize, ServedQuery)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let session = self.session();
                    s.spawn(move || {
                        let mut out = Vec::new();
                        for (i, (template, binding)) in stream.iter().enumerate() {
                            if i % threads != t {
                                continue;
                            }
                            match session.serve(template, binding) {
                                Ok(served) => out.push((i, served)),
                                Err(e) => return Err(e),
                            }
                        }
                        Ok(out)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(result) => result,
                    Err(_) => {
                        // A panicking session must not take the whole server
                        // (or the caller) down with it: count it, surface a
                        // typed error for this stream, keep serving others.
                        self.shared.metrics.session_panics.inc();
                        self.shared.note(
                            "a session thread panicked while serving a stream; \
                             the stream's results were discarded"
                                .into(),
                        );
                        Err(PbdsError::SessionPanicked)
                    }
                })
                .collect::<Result<Vec<_>, PbdsError>>()
        })?;
        let mut merged: Vec<(usize, ServedQuery)> = per_thread.drain(..).flatten().collect();
        merged.sort_by_key(|(i, _)| *i);
        Ok(merged.into_iter().map(|(_, q)| q).collect())
    }

    /// Block until every submitted mutation has committed and every enqueued
    /// capture task has finished.
    pub fn drain(&self) {
        {
            let guard = self.shared.backlog.lock();
            let _unused = self.shared.backlog_drained.wait_while(guard, |n| *n > 0);
        }
        let guard = self.shared.in_flight.lock();
        let _unused = self.shared.drained.wait_while(guard, |n| *n > 0);
    }

    /// `(completed background captures, cumulative capture wall-clock)`.
    /// The duration is the sum of the `pbds_capture_seconds` histogram —
    /// per-capture latency percentiles are available from
    /// [`PbdsServer::metrics_snapshot`].
    pub fn capture_totals(&self) -> (u64, std::time::Duration) {
        let m = &self.shared.metrics;
        (
            m.captures_done.get(),
            std::time::Duration::from_nanos(m.capture_seconds.snapshot().sum()),
        )
    }
}

impl Drop for PbdsServer {
    fn drop(&mut self) {
        // Closing the ingest channel ends the commit loop once it has
        // drained (and committed) every queued mutation; then closing the
        // capture channel ends the worker loops once that queue is empty.
        self.ingest_tx.take();
        if let Some(commit) = self.commit_thread.take() {
            let _unused = commit.join();
        }
        if let Some(janitor) = self.janitor.take() {
            {
                let mut state = self.shared.repair.lock();
                state.shutdown = true;
            }
            self.shared.repair_cv.notify_all();
            let _unused = janitor.join();
        }
        self.capture_tx.take();
        for w in self.workers.drain(..) {
            let _unused = w.join();
        }
    }
}

/// A lightweight per-thread handle for serving queries.
pub struct PbdsSession<'s> {
    server: &'s PbdsServer,
}

impl PbdsSession<'_> {
    /// Serve one instance of a template.
    pub fn serve(
        &self,
        template: &QueryTemplate,
        binding: &[Value],
    ) -> Result<ServedQuery, PbdsError> {
        let _query_span = span!("query.serve");
        let sw = clock::Stopwatch::start();
        let result = self.serve_inner(template, binding);
        let m = &self.server.shared.metrics;
        m.query_seconds.record_duration(sw.elapsed());
        if let Ok(served) = &result {
            m.queries_served.inc();
            m.exec_rows_scanned.add(served.record.stats.rows_scanned);
            m.exec_blocks_skipped
                .add(served.record.stats.blocks_skipped);
        }
        result
    }

    /// The serve body; the public wrapper records end-to-end latency
    /// (`pbds_query_seconds`) and the per-query execution totals around it.
    fn serve_inner(
        &self,
        template: &QueryTemplate,
        binding: &[Value],
    ) -> Result<ServedQuery, PbdsError> {
        let shared = &self.server.shared;
        // Admission: fail-safe gate plus the per-query snapshot.
        let db = {
            let _s = span!("query.admit");
            shared.take_injected_panic(PanicSite::Session);
            // Fail-stop refuses reads too: an answer that cannot be
            // reconciled with the durable state is worse than no answer.
            // Read-only and degraded servers keep serving reads at full
            // fidelity.
            if shared.health() == HealthState::FailStop {
                return Err(PbdsError::FailStop);
            }
            // One snapshot per query: the whole serve — safety analysis,
            // reuse lookup, execution — sees a single consistent database
            // state even while mutations land concurrently. The catalog's
            // per-entry epoch check guarantees no sketch maintained past
            // this snapshot's epoch (nor one lagging behind it) is ever
            // offered against it.
            shared.snapshot()
        };
        let plan = {
            let _s = span!("query.template_match");
            template.instantiate(binding)
        };
        if shared.config.strategy == Strategy::NoPbds {
            return self.plain(&db, template, &plan, false);
        }

        let Some(_attrs) = shared.catalog.safe_attrs(&db, template) else {
            return self.plain(&db, template, &plan, false);
        };

        if let Some(est) = estimate_selectivity(&db, &plan) {
            if est > shared.config.strategy.selectivity_threshold() {
                return self.plain(&db, template, &plan, false);
            }
        }

        // Catalog hit (including the revalidation fallback): same code path
        // as the self-tuning executor, so the bookkeeping cannot drift.
        let reused = {
            let _s = span!("query.reuse_check");
            execute_with_reuse(
                &db,
                &shared.engine,
                &shared.catalog,
                shared.config.style,
                template,
                binding,
                &plan,
            )?
        };
        if let Some((record, relation)) = reused {
            return Ok(ServedQuery {
                relation,
                record,
                capture_enqueued: false,
                snapshot: db,
            });
        }

        // Miss: maybe enqueue background capture, then answer plainly. The
        // session never waits for the capture.
        let enqueued = {
            let _s = span!("query.capture_enqueue");
            shared
                .config
                .strategy
                .capture_on_miss(&shared.catalog, template)
                && self.enqueue_capture(template, binding)
        };
        self.plain(&db, template, &plan, enqueued)
    }

    /// Templatize a raw query instance (extracting its literal parameters)
    /// and serve it. This is the entry point for callers that do not manage
    /// templates themselves; instances of the same query shape share
    /// sketches through the extracted template's name *and* structural
    /// fingerprint, so reusing a name for a different query shape is safe.
    pub fn serve_plan(&self, name: &str, plan: &LogicalPlan) -> Result<ServedQuery, PbdsError> {
        let (template, binding) = templatize(name, plan);
        self.serve(&template, &binding)
    }

    fn enqueue_capture(&self, template: &QueryTemplate, binding: &[Value]) -> bool {
        let shared = &self.server.shared;
        if shared.capture_disabled.load(Ordering::Relaxed) {
            return false; // capture fuse blown after repeated panics
        }
        if !shared.catalog.begin_capture(template, binding) {
            return false; // an identical capture is already in flight
        }
        let Some(tx) = self.server.capture_tx.as_ref() else {
            shared.catalog.finish_capture(template, binding);
            return false;
        };
        *shared.in_flight.lock() += 1;
        let task = CaptureTask {
            template: template.clone(),
            binding: binding.to_vec(),
        };
        if tx.send(task).is_err() {
            shared.catalog.finish_capture(template, binding);
            shared.capture_finished();
            return false;
        }
        true
    }

    fn plain(
        &self,
        db: &Arc<Database>,
        template: &QueryTemplate,
        plan: &LogicalPlan,
        capture_enqueued: bool,
    ) -> Result<ServedQuery, PbdsError> {
        let shared = &self.server.shared;
        let out = {
            let _s = span!("query.execute");
            shared.engine.execute(db, plan)?
        };
        Ok(ServedQuery {
            record: QueryRecord {
                template: template.name().to_string(),
                action: Action::Plain,
                elapsed: out.stats.elapsed,
                result_rows: out.relation.len(),
                stats: out.stats,
            },
            relation: out.relation,
            capture_enqueued,
            snapshot: Arc::clone(db),
        })
    }
}

/// Apply a mutation to a database in place (no catalog, no WAL): the shared
/// core of the commit thread's batch application and WAL replay, so a
/// replayed record takes exactly the code path the live mutation took.
/// Returns the outcome (with the WAL fields unfilled — the commit thread
/// stamps them once the batch's sequence numbers are durable) and the
/// [`CatalogDelta`] the sketch catalog is owed, or `None` when nothing
/// changed (empty append / delete matching nothing).
fn mutate_database(
    db: &mut Database,
    table: &str,
    mutation: Mutation,
) -> Result<(MutationOutcome, Option<CatalogDelta>), PbdsError> {
    let prev_epoch = db.table(table)?.data_epoch();
    match mutation {
        Mutation::Append(rows) => {
            let appended = rows.len();
            let old_len = db.table(table)?.len();
            let epoch = db.append_rows(table, rows)?;
            let delta = (appended > 0).then(|| CatalogDelta::Append {
                table: table.to_string(),
                prev_epoch,
                new_epoch: epoch,
                rows: None,
                range: old_len..old_len + appended,
            });
            Ok((
                MutationOutcome {
                    table: table.to_string(),
                    epoch,
                    rows_affected: appended,
                    wal_seq: None,
                    batch_len: 0,
                },
                delta,
            ))
        }
        Mutation::DeleteWhere(predicate) => {
            // Evaluate the predicate first (propagating evaluation errors
            // before anything is deleted), then delete by mask.
            let doomed: Vec<bool> = {
                let t = db.table(table)?;
                let compiled = CompiledExpr::compile(&predicate, t.schema());
                t.rows()
                    .iter()
                    .map(|row| compiled.matches(row))
                    .collect::<Result<_, _>>()?
            };
            let mut i = 0;
            let deleted = db.delete_where(table, |_| {
                let d = doomed[i];
                i += 1;
                d
            })?;
            let epoch = db.table(table)?.data_epoch();
            let delta = (deleted > 0).then(|| CatalogDelta::Delete {
                table: table.to_string(),
                prev_epoch,
                new_epoch: epoch,
            });
            Ok((
                MutationOutcome {
                    table: table.to_string(),
                    epoch,
                    rows_affected: deleted,
                    wal_seq: None,
                    batch_len: 0,
                },
                delta,
            ))
        }
    }
}

/// An open run of consecutive appends to one table inside a commit batch,
/// merged into a single epoch advance (appends to the same table commute
/// with each other, so `k` queued appends cost one `invalidate_derived`
/// and produce one [`CatalogDelta::Append`] instead of `k`).
struct AppendRun {
    /// Table length before the first append of the run.
    old_len: usize,
    /// Table data epoch before the first append of the run.
    prev_epoch: u64,
    /// `(pending index, rows in that append)` for every merged request, in
    /// submission order — used to stamp per-request outcomes after the run
    /// lands.
    members: Vec<(usize, usize)>,
    /// The queued row batches, in submission order.
    batches: Vec<Vec<Row>>,
}

/// A submitted mutation travelling through a commit batch.
struct PendingWrite {
    ticket: Arc<TicketState>,
    /// Set once the mutation has applied (or short-circuited); `Err` means
    /// the request was rejected without touching any state.
    result: Option<Result<MutationOutcome, PbdsError>>,
    /// Encoded WAL record body, present on durable servers for every
    /// mutation that actually changed state.
    wal_bytes: Option<Vec<u8>>,
}

/// Commit-thread main loop: block for the next write, then greedily drain
/// the queue (up to [`ServerConfig::commit_batch_limit`]) so every mutation
/// that arrived while the previous batch was fsyncing rides the next batch
/// — classic group commit. Exits when the ingest channel closes, after
/// committing everything still queued.
fn commit_loop(shared: &ServerShared, rx: &Receiver<WriteRequest>) {
    let limit = shared.config.commit_batch_limit.max(1);
    loop {
        // The blocking recv is the ingest wait: how long the commit thread
        // sat idle before the next write arrived.
        let first = {
            let _s = span!("write.ingest_wait");
            rx.recv()
        };
        let Ok(first) = first else {
            return;
        };
        let mut batch = vec![first];
        while batch.len() < limit {
            match rx.try_recv() {
                Ok(req) => batch.push(req),
                Err(_) => break,
            }
        }
        let n = batch.len();
        let tickets: Vec<Arc<TicketState>> = batch.iter().map(|r| Arc::clone(&r.ticket)).collect();
        // Contain panics: a commit panic must not strand submitters on
        // never-completed tickets or leave `backlog` counted forever.
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| commit_batch(shared, batch)));
        if outcome.is_err() {
            shared.metrics.commit_panics.inc();
            shared.note(format!("commit batch panicked; failed its {n} mutation(s)"));
            if shared.persist.is_some() {
                // The panic may have struck between "WAL appended" and
                // "database swapped": the log could hold records memory
                // never applied. A checkpoint from the consistent in-memory
                // state resolves the ambiguity (the failed tickets were
                // reported indeterminate, never acknowledged).
                shared.degrade(
                    HealthState::Degraded,
                    "commit panic left the WAL possibly ahead of memory; \
                     checkpoint repair requested"
                        .into(),
                );
                shared.request_repair();
            }
            for t in &tickets {
                t.complete(Err(PbdsError::Persist(PersistError::Io(
                    "commit batch panicked".into(),
                ))));
            }
        }
        shared.writes_finished(n);
    }
}

/// Commit one batch of writes: one copy-on-write database fork, one WAL
/// append + fsync covering every record, one catalog delta pass, one atomic
/// swap, then ticket completion. Per-request validation failures (unknown
/// table, arity mismatch, predicate type error) fail only that ticket; the
/// rest of the batch commits. A WAL failure fails the whole batch and
/// nothing becomes visible.
fn commit_batch(shared: &ServerShared, batch: Vec<WriteRequest>) {
    let _batch_span = span!("write.commit_batch");
    let _serialized = shared.serialize_mutations();
    shared.take_injected_panic(PanicSite::Commit);
    // Re-check health under the mutation lock: submissions that raced the
    // degradation (already queued when the server went read-only) must not
    // commit while the janitor repairs the durability layer.
    let health = shared.health();
    if health >= HealthState::ReadOnly {
        let err = if health == HealthState::FailStop {
            PbdsError::FailStop
        } else {
            PbdsError::ReadOnly
        };
        for request in batch {
            request.ticket.complete(Err(err.clone()));
        }
        return;
    }
    let current = shared.snapshot();
    let mut db = (*current).clone();
    let durable = shared.persist.is_some();

    let mut pending: Vec<PendingWrite> = Vec::with_capacity(batch.len());
    let mut deltas: Vec<CatalogDelta> = Vec::new();
    // Open append runs per table: consecutive appends to a table merge into
    // one epoch advance. A delete on the table closes its run first (the
    // delete shifts row indices, so the run's delta must materialize its
    // rows before they move).
    let mut runs: HashMap<String, AppendRun> = HashMap::new();

    fn flush_run(
        db: &mut Database,
        runs: &mut HashMap<String, AppendRun>,
        pending: &mut [PendingWrite],
        deltas: &mut Vec<CatalogDelta>,
        table: &str,
        materialize_rows: bool,
    ) {
        let Some(run) = runs.remove(table) else {
            return;
        };
        let total: usize = run.members.iter().map(|(_, n)| n).sum();
        match db.append_row_batches(table, run.batches) {
            Ok(epoch) => {
                let new_len = run.old_len + total;
                let rows = materialize_rows.then(|| {
                    db.table(table).expect("appended table exists").rows()[run.old_len..new_len]
                        .to_vec()
                });
                deltas.push(CatalogDelta::Append {
                    table: table.to_string(),
                    prev_epoch: run.prev_epoch,
                    new_epoch: epoch,
                    rows,
                    range: run.old_len..new_len,
                });
                for (idx, appended) in run.members {
                    pending[idx].result = Some(Ok(MutationOutcome {
                        table: table.to_string(),
                        epoch,
                        rows_affected: appended,
                        wal_seq: None,
                        batch_len: 0,
                    }));
                }
            }
            Err(e) => {
                // Every row was arity-checked before joining the run, and
                // the table existed; only an unforeseen storage failure
                // lands here. Fail the run's members, drop their WAL bytes.
                for (idx, _) in run.members {
                    pending[idx].result = Some(Err(PbdsError::Storage(e.clone())));
                    pending[idx].wal_bytes = None;
                }
            }
        }
    }

    for request in batch {
        let WriteRequest {
            table,
            mutation,
            ticket,
        } = request;
        let idx = pending.len();
        pending.push(PendingWrite {
            ticket,
            result: None,
            wal_bytes: None,
        });
        // Encode the WAL record body from the borrowed mutation before it
        // is consumed — no clone of a bulk append's rows, and nothing is
        // encoded at all on in-memory servers.
        let wal_bytes = durable.then(|| {
            encode_op(match &mutation {
                Mutation::Append(rows) => WalOpRef::Append {
                    table: &table,
                    rows,
                },
                Mutation::DeleteWhere(predicate) => WalOpRef::DeleteWhere {
                    table: &table,
                    predicate,
                },
            })
        });
        match mutation {
            Mutation::Append(rows) => {
                // Validate now so a bad request fails alone; the actual
                // append is deferred into the table's open run.
                let (len, arity, prev_epoch) = match db.table(&table) {
                    Ok(t) => (t.len(), t.schema().arity(), t.data_epoch()),
                    Err(e) => {
                        pending[idx].result = Some(Err(PbdsError::Storage(e)));
                        continue;
                    }
                };
                if let Some(bad) = rows.iter().find(|r| r.len() != arity) {
                    pending[idx].result =
                        Some(Err(PbdsError::Storage(StorageError::ArityMismatch {
                            context: table.clone(),
                            expected: arity,
                            got: bad.len(),
                        })));
                    continue;
                }
                if rows.is_empty() {
                    // No-op: no WAL record, no epoch bump, not part of any run.
                    pending[idx].result = Some(Ok(MutationOutcome {
                        table: table.clone(),
                        epoch: prev_epoch,
                        rows_affected: 0,
                        wal_seq: None,
                        batch_len: 0,
                    }));
                    continue;
                }
                pending[idx].wal_bytes = wal_bytes;
                let run = runs.entry(table).or_insert(AppendRun {
                    old_len: len,
                    prev_epoch,
                    members: Vec::new(),
                    batches: Vec::new(),
                });
                run.members.push((idx, rows.len()));
                run.batches.push(rows);
            }
            Mutation::DeleteWhere(_) => {
                // The delete must observe the run's rows and will shift
                // indices, so the table's open run lands first — with its
                // delta rows materialized, since `range` would dangle.
                flush_run(&mut db, &mut runs, &mut pending, &mut deltas, &table, true);
                match mutate_database(&mut db, &table, mutation) {
                    Ok((outcome, delta)) => {
                        if delta.is_some() {
                            // Only a delete that removed rows is logged.
                            pending[idx].wal_bytes = wal_bytes;
                            deltas.extend(delta);
                        }
                        pending[idx].result = Some(Ok(outcome));
                    }
                    Err(e) => pending[idx].result = Some(Err(e)),
                }
            }
        }
    }
    let tables: Vec<String> = runs.keys().cloned().collect();
    for table in tables {
        flush_run(&mut db, &mut runs, &mut pending, &mut deltas, &table, false);
    }

    // Write-ahead: every surviving record must be durable before anything
    // becomes visible or is acknowledged. One append, one fsync.
    let logged = pending.iter().filter(|p| p.wal_bytes.is_some()).count();
    let mut checkpoint_due = false;
    if logged > 0 {
        let persist = shared.persist.as_ref().expect("wal_bytes implies durable");
        let mut p = persist.lock();
        let base = p.next_seq;
        let records: Vec<(u64, &[u8])> = pending
            .iter()
            .filter_map(|w| w.wal_bytes.as_deref())
            .enumerate()
            .map(|(i, bytes)| (base + i as u64, bytes))
            .collect();
        let appended = {
            let _s = span!("write.wal_append_fsync");
            let sw = clock::Stopwatch::start();
            let result = p.wal.append_batch(&records).map_err(PbdsError::from);
            shared
                .metrics
                .wal_fsync_seconds
                .record_duration(sw.elapsed());
            result
        };
        match appended {
            Ok(()) => {
                shared.metrics.fsyncs.inc();
                p.next_seq = base + logged as u64;
                p.since_checkpoint += logged;
                checkpoint_due = shared
                    .config
                    .checkpoint_every
                    .is_some_and(|n| p.since_checkpoint >= n);
                // Stamp each logged mutation's durable sequence number.
                let mut seq = base;
                for w in &mut pending {
                    if w.wal_bytes.is_some() {
                        if let Some(Ok(outcome)) = &mut w.result {
                            outcome.wal_seq = Some(seq);
                        }
                        seq += 1;
                    }
                }
            }
            Err(e) => {
                // The batch could not be made durable. fsyncgate semantics
                // forbid the tempting fix (retry the fsync, or checkpoint
                // over the same descriptor, and acknowledge): after a failed
                // fsync the durable state of this WAL handle is UNKNOWN, and
                // a retry that "succeeds" may be lying. The only safe moves,
                // in order: (1) fail the whole batch — nothing was swapped
                // in, the catalog is untouched, no caller sees an ack;
                // (2) stop accepting writes (read-only) so no later batch
                // can be acknowledged against an unverified log; (3) hand
                // repair — fresh descriptor, re-verify, checkpoint — to the
                // janitor thread, off the commit path.
                shared.metrics.wal_append_failures.inc();
                shared.degrade(
                    HealthState::ReadOnly,
                    format!("WAL append failed ({e}); refusing writes until repaired"),
                );
                shared.request_repair();
                for w in &mut pending {
                    if w.wal_bytes.is_some() {
                        w.result = Some(Err(e.clone()));
                    }
                }
                for w in pending {
                    let result = w.result.unwrap_or_else(|| {
                        Err(PbdsError::Persist(PersistError::Io(
                            "commit batch aborted".into(),
                        )))
                    });
                    w.ticket.complete(result);
                }
                return;
            }
        }
    }

    // Maintain the shared catalog with the batch's coalesced deltas, then
    // publish the new database in one atomic swap.
    let committed = pending
        .iter()
        .filter(|w| matches!(&w.result, Some(Ok(o)) if o.rows_affected > 0 || o.wal_seq.is_some()))
        .count();
    if !deltas.is_empty() {
        {
            let _s = span!("write.catalog_delta");
            shared.catalog.apply_deltas(&db, &deltas);
        }
        let _s = span!("write.snapshot_swap");
        *shared.db.write() = Arc::new(db);
    }
    if committed > 0 {
        shared.metrics.mutations_committed.add(committed as u64);
        shared.metrics.batched_commits.inc();
        shared
            .metrics
            .max_batch
            .set_max(committed.min(i64::MAX as usize) as i64);
    }
    if checkpoint_due {
        // Still under the mutation lock: the snapshot written here is
        // exactly the state the just-logged batch produced. The batch is
        // already durable at this point, so a checkpoint failure must not
        // be reported as a mutation failure (a retrying caller would
        // double-apply); the WAL keeps the records and the next batch
        // retries the checkpoint. Runs before ticket completion so a
        // returned `apply_mutation` implies the due checkpoint happened.
        let persist = shared
            .persist
            .as_ref()
            .expect("checkpoint_due implies durable");
        let mut p = persist.lock();
        if let Err(e) = shared.checkpoint_with(&mut p) {
            // Transient: the WAL keeps every record, so nothing acknowledged
            // is at risk — the failure costs recovery time (replay length),
            // not data. Degrade and let the janitor retry with backoff, off
            // the commit path.
            shared.metrics.checkpoint_failures.inc();
            shared.degrade(
                HealthState::Degraded,
                format!(
                    "automatic checkpoint failed ({e}); mutations remain \
                     recoverable from the WAL, repair requested"
                ),
            );
            shared.request_repair();
        }
    }

    for w in pending {
        let mut result = w.result.unwrap_or_else(|| {
            Err(PbdsError::Persist(PersistError::Io(
                "commit batch dropped a request".into(),
            )))
        });
        if let Ok(outcome) = &mut result {
            outcome.batch_len = committed;
        }
        w.ticket.complete(result);
    }
}

/// Background capture loop: pull tasks until the channel closes.
fn capture_worker(shared: &ServerShared, rx: &TrackedMutex<Receiver<CaptureTask>>) {
    loop {
        // Hold the lock only while receiving, so workers pull tasks
        // round-robin instead of serializing on one another's captures.
        let task = {
            let rx = rx.lock();
            rx.recv()
        };
        let Ok(task) = task else {
            return; // channel closed: server is shutting down
        };
        // Contain panics: a failed capture only loses an optimization, but a
        // leaked `in_flight` count would deadlock every future `drain()` and
        // a leaked pending mark would block the binding's capture forever.
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_capture(shared, &task)));
        shared.catalog.finish_capture(&task.template, &task.binding);
        shared.capture_finished();
        if result.is_err() {
            let total = shared.metrics.capture_panics.inc_and_get();
            shared.note(format!(
                "background capture for template {:?} panicked ({total} so \
                 far); the query stream is unaffected",
                task.template.name()
            ));
            // Repeated panics mean a systematic bug, not bad luck: blow the
            // capture fuse so the serving path stops feeding it. Queries
            // keep being answered plainly — capture is an optimization.
            if total >= MAX_CAPTURE_PANICS && !shared.capture_disabled.swap(true, Ordering::SeqCst)
            {
                shared.degrade(
                    HealthState::Degraded,
                    format!("background capture disabled after {total} panics"),
                );
            }
        }
    }
}

/// Background repair loop: sleep until a failure path requests repair
/// ([`ServerShared::request_repair`]), then retry the repair sequence —
/// fresh WAL descriptor, re-verify, checkpoint — with capped exponential
/// backoff, up to [`ServerConfig::repair_attempts`] times per request.
/// Success settles health; exhaustion from read-only escalates to
/// fail-stop.
fn janitor_loop(shared: &ServerShared) {
    loop {
        {
            let state = shared.repair.lock();
            let mut state = shared
                .repair_cv
                .wait_while(state, |s| !s.wanted && !s.shutdown);
            if state.shutdown {
                return;
            }
            state.wanted = false;
        }
        repair(shared);
    }
}

/// One repair campaign. Each attempt runs under the mutation lock (same
/// order as the commit thread: mutation lock, then persistence lock), so a
/// successful repair and the batch that next observes it are serialized.
fn repair(shared: &ServerShared) {
    let max_attempts = shared.config.repair_attempts;
    for attempt in 1..=max_attempts {
        if attempt > 1 {
            let ms = (1u64 << (attempt as u32 - 2).min(20)).min(MAX_REPAIR_BACKOFF_MS);
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
        shared.metrics.repair_attempts_made.inc();
        let result = {
            let _serialized = shared.serialize_mutations();
            let Some(persist) = &shared.persist else {
                return; // only spawned for durable servers
            };
            let mut p = persist.lock();
            if !p.wal.is_healthy() {
                // fsyncgate: never reuse a descriptor whose fsync failed —
                // re-open fresh and truncate to the verified prefix. Even a
                // verify *failure* is survivable here, because the
                // checkpoint below re-establishes durability from the
                // consistent in-memory state and rebuilds the log.
                let _ = p.wal.reopen_and_verify();
            }
            let result = shared.checkpoint_with(&mut p);
            if result.is_ok() {
                // Settle while still holding the mutation lock, so the next
                // batch the commit thread gates is admitted consistently.
                shared.settle_health();
            }
            result
        };
        match result {
            Ok(()) => {
                shared.metrics.repairs_succeeded.inc();
                shared.note(format!(
                    "repair succeeded on attempt {attempt}/{max_attempts}"
                ));
                return;
            }
            Err(e) => shared.note(format!(
                "repair attempt {attempt}/{max_attempts} failed: {e}"
            )),
        }
    }
    // Exhausted. A read-only server that cannot be repaired will never
    // accept another write — fail-stop is the honest terminal state. A
    // merely degraded server keeps full service: its WAL still holds every
    // acknowledged mutation, the failure only costs recovery time.
    if shared.health() == HealthState::ReadOnly {
        shared.degrade(
            HealthState::FailStop,
            format!("repair exhausted after {max_attempts} attempts from read-only"),
        );
    } else {
        shared.note(format!(
            "repair exhausted after {max_attempts} attempts; server stays \
             degraded (WAL intact, acknowledged mutations recoverable)"
        ));
    }
}

fn run_capture(shared: &ServerShared, task: &CaptureTask) {
    let _capture_span = span!("capture.run");
    shared.take_injected_panic(PanicSite::Capture);
    let started = clock::Stopwatch::start();
    // The capture runs against one database snapshot; if a mutation lands
    // mid-capture, the catalog's epoch-checked insert rejects the (now
    // stale) sketch set rather than storing pre-mutation provenance.
    let db = shared.snapshot();
    // A concurrent capture may have landed a sketch that already covers this
    // binding; re-check before paying the capture cost. The quiet probe
    // keeps hit/miss counters and LRU stamps reflecting serving traffic.
    if shared
        .catalog
        .is_covered(&db, &task.template, &task.binding)
    {
        return;
    }
    let Some(attrs) = shared.catalog.safe_attrs(&db, &task.template) else {
        return;
    };
    let partitions: Vec<PartitionRef> = attrs
        .iter()
        .filter_map(|a| {
            shared
                .catalog
                .partition_for(&db, a, shared.config.fragments)
        })
        .collect();
    if partitions.is_empty() {
        return;
    }
    let plan = task.template.instantiate(&task.binding);
    let Ok(capture) = capture_sketches_with_profile(
        &db,
        &plan,
        &partitions,
        &CaptureConfig::optimized(),
        shared.config.profile,
    ) else {
        return; // capture failure only loses the optimization, never a result
    };
    if shared
        .catalog
        .insert(&db, &task.template, &task.binding, capture.sketches)
        .is_none()
    {
        return; // rejected as stale: a mutation landed while capturing
    }
    shared.metrics.captures_done.inc();
    shared
        .metrics
        .capture_seconds
        .record_duration(started.elapsed());
}

// Concurrency audit: the server and its catalog are shared across session
// threads and capture workers.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SketchCatalog>();
    assert_send_sync::<PbdsServer>();
    assert_send_sync::<ServerShared>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use pbds_algebra::{col, lit, param, AggExpr, AggFunc};
    use pbds_storage::{DataType, Schema, TableBuilder};

    fn sales_db() -> Arc<Database> {
        let schema = Schema::from_pairs(&[("grp", DataType::Int), ("amount", DataType::Int)]);
        let mut b = TableBuilder::new("sales", schema);
        b.block_size(100).index("grp");
        for i in 0..5_000i64 {
            b.push(vec![Value::Int(i % 50), Value::Int((i * 37) % 1000 + 1)]);
        }
        let mut db = Database::new();
        db.add_table(b.build());
        Arc::new(db)
    }

    fn having_template() -> QueryTemplate {
        QueryTemplate::new(
            "sales-having",
            LogicalPlan::scan("sales")
                .aggregate(
                    vec!["grp"],
                    vec![AggExpr::new(AggFunc::Sum, col("amount"), "total")],
                )
                .filter(col("total").gt(param(0))),
        )
    }

    #[test]
    fn miss_enqueues_capture_then_hits_after_drain() {
        let db = sales_db();
        let server = PbdsServer::new(Arc::clone(&db), ServerConfig::default());
        let session = server.session();
        let t = having_template();

        let first = session.serve(&t, &[Value::Int(50_000)]).unwrap();
        assert_eq!(first.record.action, Action::Plain);
        assert!(first.capture_enqueued, "miss should enqueue capture");
        server.drain();
        assert_eq!(server.catalog().stored_sketches(), 1);
        let (captures, _) = server.capture_totals();
        assert_eq!(captures, 1);

        // A tighter instance now reuses the captured sketch.
        let second = session.serve(&t, &[Value::Int(53_000)]).unwrap();
        assert_eq!(
            second.record.action,
            Action::UseSketch,
            "{:?}",
            second.record
        );
        // And scans less than the plain execution did.
        assert!(second.record.stats.rows_scanned < first.record.stats.rows_scanned);
    }

    #[test]
    fn results_match_plain_execution_regardless_of_action() {
        let db = sales_db();
        let server = PbdsServer::new(Arc::clone(&db), ServerConfig::default());
        let session = server.session();
        let engine = Engine::new(EngineProfile::Indexed);
        let t = having_template();
        for bound in [50_000, 53_000, 40_000, 52_000, 55_000] {
            let served = session.serve(&t, &[Value::Int(bound)]).unwrap();
            let plain = engine
                .execute(&db, &t.instantiate(&[Value::Int(bound)]))
                .unwrap();
            assert!(
                served.relation.bag_eq(&plain.relation),
                "bound {bound}: {:?}",
                served.record.action
            );
            server.drain(); // let captures land so later bounds exercise hits
        }
    }

    #[test]
    fn duplicate_misses_enqueue_only_one_capture() {
        let db = sales_db();
        let server = PbdsServer::new(Arc::clone(&db), ServerConfig::default());
        let t = having_template();
        let stream: Vec<(QueryTemplate, Vec<Value>)> = (0..8)
            .map(|_| (t.clone(), vec![Value::Int(50_000)]))
            .collect();
        let served = server.serve_stream(&stream, 4).unwrap();
        server.drain();
        let enqueued = served.iter().filter(|s| s.capture_enqueued).count();
        assert!(enqueued >= 1);
        // The pending-capture dedup keeps the store from collecting
        // duplicates of one binding.
        assert_eq!(server.catalog().stored_sketches(), 1);
    }

    #[test]
    fn serve_plan_templatizes_instances() {
        let db = sales_db();
        let server = PbdsServer::new(Arc::clone(&db), ServerConfig::default());
        let session = server.session();
        let make_plan = |bound: i64| {
            LogicalPlan::scan("sales")
                .aggregate(
                    vec!["grp"],
                    vec![AggExpr::new(AggFunc::Sum, col("amount"), "total")],
                )
                .filter(col("total").gt(lit(bound)))
        };
        let first = session.serve_plan("adhoc", &make_plan(50_000)).unwrap();
        assert!(first.capture_enqueued);
        server.drain();
        let second = session.serve_plan("adhoc", &make_plan(53_000)).unwrap();
        assert_eq!(second.record.action, Action::UseSketch);
    }

    #[test]
    fn append_mutation_keeps_serving_fresh_and_correct() {
        let db = sales_db();
        let server = PbdsServer::new(Arc::clone(&db), ServerConfig::default());
        let session = server.session();
        let t = having_template();
        let tight = vec![Value::Int(53_000)];
        session.serve(&t, &[Value::Int(50_000)]).unwrap();
        server.drain();
        assert_eq!(
            session.serve(&t, &tight).unwrap().record.action,
            Action::UseSketch
        );

        // Push two groups' totals around; every new row lands in an
        // existing fragment, so the stored sketch is extended, not dropped.
        let outcome = server
            .apply_mutation(
                "sales",
                Mutation::Append(
                    (0..60)
                        .map(|i| vec![Value::Int(i % 3), Value::Int(900)])
                        .collect(),
                ),
            )
            .unwrap();
        assert_eq!(outcome.rows_affected, 60);
        assert_eq!(server.db().table("sales").unwrap().len(), 5_060);

        let served = session.serve(&t, &tight).unwrap();
        let plain = Engine::new(EngineProfile::Indexed)
            .execute(&server.db(), &t.instantiate(&tight))
            .unwrap();
        assert!(
            served.relation.bag_eq(&plain.relation),
            "served result diverged from plain execution after append \
             (action {:?})",
            served.record.action
        );
        assert!(server.catalog().stats().extended >= 1);
        // The maintained sketch keeps answering without recapture.
        assert_eq!(served.record.action, Action::UseSketch);
    }

    #[test]
    fn delete_mutation_keeps_serving_fresh_and_correct() {
        let db = sales_db();
        let server = PbdsServer::new(Arc::clone(&db), ServerConfig::default());
        let session = server.session();
        let t = having_template();
        let tight = vec![Value::Int(53_000)];
        session.serve(&t, &[Value::Int(50_000)]).unwrap();
        server.drain();

        let outcome = server
            .apply_mutation("sales", Mutation::DeleteWhere(col("amount").gt(lit(900))))
            .unwrap();
        assert!(outcome.rows_affected > 0);
        let expected_len = 5_000 - outcome.rows_affected;
        assert_eq!(server.db().table("sales").unwrap().len(), expected_len);

        let served = session.serve(&t, &tight).unwrap();
        let plain = Engine::new(EngineProfile::Indexed)
            .execute(&server.db(), &t.instantiate(&tight))
            .unwrap();
        assert!(
            served.relation.bag_eq(&plain.relation),
            "served result diverged from plain execution after delete \
             (action {:?})",
            served.record.action
        );
    }

    #[test]
    fn bad_mutations_are_rejected_without_side_effects() {
        let db = sales_db();
        let server = PbdsServer::new(Arc::clone(&db), ServerConfig::default());
        // Wrong arity: nothing is appended, the snapshot is unchanged.
        let err = server
            .apply_mutation("sales", Mutation::Append(vec![vec![Value::Int(1)]]))
            .unwrap_err();
        assert!(matches!(
            err,
            PbdsError::Storage(pbds_storage::StorageError::ArityMismatch { .. })
        ));
        assert_eq!(server.db().table("sales").unwrap().len(), 5_000);
        // Unknown table.
        assert!(server
            .apply_mutation("nope", Mutation::Append(vec![]))
            .is_err());
        // A delete predicate referencing a missing column errors before
        // deleting anything.
        let err = server
            .apply_mutation("sales", Mutation::DeleteWhere(col("missing").gt(lit(0))))
            .unwrap_err();
        assert!(matches!(err, PbdsError::Exec(_)));
        assert_eq!(server.db().table("sales").unwrap().len(), 5_000);
    }

    /// A fresh scratch directory under the workspace `target/` dir (tests
    /// must not write outside the repository).
    fn test_dir(name: &str) -> PathBuf {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/core-unit-tests")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create test dir");
        dir
    }

    #[test]
    fn durable_server_reopens_with_a_warm_catalog() {
        let dir = test_dir("durable_warm");
        let db = sales_db();
        let t = having_template();
        let rows_before;
        {
            let server =
                PbdsServer::create(&dir, Arc::clone(&db), ServerConfig::default()).unwrap();
            let session = server.session();
            let first = session.serve(&t, &[Value::Int(50_000)]).unwrap();
            assert!(first.capture_enqueued);
            server.drain();
            assert_eq!(server.catalog().stored_sketches(), 1);
            rows_before = server.db().table("sales").unwrap().rows().to_vec();
            server.shutdown().unwrap();
        }

        let server = PbdsServer::open(&dir, ServerConfig::default()).unwrap();
        let report = server.recovery_report().unwrap();
        assert_eq!(report.catalog_imported, 1, "{report:?}");
        assert_eq!(report.catalog_dropped, 0);
        assert_eq!(report.wal_replayed, 0);
        assert_eq!(
            server.db().table("sales").unwrap().rows(),
            &rows_before[..],
            "recovered rows must be byte-identical"
        );
        // The very first query of the recovered server reuses the persisted
        // sketch — no recapture.
        let session = server.session();
        let served = session.serve(&t, &[Value::Int(53_000)]).unwrap();
        assert_eq!(
            served.record.action,
            Action::UseSketch,
            "{:?}",
            served.record
        );
        assert!(!served.capture_enqueued);
        let (captures, _) = server.capture_totals();
        assert_eq!(captures, 0, "warm start must not pay capture again");
    }

    #[test]
    fn uncheckpointed_mutations_replay_from_the_wal() {
        let dir = test_dir("durable_wal_replay");
        let db = sales_db();
        let t = having_template();
        let config = ServerConfig {
            checkpoint_every: None, // keep everything in the WAL
            ..ServerConfig::default()
        };
        let expected_rows;
        {
            let server = PbdsServer::create(&dir, Arc::clone(&db), config).unwrap();
            let session = server.session();
            session.serve(&t, &[Value::Int(50_000)]).unwrap();
            server.drain();
            server
                .apply_mutation(
                    "sales",
                    Mutation::Append(
                        (0..30)
                            .map(|i| vec![Value::Int(i % 3), Value::Int(800)])
                            .collect(),
                    ),
                )
                .unwrap();
            server
                .apply_mutation("sales", Mutation::DeleteWhere(col("amount").gt(lit(950))))
                .unwrap();
            expected_rows = server.db().table("sales").unwrap().rows().to_vec();
            // No shutdown, no checkpoint: simulate a crash.
            drop(server);
        }

        let server = PbdsServer::open(&dir, config).unwrap();
        let report = server.recovery_report().unwrap();
        assert_eq!(report.wal_replayed, 2, "{report:?}");
        assert_eq!(
            server.db().table("sales").unwrap().rows(),
            &expected_rows[..]
        );
        // Every surviving catalog entry is epoch-valid against the
        // recovered database (maintained through the replayed mutations or
        // dropped — never stale).
        let db_now = server.db();
        for entry in server.catalog().export().entries {
            for (table, epoch) in entry.capture_epochs {
                assert_eq!(
                    db_now.table(&table).unwrap().data_epoch(),
                    epoch,
                    "entry for {table} recovered epoch-stale"
                );
            }
        }
        // Serving still matches plain execution.
        let session = server.session();
        let served = session.serve(&t, &[Value::Int(53_000)]).unwrap();
        let plain = Engine::new(EngineProfile::Indexed)
            .execute(&server.db(), &t.instantiate(&[Value::Int(53_000)]))
            .unwrap();
        assert!(served.relation.bag_eq(&plain.relation));
    }

    #[test]
    fn automatic_checkpoint_policy_truncates_the_wal() {
        let dir = test_dir("durable_auto_checkpoint");
        let db = sales_db();
        let config = ServerConfig {
            checkpoint_every: Some(2),
            ..ServerConfig::default()
        };
        let server = PbdsServer::create(&dir, db, config).unwrap();
        let append = |i: i64| Mutation::Append(vec![vec![Value::Int(i % 50), Value::Int(10)]]);
        server.apply_mutation("sales", append(0)).unwrap();
        let (records, _) = pbds_persist::read_records(&dir.join(WAL_FILE)).unwrap();
        assert_eq!(records.len(), 1, "first mutation stays in the WAL");
        server.apply_mutation("sales", append(1)).unwrap();
        let (records, _) = pbds_persist::read_records(&dir.join(WAL_FILE)).unwrap();
        assert!(
            records.is_empty(),
            "second mutation must trigger the checkpoint and truncate"
        );
        // The checkpointed snapshot carries the post-mutation state.
        let (snap_db, _) = pbds_persist::read_snapshot(&dir.join(SNAPSHOT_FILE)).unwrap();
        assert_eq!(snap_db.table("sales").unwrap().len(), 5_002);
        // A third mutation restarts the WAL with a fresh sequence.
        server.apply_mutation("sales", append(2)).unwrap();
        let (records, _) = pbds_persist::read_records(&dir.join(WAL_FILE)).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].seq, 3);
        drop(server);
        let reopened = PbdsServer::open(&dir, config).unwrap();
        assert_eq!(reopened.recovery_report().unwrap().wal_replayed, 1);
        assert_eq!(reopened.db().table("sales").unwrap().len(), 5_003);
    }

    #[test]
    fn create_over_a_stale_directory_discards_the_old_incarnation() {
        let dir = test_dir("durable_recreate");
        let config = ServerConfig {
            checkpoint_every: None,
            ..ServerConfig::default()
        };
        {
            let server = PbdsServer::create(&dir, sales_db(), config).unwrap();
            let session = server.session();
            session
                .serve(&having_template(), &[Value::Int(50_000)])
                .unwrap();
            server.drain();
            server
                .apply_mutation(
                    "sales",
                    Mutation::Append(vec![vec![Value::Int(1), Value::Int(5)]]),
                )
                .unwrap();
            server.checkpoint().unwrap(); // persist a catalog entry
            server
                .apply_mutation(
                    "sales",
                    Mutation::Append(vec![vec![Value::Int(2), Value::Int(6)]]),
                )
                .unwrap();
            drop(server); // leaves an uncheckpointed WAL record + catalog
        }
        // Re-create over the same directory with a different initial state:
        // the old incarnation's WAL and catalog must not leak into it.
        let schema = Schema::from_pairs(&[("x", DataType::Int)]);
        let mut fresh = Database::new();
        fresh.add_table(pbds_storage::Table::new(
            "other",
            schema,
            vec![vec![Value::Int(1)]],
        ));
        let server = PbdsServer::create(&dir, Arc::new(fresh), config).unwrap();
        drop(server);
        let reopened = PbdsServer::open(&dir, config).unwrap();
        let report = reopened.recovery_report().unwrap();
        assert_eq!(report.wal_replayed, 0, "{report:?}");
        assert_eq!(report.catalog_imported, 0, "{report:?}");
        assert_eq!(reopened.db().table_names(), vec!["other"]);
    }

    #[test]
    fn durability_calls_on_memory_servers_error() {
        let server = PbdsServer::new(sales_db(), ServerConfig::default());
        assert!(!server.is_durable());
        assert!(server.recovery_report().is_none());
        assert_eq!(server.checkpoint().unwrap_err(), PbdsError::NotDurable);
        // Shutdown of an in-memory server is still a clean no-op.
        server.shutdown().unwrap();
    }

    #[test]
    fn failed_mutations_are_not_logged_to_the_wal() {
        let dir = test_dir("durable_failed_mutation");
        let server = PbdsServer::create(&dir, sales_db(), ServerConfig::default()).unwrap();
        let err = server
            .apply_mutation("sales", Mutation::Append(vec![vec![Value::Int(1)]]))
            .unwrap_err();
        assert!(matches!(err, PbdsError::Storage(_)));
        let err = server
            .apply_mutation("sales", Mutation::DeleteWhere(col("missing").gt(lit(0))))
            .unwrap_err();
        assert!(matches!(err, PbdsError::Exec(_)));
        drop(server);
        let (records, _) = pbds_persist::read_records(&dir.join(WAL_FILE)).unwrap();
        assert!(
            records.is_empty(),
            "failed mutations must not be replayable"
        );
        let reopened = PbdsServer::open(&dir, ServerConfig::default()).unwrap();
        assert_eq!(reopened.db().table("sales").unwrap().len(), 5_000);
    }

    #[test]
    fn no_pbds_server_never_captures() {
        let db = sales_db();
        let server = PbdsServer::new(
            Arc::clone(&db),
            ServerConfig {
                strategy: Strategy::NoPbds,
                ..ServerConfig::default()
            },
        );
        let t = having_template();
        let stream: Vec<(QueryTemplate, Vec<Value>)> = (0..6)
            .map(|i| (t.clone(), vec![Value::Int(50_000 + i * 500)]))
            .collect();
        let served = server.serve_stream(&stream, 3).unwrap();
        server.drain();
        assert!(served.iter().all(|s| s.record.action == Action::Plain));
        assert_eq!(server.catalog().stored_sketches(), 0);
    }

    #[test]
    fn pipelined_submissions_ride_one_batch() {
        let dir = test_dir("durable_group_commit");
        let server = PbdsServer::create(&dir, sales_db(), ServerConfig::default()).unwrap();
        // Submit-then-wait: while the first batch holds the commit thread,
        // the rest queue up and must land under a shared fsync.
        let tickets: Vec<MutationTicket> = (0..32)
            .map(|i| {
                server.submit_mutation(
                    "sales",
                    Mutation::Append(vec![vec![Value::Int(i), Value::Int(1)]]),
                )
            })
            .collect();
        let outcomes: Vec<MutationOutcome> =
            tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        assert_eq!(server.db().table("sales").unwrap().len(), 5_032);
        // WAL sequences are dense and in submission order.
        let seqs: Vec<u64> = outcomes.iter().map(|o| o.wal_seq.unwrap()).collect();
        assert_eq!(seqs, (1..=32).collect::<Vec<u64>>());
        let stats = server.commit_stats();
        assert_eq!(stats.mutations_submitted, 32);
        assert_eq!(stats.mutations_committed, 32);
        assert!(
            stats.batched_commits < 32,
            "32 pipelined mutations must not take 32 batches: {stats:?}"
        );
        assert_eq!(stats.fsyncs, stats.batched_commits);
        assert!(stats.max_batch > 1, "{stats:?}");
        assert!(outcomes.iter().any(|o| o.batch_len > 1), "{outcomes:?}");
        // Every record replays: the batched WAL is byte-compatible with the
        // sequential framing.
        drop(server);
        let reopened = PbdsServer::open(&dir, ServerConfig::default()).unwrap();
        assert_eq!(reopened.recovery_report().unwrap().wal_replayed, 32);
        assert_eq!(reopened.db().table("sales").unwrap().len(), 5_032);
    }

    #[test]
    fn batched_appends_to_one_table_advance_the_epoch_once() {
        let server = PbdsServer::new(sales_db(), ServerConfig::default());
        let before = server.db().table("sales").unwrap().data_epoch();
        let tickets: Vec<MutationTicket> = (0..8)
            .map(|i| {
                server.submit_mutation(
                    "sales",
                    Mutation::Append(vec![vec![Value::Int(i), Value::Int(1)]]),
                )
            })
            .collect();
        let outcomes: Vec<MutationOutcome> =
            tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        let after = server.db().table("sales").unwrap().data_epoch();
        let batches = server.commit_stats().batched_commits;
        assert!(
            after - before < 8,
            "appends merged into {batches} batch(es) must advance the epoch \
             fewer than 8 times (epoch {before} -> {after})"
        );
        // Members of a merged run all report the run's final epoch.
        assert!(outcomes.iter().all(|o| o.epoch <= after));
        assert_eq!(server.db().table("sales").unwrap().len(), 5_008);
    }

    #[test]
    fn noop_mutations_write_no_wal_record_and_keep_the_epoch() {
        let dir = test_dir("durable_noop");
        let server = PbdsServer::create(&dir, sales_db(), ServerConfig::default()).unwrap();
        let epoch = server.db().table("sales").unwrap().data_epoch();

        // Empty append: short-circuits before the queue.
        let out = server
            .apply_mutation("sales", Mutation::Append(vec![]))
            .unwrap();
        assert_eq!(out.rows_affected, 0);
        assert_eq!(out.wal_seq, None);
        assert_eq!(out.batch_len, 0);

        // Delete matching nothing: decided at apply time, same guarantees.
        let out = server
            .apply_mutation(
                "sales",
                Mutation::DeleteWhere(col("amount").gt(lit(1_000_000))),
            )
            .unwrap();
        assert_eq!(out.rows_affected, 0);
        assert_eq!(out.wal_seq, None);

        assert_eq!(
            server.db().table("sales").unwrap().data_epoch(),
            epoch,
            "no-op mutations must not bump the epoch"
        );
        let (records, _) = pbds_persist::read_records(&dir.join(WAL_FILE)).unwrap();
        assert!(records.is_empty(), "no-op mutations must not be logged");
        assert_eq!(server.commit_stats().mutations_committed, 0);

        // And an effective mutation afterwards still gets sequence 1.
        let out = server
            .apply_mutation(
                "sales",
                Mutation::Append(vec![vec![Value::Int(1), Value::Int(1)]]),
            )
            .unwrap();
        assert_eq!(out.wal_seq, Some(1));
    }

    #[test]
    fn rejected_requests_fail_alone_within_a_batch() {
        let server = PbdsServer::new(sales_db(), ServerConfig::default());
        let bad_table = server.submit_mutation(
            "nope",
            Mutation::Append(vec![vec![Value::Int(1), Value::Int(1)]]),
        );
        let bad_arity =
            server.submit_mutation("sales", Mutation::Append(vec![vec![Value::Int(1)]]));
        let good = server.submit_mutation(
            "sales",
            Mutation::Append(vec![vec![Value::Int(1), Value::Int(1)]]),
        );
        assert!(matches!(
            bad_table.wait(),
            Err(PbdsError::Storage(StorageError::UnknownTable(_)))
        ));
        assert!(matches!(
            bad_arity.wait(),
            Err(PbdsError::Storage(StorageError::ArityMismatch { .. }))
        ));
        assert_eq!(good.wait().unwrap().rows_affected, 1);
        assert_eq!(server.db().table("sales").unwrap().len(), 5_001);
    }

    #[test]
    fn shutdown_flushes_the_ingest_queue() {
        let dir = test_dir("durable_shutdown_flush");
        let server = PbdsServer::create(&dir, sales_db(), ServerConfig::default()).unwrap();
        // Submit without waiting, then shut down: every submitted mutation
        // must still commit and survive the restart.
        let tickets: Vec<MutationTicket> = (0..16)
            .map(|i| {
                server.submit_mutation(
                    "sales",
                    Mutation::Append(vec![vec![Value::Int(i), Value::Int(2)]]),
                )
            })
            .collect();
        server.shutdown().unwrap();
        assert!(tickets.iter().all(|t| t.is_complete()));
        let reopened = PbdsServer::open(&dir, ServerConfig::default()).unwrap();
        assert_eq!(reopened.db().table("sales").unwrap().len(), 5_016);
    }

    #[test]
    fn concurrent_submitters_batch_and_stay_linearizable() {
        let server = Arc::new(PbdsServer::new(sales_db(), ServerConfig::default()));
        std::thread::scope(|s| {
            for w in 0..8i64 {
                let server = Arc::clone(&server);
                s.spawn(move || {
                    for i in 0..20 {
                        server
                            .apply_mutation(
                                "sales",
                                Mutation::Append(vec![vec![Value::Int(w), Value::Int(i)]]),
                            )
                            .unwrap();
                    }
                });
            }
        });
        assert_eq!(server.db().table("sales").unwrap().len(), 5_160);
        let stats = server.commit_stats();
        assert_eq!(stats.mutations_committed, 160);
    }

    #[test]
    fn delete_in_a_batch_observes_earlier_appends() {
        let server = PbdsServer::new(sales_db(), ServerConfig::default());
        // Queue appends and a delete that matches only the appended rows
        // (amount 7777): the delete must see them despite run merging.
        let a1 = server.submit_mutation(
            "sales",
            Mutation::Append(vec![vec![Value::Int(1), Value::Int(7_777)]]),
        );
        let a2 = server.submit_mutation(
            "sales",
            Mutation::Append(vec![vec![Value::Int(2), Value::Int(7_777)]]),
        );
        let d =
            server.submit_mutation("sales", Mutation::DeleteWhere(col("amount").gt(lit(7_000))));
        let a3 = server.submit_mutation(
            "sales",
            Mutation::Append(vec![vec![Value::Int(3), Value::Int(7_777)]]),
        );
        assert_eq!(a1.wait().unwrap().rows_affected, 1);
        assert_eq!(a2.wait().unwrap().rows_affected, 1);
        // Whether or not the requests shared a batch, the delete runs after
        // both appends in submission order and removes exactly those rows.
        assert_eq!(d.wait().unwrap().rows_affected, 2);
        assert_eq!(a3.wait().unwrap().rows_affected, 1);
        let t = server.db();
        let t = t.table("sales").unwrap();
        assert_eq!(t.len(), 5_001);
        let sevens = t
            .rows()
            .iter()
            .filter(|r| r[1] == Value::Int(7_777))
            .count();
        assert_eq!(sevens, 1, "only the post-delete append survives");
    }

    #[test]
    fn servers_start_healthy_with_clean_robustness_counters() {
        let server = PbdsServer::new(sales_db(), ServerConfig::default());
        assert_eq!(server.health(), HealthState::Healthy);
        let mut events = server.robustness_events();
        // Hold stats are process-wide (other tests' servers contribute) and
        // tracked in every debug build; only the failure counters must be
        // pristine on a fresh server.
        events.lock_holds.clear();
        assert_eq!(events, RobustnessEvents::default());
    }

    #[test]
    fn injected_session_panic_surfaces_as_a_typed_error() {
        let server = PbdsServer::new(sales_db(), ServerConfig::default());
        let t = having_template();
        let stream: Vec<(QueryTemplate, Vec<Value>)> = (0..4)
            .map(|i| (t.clone(), vec![Value::Int(50_000 + i)]))
            .collect();
        server.inject_panic(PanicSite::Session);
        let err = server.serve_stream(&stream, 2).unwrap_err();
        assert_eq!(err, PbdsError::SessionPanicked);
        assert_eq!(server.robustness_events().session_panics, 1);
        // The panic was contained: the server keeps serving new streams.
        assert_eq!(server.health(), HealthState::Healthy);
        let served = server.serve_stream(&stream, 2).unwrap();
        assert_eq!(served.len(), stream.len());
    }

    #[test]
    fn injected_commit_panic_fails_its_batch_and_nothing_else() {
        let server = PbdsServer::new(sales_db(), ServerConfig::default());
        server.inject_panic(PanicSite::Commit);
        let err = server
            .apply_mutation(
                "sales",
                Mutation::Append(vec![vec![Value::Int(1), Value::Int(1)]]),
            )
            .unwrap_err();
        assert!(
            matches!(err, PbdsError::Persist(PersistError::Io(_))),
            "{err}"
        );
        let events = server.robustness_events();
        assert_eq!(events.commit_panics, 1);
        assert!(!events.messages.is_empty());
        // Nothing became visible, and the commit thread survived: the next
        // mutation commits normally.
        assert_eq!(server.db().table("sales").unwrap().len(), 5_000);
        server
            .apply_mutation(
                "sales",
                Mutation::Append(vec![vec![Value::Int(1), Value::Int(1)]]),
            )
            .unwrap();
        assert_eq!(server.db().table("sales").unwrap().len(), 5_001);
    }

    #[test]
    fn repeated_capture_panics_blow_the_capture_fuse() {
        let server = PbdsServer::new(sales_db(), ServerConfig::default());
        let session = server.session();
        let t = having_template();
        for i in 0..MAX_CAPTURE_PANICS {
            server.inject_panic(PanicSite::Capture);
            // A panicked capture stores nothing, so each distinct binding is
            // a fresh miss that re-enqueues capture work.
            let served = session.serve(&t, &[Value::Int(50_000 + i as i64)]).unwrap();
            assert!(
                served.capture_enqueued,
                "panic {i} stopped enqueueing early"
            );
            server.drain();
        }
        let events = server.robustness_events();
        assert_eq!(events.capture_panics, MAX_CAPTURE_PANICS);
        assert!(events.capture_disabled);
        assert_eq!(server.health(), HealthState::Degraded);
        // The fuse holds: further misses serve plainly without enqueueing,
        // and reads/writes keep working.
        let served = session.serve(&t, &[Value::Int(60_000)]).unwrap();
        assert!(!served.capture_enqueued);
        assert_eq!(served.record.action, Action::Plain);
        server
            .apply_mutation(
                "sales",
                Mutation::Append(vec![vec![Value::Int(1), Value::Int(1)]]),
            )
            .unwrap();
        assert_eq!(server.catalog().stored_sketches(), 0);
    }
}
