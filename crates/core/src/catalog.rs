//! The shared, thread-safe sketch catalog.
//!
//! The paper's deployment model (Sec. 6 / 9.5) is a *middleware* sitting in
//! front of the database: sketches captured for one instance of a
//! parameterized query are reused by later — possibly concurrent — instances.
//! That makes the sketch store a shared, contended data structure, not a
//! per-executor appendage. [`SketchCatalog`] is that store:
//!
//! * **template-keyed and sharded** — entries are grouped by template key
//!   (name + structural fingerprint, so same-named templates of different
//!   shape can never see each other's sketches);
//!   templates are distributed over [`RwLock`]-protected shards so sessions
//!   serving different templates never contend on one lock, and sessions
//!   serving the *same* template share a read lock on the hot reuse path;
//! * **memoized reuse checks** — the solver-backed reuse check
//!   ([`crate::reuse::ReuseChecker`]) is the per-query CPU cost of PBDS
//!   middleware. Its outcome depends only on `(template, captured binding,
//!   new binding)` and the (immutable) table statistics, so the catalog
//!   memoizes it per `(template, new binding)` and invalidates the memo when
//!   the template's entry set changes;
//! * **observable** — hit / miss / eviction / memo-hit counters
//!   ([`CatalogStats`]) are maintained with atomics so monitoring never takes
//!   a lock;
//! * **bounded** — an optional byte budget triggers least-recently-used
//!   eviction across shards, so a long-running server cannot grow its sketch
//!   store without bound.
//!
//! The catalog also centralizes the per-template metadata the self-tuning
//! loop needs — chosen safe attributes, adaptive-strategy evidence counters
//! and built partitions — so any number of [`crate::SelfTuningExecutor`]s and
//! [`crate::server::PbdsServer`] sessions can share one self-tuning state.

use crate::reuse::ReuseChecker;
use crate::safety::{PartitionAttr, SafetyChecker};
use pbds_algebra::QueryTemplate;
use pbds_provenance::ProvenanceSketch;
use pbds_storage::{Database, Partition, PartitionRef, RangePartition, Value};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Configuration of a [`SketchCatalog`].
#[derive(Debug, Clone)]
pub struct CatalogConfig {
    /// Number of lock shards (templates are hashed across them).
    pub shards: usize,
    /// Soft upper bound on the total bytes of stored sketches; `None` means
    /// unbounded. When an insertion pushes the total above the budget, the
    /// least-recently-used entries (other than the one just inserted) are
    /// evicted until the total fits again.
    pub byte_budget: Option<usize>,
    /// Upper bound on memoized reuse-check outcomes per shard; when reached,
    /// the shard's memo is cleared (the memo is a cache — clearing only costs
    /// re-derivation).
    pub memo_capacity: usize,
}

impl Default for CatalogConfig {
    fn default() -> Self {
        CatalogConfig {
            shards: 8,
            byte_budget: None,
            memo_capacity: 4096,
        }
    }
}

/// Snapshot of the catalog's counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CatalogStats {
    /// Reuse lookups answered by a stored sketch.
    pub hits: u64,
    /// Reuse lookups no stored sketch could answer.
    pub misses: u64,
    /// Entries evicted by the byte-budget LRU policy.
    pub evictions: u64,
    /// Lookups answered from the reuse-check memo (subset of hits + misses).
    pub memo_hits: u64,
    /// Number of stored sketch entries.
    pub stored: usize,
    /// Total approximate bytes of stored sketches.
    pub bytes: usize,
}

/// One stored sketch set: the binding it was captured for plus the captured
/// sketches (one per partitioned relation).
struct CatalogEntry {
    /// Stable id (survives vector reshuffling on eviction).
    id: u64,
    binding: Vec<Value>,
    sketches: Vec<ProvenanceSketch>,
    bytes: usize,
    /// Logical LRU timestamp (global clock tick of the last hit).
    last_used: AtomicU64,
    /// Number of instances that reused this entry.
    uses: AtomicU64,
}

/// Memoized outcome of "which stored entry (if any) answers this binding?".
type MemoKey = (String, Vec<Value>);

/// Catalog key of a template: its name combined with its structural
/// fingerprint, so two templates sharing a name but differing in query shape
/// can never see each other's sketches, memos or metadata (important for
/// `serve_plan`-style callers that pick names ad hoc).
fn template_key(template: &QueryTemplate) -> String {
    format!("{}#{:016x}", template.name(), template.fingerprint())
}

/// A catalog hit: the stored sketches plus the entry's stable id, which the
/// caller reports back through
/// [`SketchCatalog::note_revalidation_failure`] when the runtime top-k
/// re-validation disproves the reuse.
#[derive(Debug, Clone)]
pub struct ReusableSketches {
    /// Stable id of the stored entry that answered the lookup.
    pub entry_id: u64,
    /// The stored sketches (one per partitioned relation).
    pub sketches: Vec<ProvenanceSketch>,
}

#[derive(Default)]
struct Shard {
    /// Template key (name + fingerprint) → stored entries, in insertion order.
    entries: HashMap<String, Vec<CatalogEntry>>,
    /// Reuse-check memo: `Some(id)` = entry `id` answers the binding,
    /// `None` = nothing stored answers it.
    memo: HashMap<MemoKey, Option<u64>>,
    /// `(binding, entry)` pairs disproved by runtime top-k re-validation:
    /// the solver said reusable, execution said otherwise. Unlike negative
    /// memos, inserts do not clear these — a pair is only forgotten when the
    /// set reaches its capacity bound and single pairs are evicted.
    denied: HashSet<(MemoKey, u64)>,
    /// Bumped whenever the entry set or denial set changes; guards against a
    /// stale memo write racing with an insert/eviction/denial.
    version: u64,
}

/// Per-template self-tuning metadata shared across sessions.
#[derive(Default)]
struct TemplateMeta {
    /// Chosen safe partition attributes (`None` = query is not sketch-safe).
    safe_attrs: Option<Option<Vec<PartitionAttr>>>,
    /// Adaptive-strategy evidence counter (missed reuse opportunities).
    evidence: usize,
}

/// A thread-safe, shared store of provenance sketches keyed by query
/// template. See the [module docs](self) for the design.
pub struct SketchCatalog {
    config: CatalogConfig,
    shards: Vec<RwLock<Shard>>,
    meta: Mutex<HashMap<String, TemplateMeta>>,
    partitions: RwLock<HashMap<(String, String), PartitionRef>>,
    /// Bindings whose capture is currently in flight (server sessions use
    /// this to avoid enqueueing duplicate capture work).
    pending: Mutex<HashSet<MemoKey>>,
    bytes: AtomicUsize,
    clock: AtomicU64,
    next_id: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    memo_hits: AtomicU64,
}

impl std::fmt::Debug for SketchCatalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SketchCatalog")
            .field("config", &self.config)
            .field("stats", &self.stats())
            .finish()
    }
}

impl Default for SketchCatalog {
    fn default() -> Self {
        SketchCatalog::new(CatalogConfig::default())
    }
}

impl SketchCatalog {
    /// Create a catalog with the given configuration.
    pub fn new(config: CatalogConfig) -> Self {
        let shards = (0..config.shards.max(1))
            .map(|_| RwLock::new(Shard::default()))
            .collect();
        SketchCatalog {
            config,
            shards,
            meta: Mutex::new(HashMap::new()),
            partitions: RwLock::new(HashMap::new()),
            pending: Mutex::new(HashSet::new()),
            bytes: AtomicUsize::new(0),
            clock: AtomicU64::new(0),
            next_id: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            memo_hits: AtomicU64::new(0),
        }
    }

    /// Create a catalog with a byte budget and default sharding.
    pub fn with_byte_budget(budget: usize) -> Self {
        SketchCatalog::new(CatalogConfig {
            byte_budget: Some(budget),
            ..CatalogConfig::default()
        })
    }

    fn shard_for(&self, template: &str) -> &RwLock<Shard> {
        let mut h = DefaultHasher::new();
        template.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Find a stored sketch set that can answer `template(binding)`,
    /// consulting the reuse-check memo first. Counts a hit or a miss and
    /// refreshes the winning entry's LRU stamp.
    pub fn find_reusable(
        &self,
        db: &Database,
        template: &QueryTemplate,
        binding: &[Value],
    ) -> Option<ReusableSketches> {
        let name = template_key(template);
        let key: MemoKey = (name.clone(), binding.to_vec());
        let shard = self.shard_for(&name);

        // Fast path: memo lookup + fresh reuse scan under the read lock.
        let (outcome, version) = {
            let guard = shard.read().expect("catalog shard poisoned");
            if let Some(&memo) = guard.memo.get(&key) {
                self.memo_hits.fetch_add(1, Ordering::Relaxed);
                match memo {
                    Some(id) => {
                        let entries = guard.entries.get(&name).expect("memoized template");
                        let e = entries
                            .iter()
                            .find(|e| e.id == id)
                            .expect("memo points at live entry");
                        e.last_used.store(self.tick(), Ordering::Relaxed);
                        e.uses.fetch_add(1, Ordering::Relaxed);
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return Some(ReusableSketches {
                            entry_id: id,
                            sketches: e.sketches.clone(),
                        });
                    }
                    None => {
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        return None;
                    }
                }
            }
            let hit = scan_for_reusable(&guard, db, template, &key, binding);
            match hit {
                Some((id, sketches)) => {
                    if let Some(e) = guard
                        .entries
                        .get(&name)
                        .and_then(|entries| entries.iter().find(|e| e.id == id))
                    {
                        e.last_used.store(self.tick(), Ordering::Relaxed);
                        e.uses.fetch_add(1, Ordering::Relaxed);
                    }
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    (Some((id, sketches)), guard.version)
                }
                None => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    (None, guard.version)
                }
            }
        };

        // Record the outcome in the memo — but only if no insert/eviction/
        // denial changed the shard in between (a stale memo entry would
        // otherwise suppress reuse of a sketch inserted concurrently, or
        // resurrect a just-denied pair).
        {
            let mut guard = shard.write().expect("catalog shard poisoned");
            if guard.version == version {
                if guard.memo.len() >= self.config.memo_capacity {
                    guard.memo.clear();
                }
                guard.memo.insert(key, outcome.as_ref().map(|(id, _)| *id));
            }
        }
        outcome.map(|(entry_id, sketches)| ReusableSketches { entry_id, sketches })
    }

    /// Quiet coverage probe for background capture workers: true when a
    /// stored sketch already answers `template(binding)`. Unlike
    /// [`SketchCatalog::find_reusable`] this touches no hit/miss counters,
    /// no use counts, no LRU stamps and no memo — monitoring keeps
    /// reflecting serving traffic only, and a background re-check cannot
    /// keep a cold entry alive under eviction.
    pub fn is_covered(&self, db: &Database, template: &QueryTemplate, binding: &[Value]) -> bool {
        let name = template_key(template);
        let key: MemoKey = (name.clone(), binding.to_vec());
        let guard = self
            .shard_for(&name)
            .read()
            .expect("catalog shard poisoned");
        if let Some(&memo) = guard.memo.get(&key) {
            return memo.is_some();
        }
        scan_for_reusable(&guard, db, template, &key, binding).is_some()
    }

    /// Record that the runtime top-k re-validation disproved a reuse the
    /// solver had approved: the `(binding, entry)` pair is not offered again
    /// (until capacity-bound eviction forgets it), so the caller's plain
    /// fallback happens once instead of on every future lookup of this
    /// binding (an Eager client will capture a properly covering sketch on
    /// its next miss).
    pub fn note_revalidation_failure(
        &self,
        template: &QueryTemplate,
        binding: &[Value],
        entry_id: u64,
    ) {
        let name = template_key(template);
        let key: MemoKey = (name.clone(), binding.to_vec());
        let mut guard = self
            .shard_for(&name)
            .write()
            .expect("catalog shard poisoned");
        guard.version += 1; // invalidate concurrent memo writes for this pair
        guard.memo.remove(&key);
        // Bound the denial set by evicting single pairs, never wholesale: a
        // resurrected pair costs a double execution, so forgetting should be
        // as rare and as local as possible.
        if guard.denied.len() >= self.config.memo_capacity {
            if let Some(victim) = guard.denied.iter().next().cloned() {
                guard.denied.remove(&victim);
            }
        }
        guard.denied.insert((key, entry_id));
    }

    /// Store a freshly captured sketch set for `template(binding)`.
    /// Invalidates the template's negative memo entries and evicts LRU
    /// entries if the byte budget is exceeded. Returns the new entry's id.
    pub fn insert(
        &self,
        template: &QueryTemplate,
        binding: &[Value],
        sketches: Vec<ProvenanceSketch>,
    ) -> u64 {
        let name = template_key(template);
        let bytes: usize =
            sketches.iter().map(|s| s.size_bytes()).sum::<usize>() + std::mem::size_of_val(binding);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let entry = CatalogEntry {
            id,
            binding: binding.to_vec(),
            sketches,
            bytes,
            last_used: AtomicU64::new(self.tick()),
            uses: AtomicU64::new(0),
        };
        {
            let mut guard = self
                .shard_for(&name)
                .write()
                .expect("catalog shard poisoned");
            guard.version += 1;
            // The new sketch may answer bindings that previously missed:
            // negative memo entries for this template are now stale.
            guard
                .memo
                .retain(|(t, _), outcome| *t != name || outcome.is_some());
            guard.entries.entry(name).or_default().push(entry);
        }
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        if let Some(budget) = self.config.byte_budget {
            self.evict_to_budget(budget, id);
        }
        id
    }

    /// Evict least-recently-used entries (never `keep_id`) until the total
    /// byte count fits the budget or nothing else can be evicted.
    fn evict_to_budget(&self, budget: usize, keep_id: u64) {
        // Outer loop only repeats when concurrent inserts re-exceed the
        // budget while we evict; each iteration plans a whole *batch* of
        // victims from one global scan, so steady-state churn costs one scan
        // per over-budget insert, not one scan per evicted entry. Locks are
        // taken one shard at a time, never pairwise, so this cannot deadlock
        // against concurrent lookups or inserts.
        loop {
            let excess = self.bytes.load(Ordering::Relaxed).saturating_sub(budget);
            if excess == 0 {
                return;
            }
            // One global scan collecting (last_used, shard, id, bytes).
            let mut candidates: Vec<(u64, usize, u64, usize)> = Vec::new();
            for (si, shard) in self.shards.iter().enumerate() {
                let guard = shard.read().expect("catalog shard poisoned");
                for entries in guard.entries.values() {
                    for e in entries {
                        if e.id != keep_id {
                            candidates.push((
                                e.last_used.load(Ordering::Relaxed),
                                si,
                                e.id,
                                e.bytes,
                            ));
                        }
                    }
                }
            }
            if candidates.is_empty() {
                return; // nothing evictable (the new entry alone exceeds the budget)
            }
            // Plan the LRU-ordered batch covering the excess.
            candidates.sort_unstable_by_key(|&(last_used, ..)| last_used);
            let mut victims_by_shard: HashMap<usize, Vec<u64>> = HashMap::new();
            let mut planned = 0usize;
            for (_, si, id, bytes) in candidates {
                victims_by_shard.entry(si).or_default().push(id);
                planned += bytes;
                if planned >= excess {
                    break;
                }
            }
            let mut evicted_any = false;
            for (si, ids) in victims_by_shard {
                let mut guard = self.shards[si].write().expect("catalog shard poisoned");
                for vid in ids {
                    let mut freed = None;
                    for entries in guard.entries.values_mut() {
                        if let Some(pos) = entries.iter().position(|e| e.id == vid) {
                            freed = Some(entries[pos].bytes);
                            entries.remove(pos);
                            break;
                        }
                    }
                    // A victim may have vanished concurrently; skip it.
                    if let Some(freed) = freed {
                        guard.version += 1;
                        // Positive memo entries pointing at the evicted
                        // sketch are now dangling.
                        guard.memo.retain(|_, outcome| *outcome != Some(vid));
                        self.bytes.fetch_sub(freed, Ordering::Relaxed);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                        evicted_any = true;
                    }
                }
            }
            if !evicted_any {
                return; // every planned victim vanished; avoid spinning
            }
        }
    }

    /// Number of stored sketch entries across all templates.
    pub fn stored_sketches(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .expect("catalog shard poisoned")
                    .entries
                    .values()
                    .map(|v| v.len())
                    .sum::<usize>()
            })
            .sum()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CatalogStats {
        CatalogStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
            stored: self.stored_sketches(),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }

    /// Safe partition attributes for a template, computed once and shared
    /// (`None` = the query admits no safe sketch).
    pub fn safe_attrs(
        &self,
        db: &Database,
        template: &QueryTemplate,
    ) -> Option<Vec<PartitionAttr>> {
        let key = template_key(template);
        {
            let meta = self.meta.lock().expect("catalog meta poisoned");
            if let Some(known) = meta.get(&key).and_then(|m| m.safe_attrs.clone()) {
                return known;
            }
        }
        // Run the (solver-backed) safety analysis *outside* the lock so the
        // first query of one template cannot stall concurrent sessions
        // serving unrelated templates. A racing duplicate computation is
        // deterministic, so first-writer-wins is safe.
        let computed = SafetyChecker::new(db).choose_safe_attributes(template.plan(), &[]);
        let mut meta = self.meta.lock().expect("catalog meta poisoned");
        let entry = meta.entry(key).or_default();
        if entry.safe_attrs.is_none() {
            entry.safe_attrs = Some(computed);
        }
        entry.safe_attrs.clone().expect("just set")
    }

    /// Bump the adaptive-strategy evidence counter for a template; returns
    /// `true` (and resets the counter) once `threshold` missed reuse
    /// opportunities have accumulated.
    pub fn evidence_reached(&self, template: &QueryTemplate, threshold: usize) -> bool {
        let mut meta = self.meta.lock().expect("catalog meta poisoned");
        let entry = meta.entry(template_key(template)).or_default();
        entry.evidence += 1;
        if entry.evidence >= threshold {
            entry.evidence = 0;
            true
        } else {
            false
        }
    }

    /// Build (or fetch the cached) range partition for a safe attribute.
    pub fn partition_for(
        &self,
        db: &Database,
        attr: &PartitionAttr,
        fragments: usize,
    ) -> Option<PartitionRef> {
        let key = (attr.table.clone(), attr.column.clone());
        if let Some(p) = self
            .partitions
            .read()
            .expect("partition cache poisoned")
            .get(&key)
        {
            return Some(p.clone());
        }
        let table = db.table(&attr.table).ok()?;
        let values = table.column_iter(&attr.column)?;
        let distinct = table.stats().column(&attr.column)?.distinct;
        let partition = if distinct <= fragments {
            RangePartition::per_distinct_value_from_iter(&attr.table, &attr.column, values)?
        } else {
            RangePartition::equi_depth_from_iter(&attr.table, &attr.column, values, fragments)?
        };
        let part: PartitionRef = Arc::new(Partition::Range(partition));
        // Under a race, hand every caller the cached winner so all captures
        // share one `Arc<Partition>` per (table, column).
        Some(
            self.partitions
                .write()
                .expect("partition cache poisoned")
                .entry(key)
                .or_insert(part)
                .clone(),
        )
    }

    /// Mark a `(template, binding)` capture as in flight. Returns `false`
    /// when it already was (the caller should not enqueue duplicate work).
    pub fn begin_capture(&self, template: &QueryTemplate, binding: &[Value]) -> bool {
        self.pending
            .lock()
            .expect("pending set poisoned")
            .insert((template_key(template), binding.to_vec()))
    }

    /// Clear the in-flight mark set by [`SketchCatalog::begin_capture`].
    pub fn finish_capture(&self, template: &QueryTemplate, binding: &[Value]) {
        self.pending
            .lock()
            .expect("pending set poisoned")
            .remove(&(template_key(template), binding.to_vec()));
    }

    /// Total use count of all stored entries (for tests and monitoring).
    pub fn total_uses(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .expect("catalog shard poisoned")
                    .entries
                    .values()
                    .flatten()
                    .map(|e| e.uses.load(Ordering::Relaxed))
                    .sum::<u64>()
            })
            .sum()
    }
}

/// Scan a shard's entries for one the reuse check approves for `binding`,
/// skipping `(binding, entry)` pairs disproved by runtime re-validation.
/// Pure lookup: no counters, LRU stamps or memo writes (callers decide).
fn scan_for_reusable(
    shard: &Shard,
    db: &Database,
    template: &QueryTemplate,
    key: &MemoKey,
    binding: &[Value],
) -> Option<(u64, Vec<ProvenanceSketch>)> {
    let denied_ids: Vec<u64> = shard
        .denied
        .iter()
        .filter(|(k, _)| k == key)
        .map(|(_, id)| *id)
        .collect();
    let checker = ReuseChecker::new(db);
    shard
        .entries
        .get(&key.0)?
        .iter()
        .find(|e| {
            !denied_ids.contains(&e.id) && checker.can_reuse(template, &e.binding, binding).reusable
        })
        .map(|e| (e.id, e.sketches.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbds_algebra::{col, param, AggExpr, AggFunc, LogicalPlan};
    use pbds_storage::{DataType, Schema, TableBuilder};

    fn sales_db() -> Database {
        let schema = Schema::from_pairs(&[("grp", DataType::Int), ("amount", DataType::Int)]);
        let mut b = TableBuilder::new("sales", schema);
        b.block_size(100).index("grp");
        for i in 0..5_000i64 {
            b.push(vec![Value::Int(i % 50), Value::Int((i * 37) % 1000 + 1)]);
        }
        let mut db = Database::new();
        db.add_table(b.build());
        db
    }

    fn having_template() -> QueryTemplate {
        QueryTemplate::new(
            "sales-having",
            LogicalPlan::scan("sales")
                .aggregate(
                    vec!["grp"],
                    vec![AggExpr::new(AggFunc::Sum, col("amount"), "total")],
                )
                .filter(col("total").gt(param(0))),
        )
    }

    /// Capture a real sketch for one binding (via the safety checker and the
    /// capture pipeline) so catalog tests exercise genuine reuse semantics.
    fn capture_for(db: &Database, catalog: &SketchCatalog, bound: i64) -> Vec<ProvenanceSketch> {
        let t = having_template();
        let attrs = catalog.safe_attrs(db, &t).expect("sketch-safe");
        let parts: Vec<PartitionRef> = attrs
            .iter()
            .filter_map(|a| catalog.partition_for(db, a, 16))
            .collect();
        let captured = pbds_provenance::capture_sketches(
            db,
            &t.instantiate(&[Value::Int(bound)]),
            &parts,
            &pbds_provenance::CaptureConfig::optimized(),
        )
        .expect("capture");
        captured.sketches
    }

    #[test]
    fn miss_then_insert_then_hit_with_counters() {
        let db = sales_db();
        let catalog = SketchCatalog::default();
        let t = having_template();
        let loose = vec![Value::Int(50_000)];
        let tight = vec![Value::Int(53_000)];
        assert!(catalog.find_reusable(&db, &t, &loose).is_none());
        let sketches = capture_for(&db, &catalog, 50_000);
        catalog.insert(&t, &loose, sketches);
        // A tighter bound reuses the stored sketch.
        assert!(catalog.find_reusable(&db, &t, &tight).is_some());
        let stats = catalog.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.stored, 1);
        assert!(stats.bytes > 0);
        assert_eq!(catalog.total_uses(), 1);
    }

    #[test]
    fn memo_answers_repeated_lookups_and_is_invalidated_by_insert() {
        let db = sales_db();
        let catalog = SketchCatalog::default();
        let t = having_template();
        let binding = vec![Value::Int(53_000)];
        // Two identical misses: the second one comes from the memo.
        assert!(catalog.find_reusable(&db, &t, &binding).is_none());
        assert!(catalog.find_reusable(&db, &t, &binding).is_none());
        assert_eq!(catalog.stats().memo_hits, 1);
        // Inserting a reusable sketch must invalidate the negative memo:
        // the same binding now hits.
        let sketches = capture_for(&db, &catalog, 50_000);
        catalog.insert(&t, &[Value::Int(50_000)], sketches);
        assert!(
            catalog.find_reusable(&db, &t, &binding).is_some(),
            "negative memo survived an insert"
        );
        // And the positive outcome is memoized in turn.
        assert!(catalog.find_reusable(&db, &t, &binding).is_some());
        assert_eq!(catalog.stats().memo_hits, 2);
    }

    #[test]
    fn eviction_follows_lru_order_and_invalidates_memo() {
        let db = sales_db();
        let t = having_template();
        // Budget that fits two sketches but not three.
        let probe = capture_for(&db, &SketchCatalog::default(), 50_000);
        let one = probe.iter().map(|s| s.size_bytes()).sum::<usize>()
            + std::mem::size_of_val(&[Value::Int(0)][..]);
        let catalog = SketchCatalog::with_byte_budget(2 * one + one / 2);

        let b1 = vec![Value::Int(50_000)];
        let b2 = vec![Value::Int(40_000)];
        let b3 = vec![Value::Int(30_000)];
        catalog.insert(&t, &b1, capture_for(&db, &catalog, 50_000));
        catalog.insert(&t, &b2, capture_for(&db, &catalog, 40_000));
        // Touch entry 1 so entry 2 becomes the least recently used.
        assert!(catalog
            .find_reusable(&db, &t, &[Value::Int(53_000)])
            .is_some());
        catalog.insert(&t, &b3, capture_for(&db, &catalog, 30_000));

        let stats = catalog.stats();
        assert_eq!(stats.evictions, 1, "{stats:?}");
        assert_eq!(stats.stored, 2);
        assert!(stats.bytes <= 2 * one + one / 2);
        // Entry 1 (recently touched) survived; a binding only entry 1
        // answers still hits.
        assert!(catalog
            .find_reusable(&db, &t, &[Value::Int(55_000)])
            .is_some());
    }

    #[test]
    fn revalidation_failure_denies_the_pair_but_not_the_entry() {
        let db = sales_db();
        let catalog = SketchCatalog::default();
        let t = having_template();
        let captured = vec![Value::Int(50_000)];
        catalog.insert(&t, &captured, capture_for(&db, &catalog, 50_000));

        let bad = vec![Value::Int(53_000)];
        let good = vec![Value::Int(54_000)];
        let hit = catalog.find_reusable(&db, &t, &bad).expect("reusable");
        catalog.note_revalidation_failure(&t, &bad, hit.entry_id);
        // The disproved (binding, entry) pair is never offered again …
        assert!(catalog.find_reusable(&db, &t, &bad).is_none());
        assert!(!catalog.is_covered(&db, &t, &bad));
        // … and inserts (which clear negative memos) do not resurrect it …
        catalog.insert(
            &t,
            &[Value::Int(49_000)],
            capture_for(&db, &catalog, 49_000),
        );
        let after = catalog.find_reusable(&db, &t, &bad).expect("new entry");
        assert_ne!(after.entry_id, hit.entry_id, "denied entry resurfaced");
        // … while other bindings still reuse the original entry.
        assert!(catalog.find_reusable(&db, &t, &good).is_some());
    }

    #[test]
    fn is_covered_probe_touches_no_counters() {
        let db = sales_db();
        let catalog = SketchCatalog::default();
        let t = having_template();
        catalog.insert(
            &t,
            &[Value::Int(50_000)],
            capture_for(&db, &catalog, 50_000),
        );
        let before = catalog.stats();
        assert!(catalog.is_covered(&db, &t, &[Value::Int(53_000)]));
        assert!(!catalog.is_covered(&db, &t, &[Value::Int(10_000)]));
        let after = catalog.stats();
        assert_eq!(before, after, "quiet probe moved the counters");
        assert_eq!(catalog.total_uses(), 0);
    }

    #[test]
    fn pending_capture_marks_deduplicate() {
        let catalog = SketchCatalog::default();
        let t = having_template();
        let b = vec![Value::Int(7)];
        assert!(catalog.begin_capture(&t, &b));
        assert!(!catalog.begin_capture(&t, &b));
        catalog.finish_capture(&t, &b);
        assert!(catalog.begin_capture(&t, &b));
    }

    #[test]
    fn evidence_counter_is_shared_and_resets() {
        let catalog = SketchCatalog::default();
        let t = having_template();
        assert!(!catalog.evidence_reached(&t, 3));
        assert!(!catalog.evidence_reached(&t, 3));
        assert!(catalog.evidence_reached(&t, 3));
        assert!(!catalog.evidence_reached(&t, 3));
    }

    #[test]
    fn same_name_different_shape_templates_never_share_sketches() {
        // serve_plan-style callers pick names ad hoc: a sketch captured for
        // one query shape must be invisible to a different shape that
        // happens to reuse the name.
        let db = sales_db();
        let catalog = SketchCatalog::default();
        let t = having_template();
        catalog.insert(
            &t,
            &[Value::Int(50_000)],
            capture_for(&db, &catalog, 50_000),
        );
        let other_shape = QueryTemplate::new(
            t.name(), // same name, different plan
            LogicalPlan::scan("sales")
                .aggregate(
                    vec!["grp"],
                    vec![AggExpr::new(AggFunc::Count, col("amount"), "total")],
                )
                .filter(col("total").gt(param(0))),
        );
        assert!(
            catalog
                .find_reusable(&db, &other_shape, &[Value::Int(53_000)])
                .is_none(),
            "sketch leaked across query shapes"
        );
        assert!(!catalog.is_covered(&db, &other_shape, &[Value::Int(53_000)]));
        // The original shape still hits.
        assert!(catalog
            .find_reusable(&db, &t, &[Value::Int(53_000)])
            .is_some());
    }

    #[test]
    fn concurrent_lookups_and_inserts_are_consistent() {
        let db = Arc::new(sales_db());
        let catalog = Arc::new(SketchCatalog::default());
        let t = having_template();
        let sketches = capture_for(&db, &catalog, 50_000);
        catalog.insert(&t, &[Value::Int(50_000)], sketches);
        std::thread::scope(|s| {
            for w in 0..8 {
                let db = Arc::clone(&db);
                let catalog = Arc::clone(&catalog);
                let t = t.clone();
                s.spawn(move || {
                    for i in 0..50 {
                        // Tighter bounds hit, looser bounds miss.
                        let bound = 50_500 + ((w * 50 + i) % 40) * 100;
                        let got = catalog.find_reusable(&db, &t, &[Value::Int(bound)]);
                        assert!(got.is_some(), "bound {bound} should reuse");
                    }
                });
            }
        });
        let stats = catalog.stats();
        assert_eq!(stats.hits, 8 * 50);
        assert!(stats.memo_hits > 0);
        assert_eq!(catalog.total_uses(), 8 * 50);
    }
}
