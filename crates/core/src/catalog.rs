//! The shared, thread-safe sketch catalog.
//!
//! The paper's deployment model (Sec. 6 / 9.5) is a *middleware* sitting in
//! front of the database: sketches captured for one instance of a
//! parameterized query are reused by later — possibly concurrent — instances.
//! That makes the sketch store a shared, contended data structure, not a
//! per-executor appendage. [`SketchCatalog`] is that store:
//!
//! * **template-keyed and sharded** — entries are grouped by template key
//!   (name + structural fingerprint, so same-named templates of different
//!   shape can never see each other's sketches);
//!   templates are distributed over [`TrackedRwLock`]-protected shards so sessions
//!   serving different templates never contend on one lock, and sessions
//!   serving the *same* template share a read lock on the hot reuse path;
//! * **memoized reuse checks** — the solver-backed reuse check
//!   ([`crate::reuse::ReuseChecker`]) is the per-query CPU cost of PBDS
//!   middleware. Its outcome depends only on `(template, captured binding,
//!   new binding)` and the table statistics, so the catalog memoizes it per
//!   `(template, new binding)` and invalidates the memo when the template's
//!   entry set changes or the underlying data mutates;
//! * **epoch-checked under mutation** — every stored entry records, per
//!   sketched table, the table epoch its sketches reflect.
//!   [`SketchCatalog::on_append`] extends stored sketches with the fragments
//!   that received new rows (safe supersets, Lemma 5) and
//!   [`SketchCatalog::on_delete`] keeps them as still-safe supersets while
//!   invalidating everything derived from the old statistics; a lookup only
//!   ever offers entries whose recorded epochs match the serving database,
//!   so stale sketches are structurally unreachable;
//! * **observable** — hit / miss / eviction / memo-hit counters
//!   ([`CatalogStats`]) are maintained with atomics so monitoring never takes
//!   a lock;
//! * **bounded** — an optional byte budget triggers least-recently-used
//!   eviction across shards, so a long-running server cannot grow its sketch
//!   store without bound.
//!
//! The catalog also centralizes the per-template metadata the self-tuning
//! loop needs — chosen safe attributes, adaptive-strategy evidence counters
//! and built partitions — so any number of [`crate::SelfTuningExecutor`]s and
//! [`crate::server::PbdsServer`] sessions can share one self-tuning state.

use crate::reuse::ReuseChecker;
use crate::safety::{PartitionAttr, SafetyChecker};
use pbds_algebra::QueryTemplate;
use pbds_persist::{PersistedCatalog, PersistedCatalogEntry};
use pbds_provenance::ProvenanceSketch;
use pbds_storage::{Database, Partition, PartitionRef, RangePartition, Row, Schema, Value};
use pbds_telemetry::{Counter, Gauge, MetricsSnapshot, Registry};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pbds_sync::{TrackedMutex, TrackedRwLock};

/// Configuration of a [`SketchCatalog`].
#[derive(Debug, Clone)]
pub struct CatalogConfig {
    /// Number of lock shards (templates are hashed across them).
    pub shards: usize,
    /// Soft upper bound on the total bytes of stored sketches; `None` means
    /// unbounded. When an insertion pushes the total above the budget, the
    /// least-recently-used entries (other than the one just inserted) are
    /// evicted until the total fits again.
    pub byte_budget: Option<usize>,
    /// Upper bound on memoized reuse-check outcomes per shard; when reached,
    /// the shard's memo is cleared (the memo is a cache — clearing only costs
    /// re-derivation).
    pub memo_capacity: usize,
}

impl Default for CatalogConfig {
    fn default() -> Self {
        CatalogConfig {
            shards: 8,
            byte_budget: None,
            memo_capacity: 4096,
        }
    }
}

/// Snapshot of the catalog's counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CatalogStats {
    /// Reuse lookups answered by a stored sketch.
    pub hits: u64,
    /// Reuse lookups no stored sketch could answer.
    pub misses: u64,
    /// Entries evicted by the byte-budget LRU policy.
    pub evictions: u64,
    /// Lookups answered from the reuse-check memo (subset of hits + misses).
    pub memo_hits: u64,
    /// Stored sketches incrementally extended by an append
    /// ([`SketchCatalog::on_append`]).
    pub extended: u64,
    /// Entries invalidated by table mutations (unmaintainable on append,
    /// epoch gap, or stale at insert time).
    pub invalidated: u64,
    /// Coalesced mutation deltas processed by catalog maintenance
    /// ([`SketchCatalog::apply_deltas`] and the per-mutation hooks). Under
    /// group commit this grows by the number of *coalesced* deltas per
    /// batch, not the number of mutations — `mutations ≫ maintenance_deltas`
    /// is the batching win made visible.
    pub maintenance_deltas: u64,
    /// Number of stored sketch entries.
    pub stored: usize,
    /// Total approximate bytes of stored sketches.
    pub bytes: usize,
}

/// One coalesced table-level mutation delta of a commit batch, for
/// [`SketchCatalog::apply_deltas`]. The group-commit thread merges a batch's
/// per-mutation effects into at most a few of these per table (consecutive
/// appends collapse into one `Append` covering the combined rows) so the
/// catalog walks its shards once per batch instead of once per mutation.
#[derive(Debug, Clone)]
pub enum CatalogDelta {
    /// Rows appended to `table`: entries maintained to `prev_epoch` are
    /// extended over the appended rows and advance to `new_epoch`; entries
    /// with an epoch gap (or whose sketches cannot absorb a new row) are
    /// dropped.
    Append {
        /// The mutated table.
        table: String,
        /// The table's *data* epoch before the append(s).
        prev_epoch: u64,
        /// The table's data epoch after the append(s).
        new_epoch: u64,
        /// The appended rows, when the producer had to materialize them
        /// (e.g. a later delete in the same batch shifted the table's rows);
        /// `None` means "read them from `range` of the post-batch table".
        rows: Option<Vec<Row>>,
        /// Row positions the append covers in the post-batch table (used
        /// when `rows` is `None`).
        range: std::ops::Range<usize>,
    },
    /// Rows deleted from `table`: entries maintained to `prev_epoch` stay
    /// (still-safe supersets) and advance to `new_epoch`; entries with an
    /// epoch gap are dropped. Cached partitions and statistics-derived
    /// template metadata for the table are reset.
    Delete {
        /// The mutated table.
        table: String,
        /// The table's data epoch before the delete.
        prev_epoch: u64,
        /// The table's data epoch after the delete.
        new_epoch: u64,
    },
}

/// A [`CatalogDelta`] with its row payload resolved against the post-batch
/// database (borrowed — nothing is cloned on the maintenance path).
enum ResolvedDelta<'a> {
    Append {
        table: &'a str,
        schema: &'a Schema,
        prev_epoch: u64,
        new_epoch: u64,
        /// `None` when the rows could not be resolved: affected entries are
        /// dropped instead of extended over unknown rows.
        rows: Option<&'a [Row]>,
    },
    Delete {
        table: &'a str,
        prev_epoch: u64,
        new_epoch: u64,
    },
}

impl ResolvedDelta<'_> {
    fn table(&self) -> &str {
        match self {
            ResolvedDelta::Append { table, .. } | ResolvedDelta::Delete { table, .. } => table,
        }
    }

    fn new_epoch(&self) -> u64 {
        match self {
            ResolvedDelta::Append { new_epoch, .. } | ResolvedDelta::Delete { new_epoch, .. } => {
                *new_epoch
            }
        }
    }
}

/// One stored sketch set: the binding it was captured for plus the captured
/// sketches (one per partitioned relation).
struct CatalogEntry {
    /// Stable id (survives vector reshuffling on eviction).
    id: u64,
    binding: Vec<Value>,
    sketches: Vec<ProvenanceSketch>,
    /// Per sketched table, the table epoch the sketches reflect: the epoch
    /// of the database they were captured against, advanced by
    /// [`SketchCatalog::on_append`] / [`SketchCatalog::on_delete`] as the
    /// sketches are maintained across mutations. A reuse lookup only offers
    /// an entry whose recorded epochs match the serving database exactly, so
    /// a mutation that bypassed the maintenance hooks silently disables —
    /// never mis-serves — the stored sketches.
    capture_epochs: HashMap<String, u64>,
    bytes: usize,
    /// Logical LRU timestamp (global clock tick of the last hit).
    last_used: AtomicU64,
    /// Number of instances that reused this entry.
    uses: AtomicU64,
}

impl CatalogEntry {
    /// True when every sketched table still sits at the data epoch this
    /// entry's sketches were maintained to. Data epochs are globally unique
    /// (see `pbds_storage::Table::data_epoch`), so equality implies the
    /// table content is exactly the state the sketches describe — even
    /// across copy-on-write forks of a database; and design-only changes
    /// (new index, new block size) do not disturb freshness.
    fn fresh(&self, db: &Database) -> bool {
        self.capture_epochs.iter().all(|(table, &epoch)| {
            db.table(table)
                .map(|t| t.data_epoch() == epoch)
                .unwrap_or(false)
        })
    }
}

/// Record, per sketched table, the data epoch of the database the sketches
/// were captured against.
fn capture_epochs_of(db: &Database, sketches: &[ProvenanceSketch]) -> HashMap<String, u64> {
    let mut epochs = HashMap::new();
    for s in sketches {
        if let Ok(t) = db.table(s.table()) {
            epochs.insert(s.table().to_string(), t.data_epoch());
        }
    }
    epochs
}

/// Memoized outcome of "which stored entry (if any) answers this binding?".
type MemoKey = (String, Vec<Value>);

/// Catalog key of a template: its name combined with its structural
/// fingerprint, so two templates sharing a name but differing in query shape
/// can never see each other's sketches, memos or metadata (important for
/// `serve_plan`-style callers that pick names ad hoc).
fn template_key(template: &QueryTemplate) -> String {
    format!("{}#{:016x}", template.name(), template.fingerprint())
}

/// Outcome of [`SketchCatalog::import`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CatalogImport {
    /// Entries accepted (every capture epoch matched the recovered
    /// database).
    pub imported: usize,
    /// Entries dropped as epoch-stale (or structurally unusable).
    pub dropped: usize,
}

/// A catalog hit: the stored sketches plus the entry's stable id, which the
/// caller reports back through
/// [`SketchCatalog::note_revalidation_failure`] when the runtime top-k
/// re-validation disproves the reuse.
#[derive(Debug, Clone)]
pub struct ReusableSketches {
    /// Stable id of the stored entry that answered the lookup.
    pub entry_id: u64,
    /// The stored sketches (one per partitioned relation).
    pub sketches: Vec<ProvenanceSketch>,
}

#[derive(Default)]
struct Shard {
    /// Template key (name + fingerprint) → stored entries, in insertion order.
    entries: HashMap<String, Vec<CatalogEntry>>,
    /// Reuse-check memo: `Some(id)` = entry `id` answers the binding,
    /// `None` = nothing stored answers it.
    memo: HashMap<MemoKey, Option<u64>>,
    /// `(binding, entry)` pairs disproved by runtime top-k re-validation:
    /// the solver said reusable, execution said otherwise. Unlike negative
    /// memos, inserts do not clear these — a pair is only forgotten when the
    /// set reaches its capacity bound and single pairs are evicted.
    denied: HashSet<(MemoKey, u64)>,
    /// Bumped whenever the entry set or denial set changes; guards against a
    /// stale memo write racing with an insert/eviction/denial.
    version: u64,
}

/// Per-template self-tuning metadata shared across sessions.
#[derive(Default)]
struct TemplateMeta {
    /// Chosen safe partition attributes (`None` = query is not sketch-safe).
    safe_attrs: Option<Option<Vec<PartitionAttr>>>,
    /// Adaptive-strategy evidence counter (missed reuse opportunities).
    evidence: usize,
    /// Base tables the template reads (`None` until first seen). Lets
    /// mutation maintenance invalidate only the templates that actually
    /// touch the mutated table instead of wiping every cache.
    tables: Option<HashSet<String>>,
}

/// A thread-safe, shared store of provenance sketches keyed by query
/// template. See the [module docs](self) for the design.
pub struct SketchCatalog {
    config: CatalogConfig,
    shards: Vec<TrackedRwLock<Shard>>,
    meta: TrackedMutex<HashMap<String, TemplateMeta>>,
    partitions: TrackedRwLock<HashMap<(String, String), PartitionRef>>,
    /// Bindings whose capture is currently in flight (server sessions use
    /// this to avoid enqueueing duplicate capture work).
    pending: TrackedMutex<HashSet<MemoKey>>,
    /// Per-table epoch of the last mutation the catalog processed; inserts
    /// of sketch sets captured against an older epoch are rejected as stale.
    table_epochs: TrackedRwLock<HashMap<String, u64>>,
    clock: AtomicU64,
    next_id: AtomicU64,
    /// The catalog's metrics registry: every counter below is a cached
    /// handle into it, so [`SketchCatalog::stats`] and the Prometheus-style
    /// exposition ([`SketchCatalog::metrics_snapshot`]) read the same
    /// atomics monitoring dashboards scrape.
    registry: Registry,
    bytes: Gauge,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    memo_hits: Counter,
    extended: Counter,
    invalidated: Counter,
    maintenance_deltas: Counter,
}

impl std::fmt::Debug for SketchCatalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SketchCatalog")
            .field("config", &self.config)
            .field("stats", &self.stats())
            .finish()
    }
}

impl Default for SketchCatalog {
    fn default() -> Self {
        SketchCatalog::new(CatalogConfig::default())
    }
}

impl SketchCatalog {
    /// Create a catalog with the given configuration.
    pub fn new(config: CatalogConfig) -> Self {
        let shards = (0..config.shards.max(1))
            .map(|_| TrackedRwLock::new("catalog.shard", Shard::default()))
            .collect();
        let registry = Registry::new();
        SketchCatalog {
            config,
            shards,
            meta: TrackedMutex::new("catalog.meta", HashMap::new()),
            partitions: TrackedRwLock::new("catalog.partitions", HashMap::new()),
            pending: TrackedMutex::new("catalog.pending", HashSet::new()),
            table_epochs: TrackedRwLock::new("catalog.table_epochs", HashMap::new()),
            clock: AtomicU64::new(0),
            next_id: AtomicU64::new(0),
            bytes: registry.gauge("pbds_catalog_bytes"),
            hits: registry.counter("pbds_catalog_hits"),
            misses: registry.counter("pbds_catalog_misses"),
            evictions: registry.counter("pbds_catalog_evictions"),
            memo_hits: registry.counter("pbds_catalog_memo_hits"),
            extended: registry.counter("pbds_catalog_extended"),
            invalidated: registry.counter("pbds_catalog_invalidated"),
            maintenance_deltas: registry.counter("pbds_catalog_maintenance_deltas"),
            registry,
        }
    }

    /// Create a catalog with a byte budget and default sharding.
    pub fn with_byte_budget(budget: usize) -> Self {
        SketchCatalog::new(CatalogConfig {
            byte_budget: Some(budget),
            ..CatalogConfig::default()
        })
    }

    fn shard_for(&self, template: &str) -> &TrackedRwLock<Shard> {
        let mut h = DefaultHasher::new();
        template.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Find a stored sketch set that can answer `template(binding)`,
    /// consulting the reuse-check memo first. Counts a hit or a miss and
    /// refreshes the winning entry's LRU stamp.
    pub fn find_reusable(
        &self,
        db: &Database,
        template: &QueryTemplate,
        binding: &[Value],
    ) -> Option<ReusableSketches> {
        let name = template_key(template);
        let key: MemoKey = (name.clone(), binding.to_vec());
        let shard = self.shard_for(&name);

        // Fast path: memo lookup + fresh reuse scan under the read lock.
        let (outcome, version) = {
            let guard = shard.read();
            if let Some(&memo) = guard.memo.get(&key) {
                match memo {
                    // The memoized entry is only served while its capture
                    // epochs still match the database: a mutation that
                    // bypassed the maintenance hooks falls through to the
                    // epoch-checked scan below instead of serving stale
                    // sketches.
                    Some(id) => {
                        let entries = guard.entries.get(&name).expect("memoized template");
                        let e = entries
                            .iter()
                            .find(|e| e.id == id)
                            .expect("memo points at live entry");
                        if e.fresh(db) {
                            self.memo_hits.inc();
                            e.last_used.store(self.tick(), Ordering::Relaxed);
                            e.uses.fetch_add(1, Ordering::Relaxed);
                            self.hits.inc();
                            return Some(ReusableSketches {
                                entry_id: id,
                                sketches: e.sketches.clone(),
                            });
                        }
                    }
                    None => {
                        self.memo_hits.inc();
                        self.misses.inc();
                        return None;
                    }
                }
            }
            let hit = scan_for_reusable(&guard, db, template, &key, binding);
            match hit {
                Some((id, sketches)) => {
                    if let Some(e) = guard
                        .entries
                        .get(&name)
                        .and_then(|entries| entries.iter().find(|e| e.id == id))
                    {
                        e.last_used.store(self.tick(), Ordering::Relaxed);
                        e.uses.fetch_add(1, Ordering::Relaxed);
                    }
                    self.hits.inc();
                    (Some((id, sketches)), guard.version)
                }
                None => {
                    self.misses.inc();
                    (None, guard.version)
                }
            }
        };

        // Record the outcome in the memo — but only if no insert/eviction/
        // denial changed the shard in between (a stale memo entry would
        // otherwise suppress reuse of a sketch inserted concurrently, or
        // resurrect a just-denied pair), and only if every entry of the
        // template is fresh against `db`. An outcome computed while any
        // entry disagrees with the snapshot's data epoch — e.g. a session
        // holding a pre-mutation snapshot after the entry was maintained
        // forward — is snapshot-dependent: caching its miss would suppress
        // reuse for every later current-snapshot lookup of this binding.
        {
            let mut guard = shard.write();
            let all_fresh = guard
                .entries
                .get(&name)
                .is_none_or(|es| es.iter().all(|e| e.fresh(db)));
            if guard.version == version && all_fresh {
                if guard.memo.len() >= self.config.memo_capacity {
                    guard.memo.clear();
                }
                guard.memo.insert(key, outcome.as_ref().map(|(id, _)| *id));
            }
        }
        outcome.map(|(entry_id, sketches)| ReusableSketches { entry_id, sketches })
    }

    /// Quiet coverage probe for background capture workers: true when a
    /// stored sketch already answers `template(binding)`. Unlike
    /// [`SketchCatalog::find_reusable`] this touches no hit/miss counters,
    /// no use counts, no LRU stamps and no memo — monitoring keeps
    /// reflecting serving traffic only, and a background re-check cannot
    /// keep a cold entry alive under eviction.
    pub fn is_covered(&self, db: &Database, template: &QueryTemplate, binding: &[Value]) -> bool {
        let name = template_key(template);
        let key: MemoKey = (name.clone(), binding.to_vec());
        let guard = self.shard_for(&name).read();
        if let Some(&memo) = guard.memo.get(&key) {
            return memo.is_some();
        }
        scan_for_reusable(&guard, db, template, &key, binding).is_some()
    }

    /// Record that the runtime top-k re-validation disproved a reuse the
    /// solver had approved: the `(binding, entry)` pair is not offered again
    /// (until capacity-bound eviction forgets it), so the caller's plain
    /// fallback happens once instead of on every future lookup of this
    /// binding (an Eager client will capture a properly covering sketch on
    /// its next miss).
    pub fn note_revalidation_failure(
        &self,
        template: &QueryTemplate,
        binding: &[Value],
        entry_id: u64,
    ) {
        let name = template_key(template);
        let key: MemoKey = (name.clone(), binding.to_vec());
        let mut guard = self.shard_for(&name).write();
        guard.version += 1; // invalidate concurrent memo writes for this pair
        guard.memo.remove(&key);
        // Bound the denial set by evicting single pairs, never wholesale: a
        // resurrected pair costs a double execution, so forgetting should be
        // as rare and as local as possible.
        if guard.denied.len() >= self.config.memo_capacity {
            if let Some(victim) = guard.denied.iter().next().cloned() {
                guard.denied.remove(&victim);
            }
        }
        guard.denied.insert((key, entry_id));
    }

    /// Store a freshly captured sketch set for `template(binding)`,
    /// recording — per sketched table — the epoch of `db` (the database the
    /// capture ran against) so later mutations can maintain or invalidate
    /// the entry. A sketch set captured against a table epoch older than the
    /// last mutation this catalog processed is **rejected** (it would serve
    /// pre-mutation data) and `None` is returned; otherwise invalidates the
    /// template's negative memo entries, evicts LRU entries if the byte
    /// budget is exceeded, and returns the new entry's id.
    pub fn insert(
        &self,
        db: &Database,
        template: &QueryTemplate,
        binding: &[Value],
        sketches: Vec<ProvenanceSketch>,
    ) -> Option<u64> {
        let capture_epochs = capture_epochs_of(db, &sketches);
        {
            let mut known = self.table_epochs.write();
            for (table, &epoch) in &capture_epochs {
                match known.get(table) {
                    Some(&k) if k > epoch => {
                        // Captured against a pre-mutation snapshot: stale.
                        self.invalidated.inc();
                        return None;
                    }
                    _ => {
                        known.insert(table.clone(), epoch);
                    }
                }
            }
        }
        let name = template_key(template);
        // Record which base tables the template reads, so mutation
        // maintenance can spare the caches of unrelated templates.
        self.meta
            .lock()
            .entry(name.clone())
            .or_default()
            .tables
            .get_or_insert_with(|| template.plan().tables().into_iter().collect());
        let bytes: usize =
            sketches.iter().map(|s| s.size_bytes()).sum::<usize>() + std::mem::size_of_val(binding);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let entry = CatalogEntry {
            id,
            binding: binding.to_vec(),
            sketches,
            capture_epochs,
            bytes,
            last_used: AtomicU64::new(self.tick()),
            uses: AtomicU64::new(0),
        };
        {
            let mut guard = self.shard_for(&name).write();
            guard.version += 1;
            // The new sketch may answer bindings that previously missed:
            // negative memo entries for this template are now stale.
            guard
                .memo
                .retain(|(t, _), outcome| *t != name || outcome.is_some());
            guard.entries.entry(name).or_default().push(entry);
        }
        self.bytes.add(bytes as i64);
        if let Some(budget) = self.config.byte_budget {
            self.evict_to_budget(budget, id);
        }
        Some(id)
    }

    /// Maintain the catalog across an append of `new_rows` to `table`
    /// (`db` is the **post-mutation** database; `prev_epoch` the table's
    /// *data* epoch before the append).
    ///
    /// Per the paper's superset semantics, a stored sketch stays safe across
    /// an append when every fragment that received new rows joins the
    /// sketch: untouched groups keep their membership, and any group whose
    /// aggregate the new rows changed lives entirely inside a now-included
    /// fragment (the partition attributes are the group-defining safe
    /// attributes). Entries are therefore *extended* in place — unless a new
    /// row has no fragment under an entry's partition (novel composite key /
    /// NULL partitioning value) or the entry missed an earlier mutation
    /// (epoch gap), in which case the entry is dropped and must be
    /// recaptured. Reuse memos and cached safe-attribute choices of the
    /// templates reading this table are invalidated (the reuse check and
    /// safety analysis depend on its statistics, which changed; e.g. a new
    /// negative value can break a non-negativity assumption) — templates
    /// over unrelated tables keep their caches.
    pub fn on_append(&self, db: &Database, table: &str, new_rows: &[Row], prev_epoch: u64) {
        let Ok(t) = db.table(table) else { return };
        self.apply_resolved(&[ResolvedDelta::Append {
            table,
            schema: t.schema(),
            prev_epoch,
            new_epoch: t.data_epoch(),
            rows: Some(new_rows),
        }]);
    }

    /// Maintain the catalog across a delete from `table` (`db` is the
    /// **post-mutation** database; `prev_epoch` the table's *data* epoch
    /// before the delete).
    ///
    /// Stored sketches are kept: a sketch instance still contains *all*
    /// remaining rows of every included fragment, so aggregates over
    /// included groups are computed correctly, and under the safety rules'
    /// monotonicity assumptions a group that was excluded cannot enter the
    /// result by losing rows — the sketch remains a safe superset. What a
    /// delete does invalidate is everything derived from the old
    /// statistics: reuse memos, memoized safe-attribute choices, adaptive
    /// evidence counters, and cached range partitions of the table (their
    /// equi-depth boundaries came from the old histogram). Entries that
    /// missed an earlier mutation (epoch gap) are dropped.
    pub fn on_delete(&self, db: &Database, table: &str, prev_epoch: u64) {
        let Ok(t) = db.table(table) else { return };
        self.apply_resolved(&[ResolvedDelta::Delete {
            table,
            prev_epoch,
            new_epoch: t.data_epoch(),
        }]);
    }

    /// Maintain the catalog across a whole **commit batch** of coalesced
    /// mutation deltas in one pass: the table-epoch map, reuse memos, every
    /// stored entry, cached partitions and per-template metadata are each
    /// visited **once** for the batch instead of once per mutation, and
    /// every entry is extended/advanced through the deltas *in order* — so a
    /// sketch captured at the pre-batch epoch ends the pass stamped with the
    /// post-batch epoch exactly as if [`SketchCatalog::on_append`] /
    /// [`SketchCatalog::on_delete`] had run per mutation. `db` is the
    /// **post-batch** database (deltas that reference appended rows by tail
    /// range resolve against it). Deltas for tables `db` does not contain
    /// are skipped, matching the per-mutation hooks.
    pub fn apply_deltas(&self, db: &Database, deltas: &[CatalogDelta]) {
        let resolved: Vec<ResolvedDelta<'_>> = deltas
            .iter()
            .filter_map(|d| match d {
                CatalogDelta::Append {
                    table,
                    prev_epoch,
                    new_epoch,
                    rows,
                    range,
                } => {
                    let t = db.table(table).ok()?;
                    // A range that no longer addresses the post-batch table
                    // (a later delete shifted rows and the producer failed to
                    // materialize) resolves to `None`: affected entries are
                    // dropped rather than extended over the wrong rows.
                    let rows: Option<&[Row]> = match rows {
                        Some(owned) => Some(owned.as_slice()),
                        None => t.rows().get(range.clone()),
                    };
                    Some(ResolvedDelta::Append {
                        table,
                        schema: t.schema(),
                        prev_epoch: *prev_epoch,
                        new_epoch: *new_epoch,
                        rows,
                    })
                }
                CatalogDelta::Delete {
                    table,
                    prev_epoch,
                    new_epoch,
                } => {
                    db.table(table).ok()?;
                    Some(ResolvedDelta::Delete {
                        table,
                        prev_epoch: *prev_epoch,
                        new_epoch: *new_epoch,
                    })
                }
            })
            .collect();
        self.apply_resolved(&resolved);
    }

    /// Shared implementation of [`SketchCatalog::on_append`],
    /// [`SketchCatalog::on_delete`] and [`SketchCatalog::apply_deltas`]:
    /// one pass over the catalog applying each delta in order.
    fn apply_resolved(&self, deltas: &[ResolvedDelta<'_>]) {
        if deltas.is_empty() {
            return;
        }
        self.maintenance_deltas.add(deltas.len() as u64);
        {
            let mut known = self.table_epochs.write();
            for d in deltas {
                known.insert(d.table().to_string(), d.new_epoch());
            }
        }
        let affected: HashSet<&str> = deltas.iter().map(|d| d.table()).collect();
        let deleted: HashSet<&str> = deltas
            .iter()
            .filter(|d| matches!(d, ResolvedDelta::Delete { .. }))
            .map(|d| d.table())
            .collect();
        let unaffected = self.templates_unaffected_by_all(&affected);
        for shard in &self.shards {
            let mut guard = shard.write();
            guard.version += 1;
            guard.memo.retain(|(tkey, _), _| unaffected.contains(tkey));
            let mut freed = 0usize;
            let mut dropped = 0u64;
            let mut extended = 0u64;
            for entries in guard.entries.values_mut() {
                entries.retain_mut(|e| {
                    for d in deltas {
                        let table = d.table();
                        if !e.capture_epochs.contains_key(table) {
                            continue; // entry does not sketch this table
                        }
                        let keep = match d {
                            ResolvedDelta::Append {
                                prev_epoch,
                                new_epoch,
                                schema,
                                rows,
                                ..
                            } => {
                                let maintainable = e.capture_epochs.get(table) == Some(prev_epoch)
                                    && rows.is_some_and(|rows| {
                                        e.sketches
                                            .iter_mut()
                                            .filter(|s| s.table() == table)
                                            .all(|s| s.extend_for_append(schema, rows))
                                    });
                                if maintainable {
                                    e.capture_epochs.insert(table.to_string(), *new_epoch);
                                    extended += 1;
                                }
                                maintainable
                            }
                            ResolvedDelta::Delete {
                                prev_epoch,
                                new_epoch,
                                ..
                            } => {
                                let current = e.capture_epochs.get(table) == Some(prev_epoch);
                                if current {
                                    e.capture_epochs.insert(table.to_string(), *new_epoch);
                                }
                                current
                            }
                        };
                        if !keep {
                            freed += e.bytes;
                            dropped += 1;
                            return false;
                        }
                    }
                    true
                });
            }
            self.bytes.add(-(freed as i64));
            self.invalidated.add(dropped);
            self.extended.add(extended);
        }
        if !deleted.is_empty() {
            self.partitions
                .write()
                .retain(|(t, _), _| !deleted.contains(t.as_str()));
        }
        for table in affected {
            self.reset_template_meta(table, deleted.contains(table));
        }
    }

    /// Clear memoized safe-attribute choices (they depend on table
    /// statistics) and, when `reset_evidence`, the adaptive strategy's
    /// evidence counters — but only for templates that read `table` (or
    /// whose table set is not known yet); templates over unrelated tables
    /// keep their caches.
    fn reset_template_meta(&self, table: &str, reset_evidence: bool) {
        let mut meta = self.meta.lock();
        for entry in meta.values_mut() {
            if entry.tables.as_ref().is_none_or(|ts| ts.contains(table)) {
                entry.safe_attrs = None;
                if reset_evidence {
                    entry.evidence = 0;
                }
            }
        }
    }

    /// Template keys proven *not* to read any of `tables` (their memoized
    /// reuse outcomes survive a batch mutating those tables); everything
    /// else — including templates the catalog has no table set for — must be
    /// invalidated.
    fn templates_unaffected_by_all(&self, tables: &HashSet<&str>) -> HashSet<String> {
        let meta = self.meta.lock();
        meta.iter()
            .filter(|(_, m)| {
                m.tables
                    .as_ref()
                    .is_some_and(|ts| tables.iter().all(|t| !ts.contains(*t)))
            })
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// Evict least-recently-used entries (never `keep_id`) until the total
    /// byte count fits the budget or nothing else can be evicted.
    fn evict_to_budget(&self, budget: usize, keep_id: u64) {
        // Outer loop only repeats when concurrent inserts re-exceed the
        // budget while we evict; each iteration plans a whole *batch* of
        // victims from one global scan, so steady-state churn costs one scan
        // per over-budget insert, not one scan per evicted entry. Locks are
        // taken one shard at a time, never pairwise, so this cannot deadlock
        // against concurrent lookups or inserts.
        loop {
            let excess = (self.bytes.get().max(0) as usize).saturating_sub(budget);
            if excess == 0 {
                return;
            }
            // One global scan collecting (last_used, shard, id, bytes).
            let mut candidates: Vec<(u64, usize, u64, usize)> = Vec::new();
            for (si, shard) in self.shards.iter().enumerate() {
                let guard = shard.read();
                for entries in guard.entries.values() {
                    for e in entries {
                        if e.id != keep_id {
                            candidates.push((
                                e.last_used.load(Ordering::Relaxed),
                                si,
                                e.id,
                                e.bytes,
                            ));
                        }
                    }
                }
            }
            if candidates.is_empty() {
                return; // nothing evictable (the new entry alone exceeds the budget)
            }
            // Plan the LRU-ordered batch covering the excess.
            candidates.sort_unstable_by_key(|&(last_used, ..)| last_used);
            let mut victims_by_shard: HashMap<usize, Vec<u64>> = HashMap::new();
            let mut planned = 0usize;
            for (_, si, id, bytes) in candidates {
                victims_by_shard.entry(si).or_default().push(id);
                planned += bytes;
                if planned >= excess {
                    break;
                }
            }
            let mut evicted_any = false;
            for (si, ids) in victims_by_shard {
                let mut guard = self.shards[si].write();
                for vid in ids {
                    let mut freed = None;
                    for entries in guard.entries.values_mut() {
                        if let Some(pos) = entries.iter().position(|e| e.id == vid) {
                            freed = Some(entries[pos].bytes);
                            entries.remove(pos);
                            break;
                        }
                    }
                    // A victim may have vanished concurrently; skip it.
                    if let Some(freed) = freed {
                        guard.version += 1;
                        // Positive memo entries pointing at the evicted
                        // sketch are now dangling.
                        guard.memo.retain(|_, outcome| *outcome != Some(vid));
                        self.bytes.add(-(freed as i64));
                        self.evictions.inc();
                        evicted_any = true;
                    }
                }
            }
            if !evicted_any {
                return; // every planned victim vanished; avoid spinning
            }
        }
    }

    /// Export every stored entry into the durable
    /// [`PersistedCatalog`] format: template key, binding,
    /// sketches and the per-table capture epochs each entry was maintained
    /// to. Volatile state — reuse memos, denial sets, LRU stamps, counters,
    /// safe-attribute choices, cached partitions — is deliberately *not*
    /// exported; it is cheap to re-derive and much of it depends on table
    /// statistics that a later process may not reproduce. Entries are
    /// emitted in a deterministic order (template key, then binding).
    pub fn export(&self) -> PersistedCatalog {
        let mut entries: Vec<PersistedCatalogEntry> = Vec::new();
        for shard in &self.shards {
            let guard = shard.read();
            for (key, stored) in &guard.entries {
                for e in stored {
                    let mut capture_epochs: Vec<(String, u64)> = e
                        .capture_epochs
                        .iter()
                        .map(|(t, &epoch)| (t.clone(), epoch))
                        .collect();
                    capture_epochs.sort();
                    entries.push(PersistedCatalogEntry {
                        template_key: key.clone(),
                        binding: e.binding.clone(),
                        sketches: e.sketches.clone(),
                        capture_epochs,
                    });
                }
            }
        }
        entries.sort_by(|a, b| (&a.template_key, &a.binding).cmp(&(&b.template_key, &b.binding)));
        PersistedCatalog { entries }
    }

    /// Import entries from a persisted catalog, validating each against the
    /// recovered database: an entry is accepted only when **every** sketch's
    /// table exists in `db` and sits at exactly the data epoch the entry
    /// recorded — anything else (a table that was mutated after the catalog
    /// was written, a table the snapshot no longer has, an entry missing an
    /// epoch for one of its sketched tables) is dropped and counted. Stale
    /// sketches are therefore structurally unreachable across restarts
    /// exactly as they are within a process. Also seeds the catalog's
    /// per-table mutation epochs from `db`, so a capture racing a later
    /// mutation is rejected just as in a fresh catalog.
    ///
    /// Intended for a freshly created catalog during recovery; imported
    /// entries start with cold LRU stamps and zero use counts.
    pub fn import(&self, db: &Database, persisted: PersistedCatalog) -> CatalogImport {
        {
            let mut known = self.table_epochs.write();
            for name in db.table_names() {
                let epoch = db.table(name).expect("listed table exists").data_epoch();
                known.insert(name.to_string(), epoch);
            }
        }
        let mut report = CatalogImport::default();
        for entry in persisted.entries {
            let epochs: HashMap<String, u64> = entry.capture_epochs.into_iter().collect();
            let valid = !entry.sketches.is_empty()
                && entry.sketches.iter().all(|s| {
                    epochs.get(s.table()).is_some_and(|&epoch| {
                        db.table(s.table())
                            .map(|t| t.data_epoch() == epoch)
                            .unwrap_or(false)
                    })
                })
                && epochs.iter().all(|(table, &epoch)| {
                    db.table(table)
                        .map(|t| t.data_epoch() == epoch)
                        .unwrap_or(false)
                });
            if !valid {
                report.dropped += 1;
                continue;
            }
            let bytes: usize = entry.sketches.iter().map(|s| s.size_bytes()).sum::<usize>()
                + std::mem::size_of_val(&entry.binding[..]);
            let stored = CatalogEntry {
                id: self.next_id.fetch_add(1, Ordering::Relaxed),
                binding: entry.binding,
                sketches: entry.sketches,
                capture_epochs: epochs,
                bytes,
                last_used: AtomicU64::new(self.tick()),
                uses: AtomicU64::new(0),
            };
            {
                let mut guard = self.shard_for(&entry.template_key).write();
                guard.version += 1;
                guard
                    .entries
                    .entry(entry.template_key)
                    .or_default()
                    .push(stored);
            }
            self.bytes.add(bytes as i64);
            report.imported += 1;
        }
        self.invalidated.add(report.dropped as u64);
        if let Some(budget) = self.config.byte_budget {
            self.evict_to_budget(budget, u64::MAX);
        }
        report
    }

    /// Number of stored sketch entries across all templates.
    pub fn stored_sketches(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().entries.values().map(|v| v.len()).sum::<usize>())
            .sum()
    }

    /// Counter snapshot. A typed view over the same registry atomics the
    /// Prometheus-style exposition ([`SketchCatalog::metrics_snapshot`])
    /// reads — the two can never disagree.
    pub fn stats(&self) -> CatalogStats {
        CatalogStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
            memo_hits: self.memo_hits.get(),
            extended: self.extended.get(),
            invalidated: self.invalidated.get(),
            maintenance_deltas: self.maintenance_deltas.get(),
            stored: self.stored_sketches(),
            bytes: self.bytes.get().max(0) as usize,
        }
    }

    /// Freeze this catalog's `pbds_catalog_*` metrics into a
    /// [`MetricsSnapshot`] — counters plus the `pbds_catalog_stored` gauge
    /// (derived from the shard walk, so it is injected at snapshot time
    /// rather than maintained as a live atomic).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.registry.snapshot();
        snap.gauges.insert(
            "pbds_catalog_stored".to_string(),
            self.stored_sketches() as i64,
        );
        snap
    }

    /// Safe partition attributes for a template, computed once and shared
    /// (`None` = the query admits no safe sketch).
    pub fn safe_attrs(
        &self,
        db: &Database,
        template: &QueryTemplate,
    ) -> Option<Vec<PartitionAttr>> {
        let key = template_key(template);
        {
            let meta = self.meta.lock();
            if let Some(known) = meta.get(&key).and_then(|m| m.safe_attrs.clone()) {
                return known;
            }
        }
        // Run the (solver-backed) safety analysis *outside* the lock so the
        // first query of one template cannot stall concurrent sessions
        // serving unrelated templates. A racing duplicate computation is
        // deterministic, so first-writer-wins is safe.
        let computed = SafetyChecker::new(db).choose_safe_attributes(template.plan(), &[]);
        let mut meta = self.meta.lock();
        let entry = meta.entry(key).or_default();
        if entry.safe_attrs.is_none() {
            entry.safe_attrs = Some(computed);
        }
        entry
            .tables
            .get_or_insert_with(|| template.plan().tables().into_iter().collect());
        entry.safe_attrs.clone().expect("just set")
    }

    /// Bump the adaptive-strategy evidence counter for a template; returns
    /// `true` (and resets the counter) once `threshold` missed reuse
    /// opportunities have accumulated.
    pub fn evidence_reached(&self, template: &QueryTemplate, threshold: usize) -> bool {
        let mut meta = self.meta.lock();
        let entry = meta.entry(template_key(template)).or_default();
        entry.evidence += 1;
        if entry.evidence >= threshold {
            entry.evidence = 0;
            true
        } else {
            false
        }
    }

    /// Build (or fetch the cached) range partition for a safe attribute.
    pub fn partition_for(
        &self,
        db: &Database,
        attr: &PartitionAttr,
        fragments: usize,
    ) -> Option<PartitionRef> {
        let key = (attr.table.clone(), attr.column.clone());
        if let Some(p) = self.partitions.read().get(&key) {
            return Some(p.clone());
        }
        let table = db.table(&attr.table).ok()?;
        let values = table.column_iter(&attr.column)?;
        let distinct = table.stats().column(&attr.column)?.distinct;
        let partition = if distinct <= fragments {
            RangePartition::per_distinct_value_from_iter(&attr.table, &attr.column, values)?
        } else {
            RangePartition::equi_depth_from_iter(&attr.table, &attr.column, values, fragments)?
        };
        let part: PartitionRef = Arc::new(Partition::Range(partition));
        // Under a race, hand every caller the cached winner so all captures
        // share one `Arc<Partition>` per (table, column).
        Some(self.partitions.write().entry(key).or_insert(part).clone())
    }

    /// Mark a `(template, binding)` capture as in flight. Returns `false`
    /// when it already was (the caller should not enqueue duplicate work).
    pub fn begin_capture(&self, template: &QueryTemplate, binding: &[Value]) -> bool {
        self.pending
            .lock()
            .insert((template_key(template), binding.to_vec()))
    }

    /// Clear the in-flight mark set by [`SketchCatalog::begin_capture`].
    pub fn finish_capture(&self, template: &QueryTemplate, binding: &[Value]) {
        self.pending
            .lock()
            .remove(&(template_key(template), binding.to_vec()));
    }

    /// Total use count of all stored entries (for tests and monitoring).
    pub fn total_uses(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .entries
                    .values()
                    .flatten()
                    .map(|e| e.uses.load(Ordering::Relaxed))
                    .sum::<u64>()
            })
            .sum()
    }
}

/// Scan a shard's entries for one the reuse check approves for `binding`,
/// skipping `(binding, entry)` pairs disproved by runtime re-validation and
/// entries whose capture epochs no longer match the database (stale after an
/// unprocessed mutation). Pure lookup: no counters, LRU stamps or memo
/// writes (callers decide).
fn scan_for_reusable(
    shard: &Shard,
    db: &Database,
    template: &QueryTemplate,
    key: &MemoKey,
    binding: &[Value],
) -> Option<(u64, Vec<ProvenanceSketch>)> {
    let denied_ids: Vec<u64> = shard
        .denied
        .iter()
        .filter(|(k, _)| k == key)
        .map(|(_, id)| *id)
        .collect();
    let checker = ReuseChecker::new(db);
    shard
        .entries
        .get(&key.0)?
        .iter()
        .find(|e| {
            !denied_ids.contains(&e.id)
                && e.fresh(db)
                && checker.can_reuse(template, &e.binding, binding).reusable
        })
        .map(|e| (e.id, e.sketches.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbds_algebra::{col, param, AggExpr, AggFunc, LogicalPlan};
    use pbds_storage::{DataType, Schema, TableBuilder};

    fn sales_db() -> Database {
        let schema = Schema::from_pairs(&[("grp", DataType::Int), ("amount", DataType::Int)]);
        let mut b = TableBuilder::new("sales", schema);
        b.block_size(100).index("grp");
        for i in 0..5_000i64 {
            b.push(vec![Value::Int(i % 50), Value::Int((i * 37) % 1000 + 1)]);
        }
        let mut db = Database::new();
        db.add_table(b.build());
        db
    }

    fn having_template() -> QueryTemplate {
        QueryTemplate::new(
            "sales-having",
            LogicalPlan::scan("sales")
                .aggregate(
                    vec!["grp"],
                    vec![AggExpr::new(AggFunc::Sum, col("amount"), "total")],
                )
                .filter(col("total").gt(param(0))),
        )
    }

    /// Capture a real sketch for one binding (via the safety checker and the
    /// capture pipeline) so catalog tests exercise genuine reuse semantics.
    fn capture_for(db: &Database, catalog: &SketchCatalog, bound: i64) -> Vec<ProvenanceSketch> {
        let t = having_template();
        let attrs = catalog.safe_attrs(db, &t).expect("sketch-safe");
        let parts: Vec<PartitionRef> = attrs
            .iter()
            .filter_map(|a| catalog.partition_for(db, a, 16))
            .collect();
        let captured = pbds_provenance::capture_sketches(
            db,
            &t.instantiate(&[Value::Int(bound)]),
            &parts,
            &pbds_provenance::CaptureConfig::optimized(),
        )
        .expect("capture");
        captured.sketches
    }

    #[test]
    fn miss_then_insert_then_hit_with_counters() {
        let db = sales_db();
        let catalog = SketchCatalog::default();
        let t = having_template();
        let loose = vec![Value::Int(50_000)];
        let tight = vec![Value::Int(53_000)];
        assert!(catalog.find_reusable(&db, &t, &loose).is_none());
        let sketches = capture_for(&db, &catalog, 50_000);
        catalog.insert(&db, &t, &loose, sketches);
        // A tighter bound reuses the stored sketch.
        assert!(catalog.find_reusable(&db, &t, &tight).is_some());
        let stats = catalog.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.stored, 1);
        assert!(stats.bytes > 0);
        assert_eq!(catalog.total_uses(), 1);
    }

    #[test]
    fn memo_answers_repeated_lookups_and_is_invalidated_by_insert() {
        let db = sales_db();
        let catalog = SketchCatalog::default();
        let t = having_template();
        let binding = vec![Value::Int(53_000)];
        // Two identical misses: the second one comes from the memo.
        assert!(catalog.find_reusable(&db, &t, &binding).is_none());
        assert!(catalog.find_reusable(&db, &t, &binding).is_none());
        assert_eq!(catalog.stats().memo_hits, 1);
        // Inserting a reusable sketch must invalidate the negative memo:
        // the same binding now hits.
        let sketches = capture_for(&db, &catalog, 50_000);
        catalog.insert(&db, &t, &[Value::Int(50_000)], sketches);
        assert!(
            catalog.find_reusable(&db, &t, &binding).is_some(),
            "negative memo survived an insert"
        );
        // And the positive outcome is memoized in turn.
        assert!(catalog.find_reusable(&db, &t, &binding).is_some());
        assert_eq!(catalog.stats().memo_hits, 2);
    }

    #[test]
    fn eviction_follows_lru_order_and_invalidates_memo() {
        let db = sales_db();
        let t = having_template();
        // Budget that fits two sketches but not three.
        let probe = capture_for(&db, &SketchCatalog::default(), 50_000);
        let one = probe.iter().map(|s| s.size_bytes()).sum::<usize>()
            + std::mem::size_of_val(&[Value::Int(0)][..]);
        let catalog = SketchCatalog::with_byte_budget(2 * one + one / 2);

        let b1 = vec![Value::Int(50_000)];
        let b2 = vec![Value::Int(40_000)];
        let b3 = vec![Value::Int(30_000)];
        catalog.insert(&db, &t, &b1, capture_for(&db, &catalog, 50_000));
        catalog.insert(&db, &t, &b2, capture_for(&db, &catalog, 40_000));
        // Touch entry 1 so entry 2 becomes the least recently used.
        assert!(catalog
            .find_reusable(&db, &t, &[Value::Int(53_000)])
            .is_some());
        catalog.insert(&db, &t, &b3, capture_for(&db, &catalog, 30_000));

        let stats = catalog.stats();
        assert_eq!(stats.evictions, 1, "{stats:?}");
        assert_eq!(stats.stored, 2);
        assert!(stats.bytes <= 2 * one + one / 2);
        // Entry 1 (recently touched) survived; a binding only entry 1
        // answers still hits.
        assert!(catalog
            .find_reusable(&db, &t, &[Value::Int(55_000)])
            .is_some());
    }

    #[test]
    fn revalidation_failure_denies_the_pair_but_not_the_entry() {
        let db = sales_db();
        let catalog = SketchCatalog::default();
        let t = having_template();
        let captured = vec![Value::Int(50_000)];
        catalog.insert(&db, &t, &captured, capture_for(&db, &catalog, 50_000));

        let bad = vec![Value::Int(53_000)];
        let good = vec![Value::Int(54_000)];
        let hit = catalog.find_reusable(&db, &t, &bad).expect("reusable");
        catalog.note_revalidation_failure(&t, &bad, hit.entry_id);
        // The disproved (binding, entry) pair is never offered again …
        assert!(catalog.find_reusable(&db, &t, &bad).is_none());
        assert!(!catalog.is_covered(&db, &t, &bad));
        // … and inserts (which clear negative memos) do not resurrect it …
        catalog.insert(
            &db,
            &t,
            &[Value::Int(49_000)],
            capture_for(&db, &catalog, 49_000),
        );
        let after = catalog.find_reusable(&db, &t, &bad).expect("new entry");
        assert_ne!(after.entry_id, hit.entry_id, "denied entry resurfaced");
        // … while other bindings still reuse the original entry.
        assert!(catalog.find_reusable(&db, &t, &good).is_some());
    }

    #[test]
    fn is_covered_probe_touches_no_counters() {
        let db = sales_db();
        let catalog = SketchCatalog::default();
        let t = having_template();
        catalog.insert(
            &db,
            &t,
            &[Value::Int(50_000)],
            capture_for(&db, &catalog, 50_000),
        );
        let before = catalog.stats();
        assert!(catalog.is_covered(&db, &t, &[Value::Int(53_000)]));
        assert!(!catalog.is_covered(&db, &t, &[Value::Int(10_000)]));
        let after = catalog.stats();
        assert_eq!(before, after, "quiet probe moved the counters");
        assert_eq!(catalog.total_uses(), 0);
    }

    #[test]
    fn pending_capture_marks_deduplicate() {
        let catalog = SketchCatalog::default();
        let t = having_template();
        let b = vec![Value::Int(7)];
        assert!(catalog.begin_capture(&t, &b));
        assert!(!catalog.begin_capture(&t, &b));
        catalog.finish_capture(&t, &b);
        assert!(catalog.begin_capture(&t, &b));
    }

    #[test]
    fn evidence_counter_is_shared_and_resets() {
        let catalog = SketchCatalog::default();
        let t = having_template();
        assert!(!catalog.evidence_reached(&t, 3));
        assert!(!catalog.evidence_reached(&t, 3));
        assert!(catalog.evidence_reached(&t, 3));
        assert!(!catalog.evidence_reached(&t, 3));
    }

    #[test]
    fn same_name_different_shape_templates_never_share_sketches() {
        // serve_plan-style callers pick names ad hoc: a sketch captured for
        // one query shape must be invisible to a different shape that
        // happens to reuse the name.
        let db = sales_db();
        let catalog = SketchCatalog::default();
        let t = having_template();
        catalog.insert(
            &db,
            &t,
            &[Value::Int(50_000)],
            capture_for(&db, &catalog, 50_000),
        );
        let other_shape = QueryTemplate::new(
            t.name(), // same name, different plan
            LogicalPlan::scan("sales")
                .aggregate(
                    vec!["grp"],
                    vec![AggExpr::new(AggFunc::Count, col("amount"), "total")],
                )
                .filter(col("total").gt(param(0))),
        );
        assert!(
            catalog
                .find_reusable(&db, &other_shape, &[Value::Int(53_000)])
                .is_none(),
            "sketch leaked across query shapes"
        );
        assert!(!catalog.is_covered(&db, &other_shape, &[Value::Int(53_000)]));
        // The original shape still hits.
        assert!(catalog
            .find_reusable(&db, &t, &[Value::Int(53_000)])
            .is_some());
    }

    /// Append rows to `sales` (copy-on-write) and run the catalog's append
    /// maintenance, returning the mutated database.
    fn append_sales(db: &Database, catalog: &SketchCatalog, rows: Vec<Vec<Value>>) -> Database {
        let mut db2 = db.clone();
        let prev = db2.table("sales").unwrap().data_epoch();
        let old_len = db2.table("sales").unwrap().len();
        db2.append_rows("sales", rows).unwrap();
        let new_rows = db2.table("sales").unwrap().rows()[old_len..].to_vec();
        catalog.on_append(&db2, "sales", &new_rows, prev);
        db2
    }

    #[test]
    fn append_extends_stored_sketches_and_keeps_them_reusable() {
        let db = sales_db();
        let catalog = SketchCatalog::default();
        let t = having_template();
        catalog.insert(
            &db,
            &t,
            &[Value::Int(50_000)],
            capture_for(&db, &catalog, 50_000),
        );
        let tight = vec![Value::Int(53_000)];
        assert!(catalog.find_reusable(&db, &t, &tight).is_some());

        let db2 = append_sales(
            &db,
            &catalog,
            (0..40)
                .map(|i| vec![Value::Int(i), Value::Int(500)])
                .collect(),
        );
        // The maintained entry serves the post-mutation database…
        assert!(
            catalog.find_reusable(&db2, &t, &tight).is_some(),
            "maintained sketch must stay reusable after an append"
        );
        assert!(catalog.stats().extended >= 1);
        assert_eq!(catalog.stats().invalidated, 0);
        // …and is never offered against the pre-mutation snapshot (its
        // epochs no longer match), so a stale-snapshot reader cannot observe
        // fragments that only exist in the future.
        assert!(catalog.find_reusable(&db, &t, &tight).is_none());
        // The stale-snapshot miss must not poison the memo: the next
        // current-snapshot lookup of the same binding still hits.
        assert!(
            catalog.find_reusable(&db2, &t, &tight).is_some(),
            "a stale-snapshot lookup memoized its miss for fresh snapshots"
        );
    }

    #[test]
    fn batched_deltas_match_sequential_maintenance() {
        // Applying a coalesced batch of deltas in one pass must leave the
        // catalog exactly as reusable as running the per-mutation hooks —
        // including an append *followed by* a delete of the same table,
        // where the append rows must be carried by value because the delete
        // shifted the tail.
        let db = sales_db();
        let t = having_template();
        let tight = vec![Value::Int(53_000)];

        // Sequential reference: append then delete via the hooks.
        let seq = SketchCatalog::default();
        seq.insert(
            &db,
            &t,
            &[Value::Int(50_000)],
            capture_for(&db, &seq, 50_000),
        );
        let new_rows: Vec<Vec<Value>> = (0..10)
            .map(|i| vec![Value::Int(i), Value::Int(500)])
            .collect();
        let db_seq = append_sales(&db, &seq, new_rows.clone());
        let mut db_seq2 = db_seq.clone();
        let prev_del = db_seq2.table("sales").unwrap().data_epoch();
        db_seq2
            .delete_where("sales", |r| r[1] == Value::Int(500))
            .unwrap();
        seq.on_delete(&db_seq2, "sales", prev_del);
        assert!(seq.find_reusable(&db_seq2, &t, &tight).is_some());

        // Batched: same mutations through one apply_deltas call.
        let batched = SketchCatalog::default();
        batched.insert(
            &db,
            &t,
            &[Value::Int(50_000)],
            capture_for(&db, &batched, 50_000),
        );
        let mut db2 = db.clone();
        let prev_append = db2.table("sales").unwrap().data_epoch();
        let old_len = db2.table("sales").unwrap().len();
        db2.append_rows("sales", new_rows.clone()).unwrap();
        let mid_epoch = db2.table("sales").unwrap().data_epoch();
        let appended = db2.table("sales").unwrap().rows()[old_len..].to_vec();
        db2.delete_where("sales", |r| r[1] == Value::Int(500))
            .unwrap();
        let final_epoch = db2.table("sales").unwrap().data_epoch();
        batched.apply_deltas(
            &db2,
            &[
                CatalogDelta::Append {
                    table: "sales".into(),
                    prev_epoch: prev_append,
                    new_epoch: mid_epoch,
                    rows: Some(appended), // materialized: the delete shifted the tail
                    range: old_len..old_len + new_rows.len(),
                },
                CatalogDelta::Delete {
                    table: "sales".into(),
                    prev_epoch: mid_epoch,
                    new_epoch: final_epoch,
                },
            ],
        );
        assert!(
            batched.find_reusable(&db2, &t, &tight).is_some(),
            "entry must ride an append+delete batch and stay reusable"
        );
        assert_eq!(batched.stats().invalidated, 0);
        assert!(batched.stats().extended >= 1);
        // The batch counted as two coalesced deltas, the sequential run too
        // (one per hook call) — the *batching* win shows when many mutations
        // coalesce into few deltas, which the server tests exercise.
        assert_eq!(batched.stats().maintenance_deltas, 2);
        // An entry that missed an epoch (gap) is dropped by a batch, too.
        let gap = SketchCatalog::default();
        gap.insert(
            &db,
            &t,
            &[Value::Int(50_000)],
            capture_for(&db, &gap, 50_000),
        );
        gap.apply_deltas(
            &db2,
            &[CatalogDelta::Delete {
                table: "sales".into(),
                prev_epoch: mid_epoch, // entry holds prev_append → gap
                new_epoch: final_epoch,
            }],
        );
        assert_eq!(gap.stats().invalidated, 1);
        assert!(gap.find_reusable(&db2, &t, &tight).is_none());
    }

    #[test]
    fn design_changes_do_not_invalidate_stored_sketches() {
        let db = sales_db();
        let catalog = SketchCatalog::default();
        let t = having_template();
        catalog.insert(
            &db,
            &t,
            &[Value::Int(50_000)],
            capture_for(&db, &catalog, 50_000),
        );
        // Building a new index bumps the table's design epoch but not its
        // data epoch: sketches describe data, so reuse must survive.
        let mut db2 = db.clone();
        assert!(db2.table_mut("sales").unwrap().create_index("amount"));
        assert_ne!(
            db.table("sales").unwrap().epoch(),
            db2.table("sales").unwrap().epoch()
        );
        assert_eq!(
            db.table("sales").unwrap().data_epoch(),
            db2.table("sales").unwrap().data_epoch()
        );
        assert!(
            catalog
                .find_reusable(&db2, &t, &[Value::Int(53_000)])
                .is_some(),
            "an index build stranded every stored sketch"
        );
    }

    #[test]
    fn mutations_spare_caches_of_unrelated_templates() {
        let db = sales_db();
        let catalog = SketchCatalog::default();
        let t = having_template();
        // An unrelated template over a different table with memoized state.
        let mut db_both = db.clone();
        let other_schema = Schema::from_pairs(&[("x", DataType::Int)]);
        db_both.add_table(pbds_storage::Table::new(
            "other",
            other_schema,
            (0..100i64).map(|i| vec![Value::Int(i)]).collect(),
        ));
        let other_t = QueryTemplate::new(
            "other-having",
            LogicalPlan::scan("other")
                .aggregate(vec!["x"], vec![AggExpr::new(AggFunc::Count, col("x"), "c")])
                .filter(col("c").gt(param(0))),
        );
        // Learn both templates' table sets and memoize a miss for `other`.
        catalog.safe_attrs(&db_both, &t);
        catalog.safe_attrs(&db_both, &other_t);
        assert!(catalog
            .find_reusable(&db_both, &other_t, &[Value::Int(5)])
            .is_none());
        let memo_before = catalog.stats().memo_hits;

        // Mutating `sales` must not clear the memo of the `other` template.
        let mut db2 = db_both.clone();
        let prev = db2.table("sales").unwrap().data_epoch();
        db2.append_rows("sales", vec![vec![Value::Int(1), Value::Int(7)]])
            .unwrap();
        let new_rows = vec![db2.table("sales").unwrap().rows().last().unwrap().clone()];
        catalog.on_append(&db2, "sales", &new_rows, prev);

        assert!(catalog
            .find_reusable(&db2, &other_t, &[Value::Int(5)])
            .is_none());
        assert!(
            catalog.stats().memo_hits > memo_before,
            "unrelated template's memo was wiped by the mutation"
        );
    }

    #[test]
    fn delete_keeps_entries_as_supersets_and_invalidates_partitions() {
        let db = sales_db();
        let catalog = SketchCatalog::default();
        let t = having_template();
        let attr = catalog.safe_attrs(&db, &t).unwrap().remove(0);
        let part_before = catalog.partition_for(&db, &attr, 16).unwrap();
        catalog.insert(
            &db,
            &t,
            &[Value::Int(50_000)],
            capture_for(&db, &catalog, 50_000),
        );

        let mut db2 = db.clone();
        let prev = db2.table("sales").unwrap().data_epoch();
        db2.delete_where("sales", |r| r[1] == Value::Int(38))
            .unwrap();
        catalog.on_delete(&db2, "sales", prev);

        // Entries survive as still-safe supersets and serve the new state.
        assert_eq!(catalog.stored_sketches(), 1);
        assert!(catalog
            .find_reusable(&db2, &t, &[Value::Int(53_000)])
            .is_some());
        // The cached partition was rebuilt from the new statistics.
        let part_after = catalog.partition_for(&db2, &attr, 16).unwrap();
        assert!(
            !Arc::ptr_eq(&part_before, &part_after),
            "partition cache survived a delete"
        );
    }

    #[test]
    fn stale_capture_insert_is_rejected() {
        let db = sales_db();
        let catalog = SketchCatalog::default();
        let t = having_template();
        // Capture against the pre-mutation snapshot…
        let sketches = capture_for(&db, &catalog, 50_000);
        // …then a mutation is processed before the capture lands.
        let db2 = append_sales(&db, &catalog, vec![vec![Value::Int(1), Value::Int(7)]]);
        assert!(
            catalog
                .insert(&db, &t, &[Value::Int(50_000)], sketches)
                .is_none(),
            "stale sketch set must be rejected"
        );
        assert_eq!(catalog.stored_sketches(), 0);
        assert!(catalog.stats().invalidated >= 1);
        // A capture against the current snapshot is accepted.
        let fresh = capture_for(&db2, &catalog, 50_000);
        assert!(catalog
            .insert(&db2, &t, &[Value::Int(50_000)], fresh)
            .is_some());
    }

    #[test]
    fn unfragmentable_append_forces_recapture() {
        use pbds_storage::CompositePartition;
        let db = sales_db();
        let catalog = SketchCatalog::default();
        let t = having_template();
        // A composite (PSMIX-style) sketch has one fragment per *seen* key:
        // an appended row with a novel group has no fragment, so the stored
        // sketch cannot be maintained and must be dropped.
        let table = db.table("sales").unwrap();
        let part: PartitionRef = Arc::new(Partition::Composite(
            CompositePartition::build("sales", table.schema(), table.rows(), &["grp"]).unwrap(),
        ));
        let mut sketch = ProvenanceSketch::empty(part);
        sketch.add_fragment(0);
        catalog.insert(&db, &t, &[Value::Int(50_000)], vec![sketch]);
        assert_eq!(catalog.stored_sketches(), 1);

        // grp = 999 never occurred: partition shape changed.
        let _db2 = append_sales(&db, &catalog, vec![vec![Value::Int(999), Value::Int(1)]]);
        assert_eq!(
            catalog.stored_sketches(),
            0,
            "sketch over an outgrown partition must be invalidated"
        );
        assert!(catalog.stats().invalidated >= 1);
    }

    #[test]
    fn export_import_round_trip_restores_reuse() {
        let db = sales_db();
        let catalog = SketchCatalog::default();
        let t = having_template();
        catalog.insert(
            &db,
            &t,
            &[Value::Int(50_000)],
            capture_for(&db, &catalog, 50_000),
        );
        let exported = catalog.export();
        assert_eq!(exported.entries.len(), 1);
        assert_eq!(
            exported.entries[0].capture_epochs,
            vec![("sales".to_string(), db.table("sales").unwrap().data_epoch())]
        );

        // Import into a fresh catalog against the same database state: the
        // entry survives and answers reuse lookups immediately.
        let recovered = SketchCatalog::default();
        let report = recovered.import(&db, exported.clone());
        assert_eq!((report.imported, report.dropped), (1, 0));
        assert!(recovered
            .find_reusable(&db, &t, &[Value::Int(53_000)])
            .is_some());
        assert_eq!(recovered.stats().bytes, catalog.stats().bytes);

        // Against a database whose table was mutated after the export, the
        // entry is epoch-stale and must be dropped — never offered.
        let mut mutated = db.clone();
        mutated
            .append_rows("sales", vec![vec![Value::Int(1), Value::Int(7)]])
            .unwrap();
        let cold = SketchCatalog::default();
        let report = cold.import(&mutated, exported);
        assert_eq!((report.imported, report.dropped), (0, 1));
        assert_eq!(cold.stored_sketches(), 0);
        assert!(cold
            .find_reusable(&mutated, &t, &[Value::Int(53_000)])
            .is_none());
        assert!(cold.stats().invalidated >= 1);
    }

    #[test]
    fn import_seeds_table_epochs_so_stale_captures_stay_rejected() {
        let db = sales_db();
        let recovered = SketchCatalog::default();
        recovered.import(&db, PersistedCatalog::default());
        let t = having_template();
        // A capture taken against a pre-import (older) snapshot of `sales`
        // must be rejected exactly as in a long-running catalog.
        let sketches = capture_for(&db, &recovered, 50_000);
        let mut mutated = db.clone();
        mutated
            .append_rows("sales", vec![vec![Value::Int(1), Value::Int(7)]])
            .unwrap();
        recovered.import(&mutated, PersistedCatalog::default());
        assert!(
            recovered
                .insert(&db, &t, &[Value::Int(50_000)], sketches)
                .is_none(),
            "stale capture accepted after import seeded newer epochs"
        );
    }

    #[test]
    fn concurrent_lookups_and_inserts_are_consistent() {
        let db = Arc::new(sales_db());
        let catalog = Arc::new(SketchCatalog::default());
        let t = having_template();
        let sketches = capture_for(&db, &catalog, 50_000);
        catalog.insert(&db, &t, &[Value::Int(50_000)], sketches);
        std::thread::scope(|s| {
            for w in 0..8 {
                let db = Arc::clone(&db);
                let catalog = Arc::clone(&catalog);
                let t = t.clone();
                s.spawn(move || {
                    for i in 0..50 {
                        // Tighter bounds hit, looser bounds miss.
                        let bound = 50_500 + ((w * 50 + i) % 40) * 100;
                        let got = catalog.find_reusable(&db, &t, &[Value::Int(bound)]);
                        assert!(got.is_some(), "bound {bound} should reuse");
                    }
                });
            }
        });
        let stats = catalog.stats();
        assert_eq!(stats.hits, 8 * 50);
        assert!(stats.memo_hits > 0);
        assert_eq!(catalog.total_uses(), 8 * 50);
    }
}
