//! Self-tuning PBDS (Sec. 9.5): deciding per incoming query whether to
//! capture a sketch, use a previously captured sketch, or execute plainly.
//!
//! Two strategies from the paper are implemented:
//!
//! * **eager** — whenever a query instance is selective enough and no stored
//!   sketch can be reused, capture a new sketch immediately;
//! * **adaptive** — only capture once enough instances have been seen that
//!   *could have used* a sketch (evidence threshold), which avoids paying
//!   capture cost for rarely repeated parameter values.
//!
//! # Strategies and the shared catalog
//!
//! The executor itself is a *thin client*: every piece of cross-query state —
//! stored sketches, memoized reuse checks, chosen safe attributes, built
//! partitions, and the adaptive strategy's evidence counters — lives in a
//! shared, thread-safe [`SketchCatalog`]. Several executors (or the
//! concurrent sessions of a [`crate::server::PbdsServer`]) pointed at the
//! same catalog therefore *cooperate*:
//!
//! * a sketch captured by any client is immediately reusable by every other
//!   client of the catalog — [`Strategy::Eager`] clients effectively warm the
//!   catalog for everyone;
//! * [`Strategy::Adaptive`]'s evidence threshold counts missed reuse
//!   opportunities *across all clients*, matching the paper's middleware
//!   model where the query stream, not an individual connection, provides
//!   the evidence;
//! * [`Strategy::NoPbds`] clients bypass the catalog entirely and are
//!   unaffected by (and invisible to) the others.
//!
//! By default each executor created through [`SelfTuningExecutor::new`] gets
//! a private catalog, preserving the single-session behaviour of the paper's
//! experiments; pass a shared one with [`SelfTuningExecutor::with_catalog`]
//! to opt into the middleware behaviour.

use crate::catalog::SketchCatalog;
use crate::instrument::{apply_sketches, UsePredicateStyle};
use pbds_algebra::{BinOp, Expr, LogicalPlan, QueryTemplate};
use pbds_exec::{Engine, EngineProfile, ExecError, ExecStats};
use pbds_provenance::{capture_sketches_with_profile, CaptureConfig};
use pbds_storage::{Database, PartitionRef, Relation, Value};
use std::sync::Arc;
use std::time::Duration;

/// Self-tuning strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Strategy {
    /// Never use PBDS (the paper's `No-PS` baseline).
    NoPbds,
    /// Capture a sketch whenever none of the stored ones is reusable.
    Eager {
        /// Skip PBDS entirely for queries whose estimated selectivity exceeds
        /// this fraction (the paper uses 0.75).
        selectivity_threshold: f64,
    },
    /// Capture only after `evidence_threshold` instances could have used a
    /// sketch that did not exist yet.
    Adaptive {
        /// Selectivity gate, as for `Eager`.
        selectivity_threshold: f64,
        /// Number of missed reuse opportunities before capturing.
        evidence_threshold: usize,
    },
}

impl Strategy {
    pub(crate) fn selectivity_threshold(&self) -> f64 {
        match self {
            Strategy::NoPbds => 0.0,
            Strategy::Eager {
                selectivity_threshold,
            }
            | Strategy::Adaptive {
                selectivity_threshold,
                ..
            } => *selectivity_threshold,
        }
    }

    /// Decide whether a reuse miss should trigger capture, consulting the
    /// catalog's shared evidence counters for the adaptive strategy.
    pub(crate) fn capture_on_miss(
        &self,
        catalog: &SketchCatalog,
        template: &QueryTemplate,
    ) -> bool {
        match self {
            Strategy::Eager { .. } => true,
            Strategy::Adaptive {
                evidence_threshold, ..
            } => catalog.evidence_reached(template, *evidence_threshold),
            Strategy::NoPbds => false,
        }
    }
}

/// Answer `plan` from the catalog if a stored sketch covers it: on a hit the
/// sketch-instrumented query is executed, falling back to plain execution —
/// and denying the `(binding, entry)` pair — when the runtime top-k
/// re-validation fails. Returns `None` on a catalog miss. Shared by
/// [`SelfTuningExecutor::run`] and the server sessions so the
/// hit/fallback/record bookkeeping cannot drift between them.
pub(crate) fn execute_with_reuse(
    db: &Database,
    engine: &Engine,
    catalog: &SketchCatalog,
    style: UsePredicateStyle,
    template: &QueryTemplate,
    binding: &[Value],
    plan: &LogicalPlan,
) -> Result<Option<(QueryRecord, Relation)>, ExecError> {
    let Some(reusable) = catalog.find_reusable(db, template, binding) else {
        return Ok(None);
    };
    let instrumented = apply_sketches(plan, &reusable.sketches, style);
    let out = engine.execute(db, &instrumented)?;
    if !out.stats.topk_safety_revalidated() {
        // Runtime re-validation failed: fall back to the plain query and
        // stop offering this (binding, sketch) pair, so the double
        // execution happens once, not on every future run.
        catalog.note_revalidation_failure(template, binding, reusable.entry_id);
        let plain = engine.execute(db, plan)?;
        let elapsed = out.stats.elapsed + plain.stats.elapsed;
        let record = QueryRecord {
            template: template.name().to_string(),
            action: Action::RevalidationFallback,
            elapsed,
            result_rows: plain.relation.len(),
            stats: plain.stats,
        };
        return Ok(Some((record, plain.relation)));
    }
    let record = QueryRecord {
        template: template.name().to_string(),
        action: Action::UseSketch,
        elapsed: out.stats.elapsed,
        result_rows: out.relation.len(),
        stats: out.stats,
    };
    Ok(Some((record, out.relation)))
}

/// What the executor decided to do for one query instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Executed without PBDS.
    Plain,
    /// Executed the capture-instrumented query (and stored the new sketch).
    Capture,
    /// Executed the sketch-instrumented query, reusing a stored sketch.
    UseSketch,
    /// A sketch was used but the runtime top-k re-validation failed, so the
    /// query was re-executed plainly (counted in the elapsed time).
    RevalidationFallback,
}

/// Per-query execution record.
#[derive(Debug, Clone)]
pub struct QueryRecord {
    /// Template name.
    pub template: String,
    /// Decision taken.
    pub action: Action,
    /// Wall-clock time spent (including capture or fallback re-execution).
    pub elapsed: Duration,
    /// Execution counters of the (final) execution.
    pub stats: ExecStats,
    /// Number of result rows.
    pub result_rows: usize,
}

/// The self-tuning executor: a thin client of a (possibly shared)
/// [`SketchCatalog`] that decides per query whether to capture, reuse or
/// execute plainly. See the [module docs](self) for how several clients of
/// one catalog interact.
pub struct SelfTuningExecutor<'a> {
    db: &'a Database,
    engine: Engine,
    strategy: Strategy,
    style: UsePredicateStyle,
    fragments: usize,
    catalog: Arc<SketchCatalog>,
}

impl<'a> SelfTuningExecutor<'a> {
    /// Create an executor over a database with a private catalog.
    pub fn new(
        db: &'a Database,
        profile: EngineProfile,
        strategy: Strategy,
        fragments: usize,
    ) -> Self {
        SelfTuningExecutor {
            db,
            engine: Engine::new(profile),
            strategy,
            style: UsePredicateStyle::BinarySearch,
            fragments,
            catalog: Arc::new(SketchCatalog::default()),
        }
    }

    /// Override the predicate style used when applying sketches.
    pub fn with_style(mut self, style: UsePredicateStyle) -> Self {
        self.style = style;
        self
    }

    /// Share a catalog with other executors / server sessions.
    pub fn with_catalog(mut self, catalog: Arc<SketchCatalog>) -> Self {
        self.catalog = catalog;
        self
    }

    /// The catalog backing this executor.
    pub fn catalog(&self) -> &Arc<SketchCatalog> {
        &self.catalog
    }

    /// Number of sketches currently stored.
    pub fn stored_sketches(&self) -> usize {
        self.catalog.stored_sketches()
    }

    /// Execute one instance of a template.
    pub fn run(
        &mut self,
        template: &QueryTemplate,
        binding: &[Value],
    ) -> Result<QueryRecord, ExecError> {
        let plan = template.instantiate(binding);
        if self.strategy == Strategy::NoPbds {
            return self.run_plain(template, &plan);
        }

        // Determine (once per template, shared through the catalog) which
        // attributes are safe to sketch.
        let attrs = match self.catalog.safe_attrs(self.db, template) {
            Some(a) => a,
            None => return self.run_plain(template, &plan),
        };

        // Selectivity gate: PBDS is not worthwhile for non-selective queries.
        // Queries whose selectivity cannot be estimated statically (HAVING,
        // top-k — the very queries PBDS targets) pass the gate.
        if let Some(est) = estimate_selectivity(self.db, &plan) {
            if est > self.strategy.selectivity_threshold() {
                return self.run_plain(template, &plan);
            }
        }

        // Try to reuse a stored sketch (memoized reuse check).
        if let Some((record, _relation)) = execute_with_reuse(
            self.db,
            &self.engine,
            &self.catalog,
            self.style,
            template,
            binding,
            &plan,
        )? {
            return Ok(record);
        }

        // No reusable sketch: decide whether to capture now.
        if !self.strategy.capture_on_miss(&self.catalog, template) {
            return self.run_plain(template, &plan);
        }

        // Capture: build (cached) partitions over the safe attributes and run
        // the instrumented capture query; its result is the query answer.
        let partitions: Vec<PartitionRef> = attrs
            .iter()
            .filter_map(|a| self.catalog.partition_for(self.db, a, self.fragments))
            .collect();
        if partitions.is_empty() {
            return self.run_plain(template, &plan);
        }
        let capture = capture_sketches_with_profile(
            self.db,
            &plan,
            &partitions,
            &CaptureConfig::optimized(),
            self.engine.profile(),
        )?;
        let record = QueryRecord {
            template: template.name().to_string(),
            action: Action::Capture,
            elapsed: capture.elapsed,
            stats: ExecStats {
                rows_output: capture.result.len() as u64,
                elapsed: capture.elapsed,
                ..Default::default()
            },
            result_rows: capture.result.len(),
        };
        self.catalog
            .insert(self.db, template, binding, capture.sketches);
        Ok(record)
    }

    /// Execute a whole workload (sequence of template instances).
    pub fn run_workload(
        &mut self,
        workload: &[(QueryTemplate, Vec<Value>)],
    ) -> Result<Vec<QueryRecord>, ExecError> {
        workload.iter().map(|(t, b)| self.run(t, b)).collect()
    }

    fn run_plain(
        &self,
        template: &QueryTemplate,
        plan: &LogicalPlan,
    ) -> Result<QueryRecord, ExecError> {
        let out = self.engine.execute(self.db, plan)?;
        Ok(QueryRecord {
            template: template.name().to_string(),
            action: Action::Plain,
            elapsed: out.stats.elapsed,
            result_rows: out.relation.len(),
            stats: out.stats,
        })
    }
}

/// Cumulative elapsed times after each query of a workload run (the series
/// plotted in Fig. 13).
pub fn cumulative_elapsed(records: &[QueryRecord]) -> Vec<Duration> {
    let mut total = Duration::ZERO;
    records
        .iter()
        .map(|r| {
            total += r.elapsed;
            total
        })
        .collect()
}

/// Rough selectivity estimate of the base-table selection predicates of a
/// plan, assuming uniform value distributions (min/max statistics only).
/// Returns `None` when nothing can be estimated (e.g. HAVING or top-k
/// queries, whose relevance is data-dependent — the motivation for PBDS).
pub fn estimate_selectivity(db: &Database, plan: &LogicalPlan) -> Option<f64> {
    fn column_fraction(db: &Database, plan: &LogicalPlan, pred: &Expr) -> Option<f64> {
        // Only estimate comparisons between a base-table column and a
        // constant.
        if let Expr::Binary { op, left, right } = pred {
            let (col, cst, op) = match (&**left, &**right) {
                (Expr::Column(c), Expr::Literal(v)) => (c, v, *op),
                (Expr::Literal(v), Expr::Column(c)) => (c, v, flip(*op)),
                _ => return None,
            };
            for t in plan.tables() {
                if let Ok(table) = db.table(&t) {
                    if let Some(stats) = table.stats().column(col) {
                        let (min, max) = match (&stats.min, &stats.max) {
                            (Some(a), Some(b)) => (a.as_f64()?, b.as_f64()?),
                            _ => return None,
                        };
                        let v = cst.as_f64()?;
                        let span = (max - min).max(f64::EPSILON);
                        let frac = match op {
                            BinOp::Eq => 1.0 / stats.distinct.max(1) as f64,
                            BinOp::Lt | BinOp::Le => ((v - min) / span).clamp(0.0, 1.0),
                            BinOp::Gt | BinOp::Ge => ((max - v) / span).clamp(0.0, 1.0),
                            _ => return None,
                        };
                        return Some(frac);
                    }
                }
            }
        }
        None
    }
    fn flip(op: BinOp) -> BinOp {
        match op {
            BinOp::Lt => BinOp::Gt,
            BinOp::Le => BinOp::Ge,
            BinOp::Gt => BinOp::Lt,
            BinOp::Ge => BinOp::Le,
            other => other,
        }
    }

    let mut best: Option<f64> = None;
    let mut walk = |p: &LogicalPlan| {
        if let LogicalPlan::Selection { predicate, input } = p {
            let mut sel = 1.0f64;
            let mut found = false;
            for c in predicate.conjuncts() {
                if let Some(f) = column_fraction(db, input, c) {
                    sel *= f;
                    found = true;
                }
            }
            if found {
                best = Some(best.map_or(sel, |b: f64| b.min(sel)));
            }
        }
    };
    fn visit(p: &LogicalPlan, f: &mut impl FnMut(&LogicalPlan)) {
        f(p);
        for c in p.children() {
            visit(c, f);
        }
    }
    visit(plan, &mut walk);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbds_algebra::{col, lit, param, AggExpr, AggFunc};
    use pbds_storage::{DataType, Schema, TableBuilder};

    /// A synthetic sales table: 5 000 rows, 50 groups, skewed amounts.
    fn sales_db() -> Database {
        let schema = Schema::from_pairs(&[
            ("grp", DataType::Int),
            ("amount", DataType::Int),
            ("region", DataType::Int),
        ]);
        let mut b = TableBuilder::new("sales", schema);
        b.block_size(100).index("grp");
        for i in 0..5_000i64 {
            b.push(vec![
                Value::Int(i % 50),
                Value::Int((i * 37) % 1000 + 1),
                Value::Int(i % 5),
            ]);
        }
        let mut db = Database::new();
        db.add_table(b.build());
        db
    }

    /// HAVING template: groups whose total amount exceeds $0.
    fn having_template() -> QueryTemplate {
        QueryTemplate::new(
            "sales-having",
            LogicalPlan::scan("sales")
                .aggregate(
                    vec!["grp"],
                    vec![AggExpr::new(AggFunc::Sum, col("amount"), "total")],
                )
                .filter(col("total").gt(param(0))),
        )
    }

    #[test]
    fn eager_strategy_captures_then_reuses() {
        let db = sales_db();
        let mut exec = SelfTuningExecutor::new(
            &db,
            EngineProfile::Indexed,
            Strategy::Eager {
                selectivity_threshold: 0.75,
            },
            16,
        );
        let t = having_template();
        let r1 = exec.run(&t, &[Value::Int(52_000)]).unwrap();
        assert_eq!(r1.action, Action::Capture);
        // A more selective instance reuses the stored sketch.
        let r2 = exec.run(&t, &[Value::Int(53_000)]).unwrap();
        assert_eq!(r2.action, Action::UseSketch, "{:?}", r2);
        // A less selective instance cannot reuse it and triggers a new capture.
        let r3 = exec.run(&t, &[Value::Int(40_000)]).unwrap();
        assert_eq!(r3.action, Action::Capture);
        assert_eq!(exec.stored_sketches(), 2);
    }

    #[test]
    fn adaptive_strategy_waits_for_evidence() {
        let db = sales_db();
        let mut exec = SelfTuningExecutor::new(
            &db,
            EngineProfile::Indexed,
            Strategy::Adaptive {
                selectivity_threshold: 0.75,
                evidence_threshold: 3,
            },
            16,
        );
        let t = having_template();
        let b = vec![Value::Int(52_000)];
        assert_eq!(exec.run(&t, &b).unwrap().action, Action::Plain);
        assert_eq!(exec.run(&t, &b).unwrap().action, Action::Plain);
        assert_eq!(exec.run(&t, &b).unwrap().action, Action::Capture);
        assert_eq!(exec.run(&t, &b).unwrap().action, Action::UseSketch);
    }

    #[test]
    fn no_pbds_strategy_always_runs_plain() {
        let db = sales_db();
        let mut exec = SelfTuningExecutor::new(&db, EngineProfile::Indexed, Strategy::NoPbds, 16);
        let t = having_template();
        for _ in 0..3 {
            assert_eq!(
                exec.run(&t, &[Value::Int(52_000)]).unwrap().action,
                Action::Plain
            );
        }
        assert_eq!(exec.stored_sketches(), 0);
    }

    #[test]
    fn sketch_reuse_returns_correct_results() {
        let db = sales_db();
        let engine = Engine::new(EngineProfile::Indexed);
        let t = having_template();
        let mut exec = SelfTuningExecutor::new(
            &db,
            EngineProfile::Indexed,
            Strategy::Eager {
                selectivity_threshold: 0.75,
            },
            16,
        );
        // Capture with a loose bound, then reuse for a tighter one and check
        // the result equals the plain execution.
        exec.run(&t, &[Value::Int(50_000)]).unwrap();
        let tight = vec![Value::Int(53_000)];
        let reused = exec.run(&t, &tight).unwrap();
        assert_eq!(reused.action, Action::UseSketch);
        let plain = engine
            .execute(&db, &t.instantiate(&tight))
            .unwrap()
            .relation;
        assert_eq!(reused.result_rows, plain.len());
    }

    #[test]
    fn non_selective_queries_bypass_pbds() {
        let db = sales_db();
        let t = QueryTemplate::new(
            "non-selective",
            LogicalPlan::scan("sales").filter(col("amount").gt(param(0))),
        );
        let mut exec = SelfTuningExecutor::new(
            &db,
            EngineProfile::Indexed,
            Strategy::Eager {
                selectivity_threshold: 0.75,
            },
            16,
        );
        // amount > 1 keeps ~100% of the rows: the selectivity gate skips PBDS.
        let r = exec.run(&t, &[Value::Int(1)]).unwrap();
        assert_eq!(r.action, Action::Plain);
    }

    #[test]
    fn selectivity_estimator_orders_predicates_sensibly() {
        let db = sales_db();
        let selective = LogicalPlan::scan("sales").filter(col("amount").gt(lit(990)));
        let broad = LogicalPlan::scan("sales").filter(col("amount").gt(lit(10)));
        let est_selective = estimate_selectivity(&db, &selective).unwrap();
        let est_broad = estimate_selectivity(&db, &broad).unwrap();
        assert!(est_selective < est_broad);
        assert!(est_selective < 0.1);
        assert!(est_broad > 0.9);
        // No estimable predicate: no estimate (PBDS gets a chance).
        assert_eq!(estimate_selectivity(&db, &LogicalPlan::scan("sales")), None);
    }

    #[test]
    fn cumulative_elapsed_is_monotone() {
        let db = sales_db();
        let t = having_template();
        let mut exec = SelfTuningExecutor::new(
            &db,
            EngineProfile::Indexed,
            Strategy::Eager {
                selectivity_threshold: 0.75,
            },
            16,
        );
        let workload: Vec<(QueryTemplate, Vec<Value>)> = (0..5)
            .map(|i| (t.clone(), vec![Value::Int(52_000 + i * 100)]))
            .collect();
        let records = exec.run_workload(&workload).unwrap();
        let cum = cumulative_elapsed(&records);
        assert_eq!(cum.len(), 5);
        assert!(cum.windows(2).all(|w| w[0] <= w[1]));
    }
}
