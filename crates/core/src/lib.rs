//! # pbds-core
//!
//! Provenance-Based Data Skipping (PBDS) — a from-scratch Rust reproduction
//! of the VLDB 2021 paper *"Provenance-based Data Skipping"* (Niu et al.).
//!
//! PBDS analyzes queries **at runtime** to determine which data is relevant
//! for answering them: it captures a *provenance sketch* — the set of
//! fragments of a horizontal partition that contain the query's provenance —
//! and uses that sketch to instrument later executions of the same (or a
//! compatible parameterized) query with range predicates the engine can
//! answer through indexes and zone maps. This pays off precisely for query
//! classes where static analysis cannot determine relevance: top-k queries,
//! aggregation with `HAVING`, and similar.
//!
//! The crate provides:
//!
//! * [`safety`] — the static safety check of Sec. 5 (`gc(Q, X)` inference);
//! * [`reuse`] — the parameterized-query reuse check of Sec. 6;
//! * [`instrument`] — query instrumentation with sketch filters (Sec. 8);
//! * [`tuning`] — the self-tuning eager/adaptive strategies of Sec. 9.5;
//! * [`catalog`] — the shared, thread-safe sketch catalog (template-keyed,
//!   memoized reuse checks, byte-budget LRU eviction);
//! * [`server`] — the concurrent serving middleware: sessions consult the
//!   catalog and enqueue capture-on-miss to a background worker pool;
//! * [`Pbds`] — a facade tying everything together (see its example).
//!
//! Sketch *capture* (Sec. 7) lives in the `pbds-provenance` crate and is
//! re-exported here.
//!
//! # Layering
//!
//! The system is a stack of crates with one execution path:
//!
//! ```text
//!   pbds-core        safety · reuse · instrumentation · self-tuning
//!        │
//!   pbds-provenance  sketches; capture & lineage as pipeline tag policies
//!        │
//!   pbds-exec        lower(LogicalPlan) → physical operators
//!                    (SeqScan/IndexRangeScan/ZoneMapScan, Filter, Project,
//!                     HashAggregate, HashJoin, Sort, Limit, Distinct, …)
//!                    executed in fixed-size batches with per-row tags
//!        │
//!   pbds-storage     tables · ordered indexes · zone maps · partitions
//! ```
//!
//! Plain execution runs the pipeline with tags disabled (`NoTag`);
//! provenance capture runs the *same* operators with annotation tags and
//! folds the result tags into a sketch. Lowering chooses the access path per
//! scan: an ordered index if the pushed-down predicate constrains an indexed
//! column to ranges, else a zone-map skip scan, else a sequential scan — the
//! mechanism by which a captured sketch, re-injected as a range predicate,
//! makes later executions skip irrelevant data.

#![warn(missing_docs)]

pub mod catalog;
pub mod encode;
pub mod instrument;
pub mod pbds;
pub mod reuse;
pub mod safety;
pub mod server;
pub mod tuning;

pub use catalog::{
    CatalogConfig, CatalogDelta, CatalogImport, CatalogStats, ReusableSketches, SketchCatalog,
};
pub use instrument::{apply_sketches, sketch_predicate, UsePredicateStyle};
pub use pbds::{Pbds, PbdsError};
pub use reuse::{ReuseChecker, ReuseResult};
pub use safety::{PartitionAttr, SafetyChecker, SafetyResult};
pub use server::{
    CommitStats, HealthState, Mutation, MutationOutcome, MutationTicket, PanicSite, PbdsServer,
    PbdsSession, RecoveryReport, RobustnessEvents, ServedQuery, ServerConfig,
};
pub use tuning::{
    cumulative_elapsed, estimate_selectivity, Action, QueryRecord, SelfTuningExecutor, Strategy,
};

// Re-export the most commonly used items from the substrate crates so that
// downstream users (examples, benches) can depend on `pbds-core` alone.
pub use pbds_algebra as algebra;
pub use pbds_exec as exec;
pub use pbds_persist as persist;
pub use pbds_provenance as provenance;
pub use pbds_solver as solver;
pub use pbds_storage as storage;
pub use pbds_sync as sync;

// Hold-time counters surfaced through `RobustnessEvents::lock_holds`.
pub use pbds_sync::LockHoldStat;

// The unified telemetry layer: `PbdsServer::metrics_snapshot` /
// `SketchCatalog::metrics_snapshot` return `MetricsSnapshot`s, and span
// guards from `pbds_telemetry::span!` cover the query and write paths.
pub use pbds_telemetry as telemetry;
pub use pbds_telemetry::{HistogramSnapshot, MetricsSnapshot};

pub use pbds_exec::{AnalyzedQuery, Engine, EngineProfile, ExecStats, QueryOutput};
pub use pbds_provenance::{
    capture_lineage, capture_sketches, CaptureConfig, CaptureResult, FragmentBitset, LookupMethod,
    MergeStrategy, ProvenanceSketch,
};
