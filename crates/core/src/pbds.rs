//! The PBDS facade: a convenient entry point tying together partitioning,
//! safety checking, sketch capture, sketch use and self-tuning.

use crate::catalog::SketchCatalog;
use crate::instrument::{apply_sketches, UsePredicateStyle};
use crate::reuse::{ReuseChecker, ReuseResult};
use crate::safety::{PartitionAttr, SafetyChecker, SafetyResult};
use crate::server::{PbdsServer, ServerConfig};
use crate::tuning::{SelfTuningExecutor, Strategy};
use pbds_algebra::{LogicalPlan, QueryTemplate};
use pbds_exec::{Engine, EngineProfile, ExecError, QueryOutput};
use pbds_provenance::{
    capture_lineage, capture_sketches_with_profile, CaptureConfig, CaptureResult, ProvenanceSketch,
};
use pbds_storage::{
    CompositePartition, Database, Partition, PartitionRef, RangePartition, StorageError, Value,
};
use std::sync::Arc;

/// Errors surfaced by the facade.
#[derive(Debug, Clone, PartialEq)]
pub enum PbdsError {
    /// Storage-level error (unknown table / column).
    Storage(StorageError),
    /// Execution-level error.
    Exec(ExecError),
    /// A partition could not be built (e.g. the column holds only NULLs).
    Partitioning(String),
    /// A durability-layer error (snapshot / WAL / persisted catalog).
    Persist(pbds_persist::PersistError),
    /// A durability operation (checkpoint, shutdown-with-persist) was asked
    /// of a server that has no durability directory attached.
    NotDurable,
    /// The server has degraded to read-only: a durability failure (e.g. a
    /// failed WAL fsync) means new writes could be acknowledged but lost, so
    /// they are refused fast while reads keep serving. The janitor thread
    /// retries repair in the background; a successful repair (or an explicit
    /// [`crate::server::PbdsServer::checkpoint`]) restores write service.
    ReadOnly,
    /// The server is fail-stopped: repeated repair attempts could not
    /// re-establish durability. Reads and writes are both refused — serving
    /// answers that could silently diverge from the durable state is worse
    /// than refusing. Terminal for this server instance; restart via
    /// [`crate::server::PbdsServer::open`].
    FailStop,
    /// A session thread panicked while serving part of a query stream
    /// ([`crate::server::PbdsServer::serve_stream`]); the stream's results
    /// are incomplete. Other sessions and the server itself are unaffected.
    SessionPanicked,
}

impl std::fmt::Display for PbdsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PbdsError::Storage(e) => write!(f, "storage error: {e}"),
            PbdsError::Exec(e) => write!(f, "execution error: {e}"),
            PbdsError::Partitioning(msg) => write!(f, "partitioning error: {msg}"),
            PbdsError::Persist(e) => write!(f, "persistence error: {e}"),
            PbdsError::NotDurable => {
                write!(f, "server was not opened over a durability directory")
            }
            PbdsError::ReadOnly => write!(
                f,
                "server is read-only: durability is degraded, writes are \
                 refused until repair succeeds"
            ),
            PbdsError::FailStop => write!(
                f,
                "server is fail-stopped: durability could not be repaired"
            ),
            PbdsError::SessionPanicked => {
                write!(f, "a session thread panicked while serving the stream")
            }
        }
    }
}

impl std::error::Error for PbdsError {}

impl From<StorageError> for PbdsError {
    fn from(e: StorageError) -> Self {
        PbdsError::Storage(e)
    }
}
impl From<ExecError> for PbdsError {
    fn from(e: ExecError) -> Self {
        PbdsError::Exec(e)
    }
}
impl From<pbds_persist::PersistError> for PbdsError {
    fn from(e: pbds_persist::PersistError) -> Self {
        PbdsError::Persist(e)
    }
}

/// The main PBDS handle.
///
/// ```
/// use pbds_core::Pbds;
/// use pbds_algebra::{col, AggExpr, AggFunc, LogicalPlan, SortKey};
/// use pbds_storage::{Database, DataType, Schema, TableBuilder, Value};
///
/// // Build a tiny database with an ordered index on the group column.
/// let schema = Schema::from_pairs(&[("grp", DataType::Int), ("v", DataType::Int)]);
/// let mut b = TableBuilder::new("t", schema);
/// b.index("grp");
/// for i in 0..1000i64 {
///     b.push(vec![Value::Int(i % 10), Value::Int(i)]);
/// }
/// let mut db = Database::new();
/// db.add_table(b.build());
///
/// // A top-1 query whose relevant data cannot be determined statically.
/// let q = LogicalPlan::scan("t")
///     .aggregate(vec!["grp"], vec![AggExpr::new(AggFunc::Sum, col("v"), "total")])
///     .top_k(vec![SortKey::desc("total")], 1);
///
/// let pbds = Pbds::new(db);
/// // Capture a sketch on a safe attribute, then re-run the query with it.
/// let partition = pbds.range_partition("t", "grp", 5).unwrap();
/// let captured = pbds.capture(&q, &[partition]).unwrap();
/// let fast = pbds.execute_with_sketches(&q, &captured.sketches).unwrap();
/// let plain = pbds.execute(&q).unwrap();
/// assert!(fast.relation.bag_eq(&plain.relation));
/// assert!(fast.stats.rows_scanned < plain.stats.rows_scanned);
/// ```
#[derive(Debug, Clone)]
pub struct Pbds {
    db: Arc<Database>,
    engine: Engine,
    catalog: Arc<SketchCatalog>,
}

impl Pbds {
    /// Create a PBDS handle with the default (indexed) engine profile.
    pub fn new(db: Database) -> Self {
        Pbds::with_profile(db, EngineProfile::Indexed)
    }

    /// Create a PBDS handle with an explicit engine profile.
    pub fn with_profile(db: Database, profile: EngineProfile) -> Self {
        Pbds {
            db: Arc::new(db),
            engine: Engine::new(profile),
            catalog: Arc::new(SketchCatalog::default()),
        }
    }

    /// The underlying database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The shared sketch catalog backing this handle's self-tuning executors
    /// and servers.
    pub fn catalog(&self) -> &Arc<SketchCatalog> {
        &self.catalog
    }

    /// The execution engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Execute a query without PBDS.
    pub fn execute(&self, plan: &LogicalPlan) -> Result<QueryOutput, PbdsError> {
        Ok(self.engine.execute(&self.db, plan)?)
    }

    /// Build an equi-depth range partition of `table.attr` with (up to)
    /// `fragments` fragments; falls back to one fragment per distinct value
    /// when the column has fewer distinct values than requested fragments.
    pub fn range_partition(
        &self,
        table: &str,
        attr: &str,
        fragments: usize,
    ) -> Result<PartitionRef, PbdsError> {
        let t = self.db.table(table)?;
        let values = t.column_iter(attr).ok_or_else(|| {
            PbdsError::Storage(StorageError::UnknownColumn {
                table: table.to_string(),
                column: attr.to_string(),
            })
        })?;
        let distinct = t
            .stats()
            .column(attr)
            .map(|s| s.distinct)
            .unwrap_or(usize::MAX);
        let partition = if distinct <= fragments {
            RangePartition::per_distinct_value_from_iter(table, attr, values)
        } else {
            RangePartition::equi_depth_from_iter(table, attr, values, fragments)
        }
        .ok_or_else(|| {
            PbdsError::Partitioning(format!(
                "cannot partition {table}.{attr} (no non-null values)"
            ))
        })?;
        Ok(Arc::new(Partition::Range(partition)))
    }

    /// Build a composite (PSMIX) partition over a combination of attributes:
    /// one fragment per distinct combination (Sec. 9.4).
    pub fn composite_partition(
        &self,
        table: &str,
        attrs: &[&str],
    ) -> Result<PartitionRef, PbdsError> {
        let t = self.db.table(table)?;
        let partition =
            CompositePartition::build(table, t.schema(), t.rows(), attrs).ok_or_else(|| {
                PbdsError::Partitioning(format!("cannot partition {table} on {attrs:?}"))
            })?;
        Ok(Arc::new(Partition::Composite(partition)))
    }

    /// Statically check whether partitions over `attrs` are safe for `plan`
    /// (Sec. 5).
    pub fn check_safety(&self, plan: &LogicalPlan, attrs: &[PartitionAttr]) -> SafetyResult {
        SafetyChecker::new(&self.db).check(plan, attrs)
    }

    /// Choose safe partition attributes for a query, preferring the caller's
    /// candidates (e.g. primary keys) and falling back to group-by columns.
    pub fn choose_safe_attributes(
        &self,
        plan: &LogicalPlan,
        preferred: &[PartitionAttr],
    ) -> Option<Vec<PartitionAttr>> {
        SafetyChecker::new(&self.db).choose_safe_attributes(plan, preferred)
    }

    /// Check whether a sketch captured for `template(captured)` can answer
    /// `template(new_binding)` (Sec. 6).
    pub fn check_reuse(
        &self,
        template: &QueryTemplate,
        captured: &[Value],
        new_binding: &[Value],
    ) -> ReuseResult {
        ReuseChecker::new(&self.db).can_reuse(template, captured, new_binding)
    }

    /// Capture provenance sketches for a query over the given partitions
    /// using the fully optimized capture configuration (Sec. 7).
    pub fn capture(
        &self,
        plan: &LogicalPlan,
        partitions: &[PartitionRef],
    ) -> Result<CaptureResult, PbdsError> {
        self.capture_with_config(plan, partitions, &CaptureConfig::optimized())
    }

    /// Capture with an explicit configuration (used by the capture
    /// optimization benchmarks, Fig. 12). The instrumented run uses this
    /// handle's engine profile, so capture and execution share one pipeline.
    pub fn capture_with_config(
        &self,
        plan: &LogicalPlan,
        partitions: &[PartitionRef],
        config: &CaptureConfig,
    ) -> Result<CaptureResult, PbdsError> {
        Ok(capture_sketches_with_profile(
            &self.db,
            plan,
            partitions,
            config,
            self.engine.profile(),
        )?)
    }

    /// Compute the *accurate* sketch of a query for one partition by running
    /// full Lineage capture (slow; used as ground truth).
    pub fn accurate_sketch(
        &self,
        plan: &LogicalPlan,
        partition: &PartitionRef,
    ) -> Result<ProvenanceSketch, PbdsError> {
        let lineage = capture_lineage(&self.db, plan)?;
        let table = self.db.table(partition.table())?;
        let rows = lineage
            .rows_of(partition.table())
            .into_iter()
            .map(|rid| table.rows()[rid as usize].clone());
        Ok(ProvenanceSketch::from_rows(
            partition.clone(),
            table.schema(),
            rows,
        ))
    }

    /// Execute `plan` restricted by the given sketches (`Q[PS]`, Sec. 8),
    /// using the binary-search membership predicate.
    pub fn execute_with_sketches(
        &self,
        plan: &LogicalPlan,
        sketches: &[ProvenanceSketch],
    ) -> Result<QueryOutput, PbdsError> {
        self.execute_with_sketches_styled(plan, sketches, UsePredicateStyle::BinarySearch)
    }

    /// Execute `plan` restricted by the given sketches with an explicit
    /// predicate style (Fig. 11a vs 11c).
    pub fn execute_with_sketches_styled(
        &self,
        plan: &LogicalPlan,
        sketches: &[ProvenanceSketch],
        style: UsePredicateStyle,
    ) -> Result<QueryOutput, PbdsError> {
        let instrumented = apply_sketches(plan, sketches, style);
        Ok(self.engine.execute(&self.db, &instrumented)?)
    }

    /// Create a self-tuning executor over this database (Sec. 9.5). All
    /// executors created from one `Pbds` handle share its [`SketchCatalog`],
    /// so sketches captured by one are reused by the others.
    pub fn self_tuning(&self, strategy: Strategy, fragments: usize) -> SelfTuningExecutor<'_> {
        SelfTuningExecutor::new(&self.db, self.engine.profile(), strategy, fragments)
            .with_catalog(Arc::clone(&self.catalog))
    }

    /// Start a concurrent serving middleware over this database, sharing this
    /// handle's database and sketch catalog (see [`crate::server`]).
    ///
    /// The server always runs with **this handle's engine profile** — the
    /// `profile` field of `config` is ignored, because sketches captured
    /// through the shared catalog must be produced and consumed by the same
    /// execution profile. Construct a [`PbdsServer`] directly to pick an
    /// independent profile.
    pub fn serve(&self, config: ServerConfig) -> PbdsServer {
        PbdsServer::with_catalog(
            Arc::clone(&self.db),
            Arc::clone(&self.catalog),
            ServerConfig {
                profile: self.engine.profile(),
                ..config
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbds_algebra::{col, AggExpr, AggFunc, SortKey};
    use pbds_storage::{DataType, Schema, TableBuilder};

    fn db() -> Database {
        let schema = Schema::from_pairs(&[("grp", DataType::Int), ("v", DataType::Int)]);
        let mut b = TableBuilder::new("t", schema);
        b.block_size(64).index("grp");
        for i in 0..2_000i64 {
            b.push(vec![Value::Int(i % 40), Value::Int((i * 13) % 997)]);
        }
        let mut db = Database::new();
        db.add_table(b.build());
        db
    }

    fn top1() -> LogicalPlan {
        LogicalPlan::scan("t")
            .aggregate(
                vec!["grp"],
                vec![AggExpr::new(AggFunc::Sum, col("v"), "total")],
            )
            .top_k(vec![SortKey::desc("total")], 1)
    }

    #[test]
    fn end_to_end_capture_and_use() {
        let pbds = Pbds::new(db());
        let attrs = vec![PartitionAttr::new("t", "grp")];
        assert!(pbds.check_safety(&top1(), &attrs).safe);
        let part = pbds.range_partition("t", "grp", 8).unwrap();
        let captured = pbds.capture(&top1(), std::slice::from_ref(&part)).unwrap();
        assert!(captured.sketches[0].num_selected() < captured.sketches[0].num_fragments());
        let fast = pbds
            .execute_with_sketches(&top1(), &captured.sketches)
            .unwrap();
        let plain = pbds.execute(&top1()).unwrap();
        assert!(fast.relation.bag_eq(&plain.relation));
        assert!(fast.stats.rows_scanned < plain.stats.rows_scanned);
    }

    #[test]
    fn accurate_sketch_is_subset_of_captured_sketch() {
        let pbds = Pbds::new(db());
        let part = pbds.range_partition("t", "grp", 8).unwrap();
        let captured = pbds.capture(&top1(), std::slice::from_ref(&part)).unwrap();
        let accurate = pbds.accurate_sketch(&top1(), &part).unwrap();
        assert!(captured.sketches[0].is_superset_of(&accurate));
    }

    #[test]
    fn partition_errors_are_reported() {
        let pbds = Pbds::new(db());
        assert!(matches!(
            pbds.range_partition("missing", "grp", 4),
            Err(PbdsError::Storage(_))
        ));
        assert!(matches!(
            pbds.range_partition("t", "missing", 4),
            Err(PbdsError::Storage(_))
        ));
    }

    #[test]
    fn composite_partition_roundtrip() {
        let pbds = Pbds::new(db());
        let part = pbds.composite_partition("t", &["grp"]).unwrap();
        assert_eq!(part.num_fragments(), 40);
        let captured = pbds.capture(&top1(), &[part]).unwrap();
        let fast = pbds
            .execute_with_sketches(&top1(), &captured.sketches)
            .unwrap();
        assert!(fast
            .relation
            .bag_eq(&pbds.execute(&top1()).unwrap().relation));
    }
}
