//! A database is a named collection of tables (the catalog).

use crate::table::Table;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Errors raised by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// Referenced table does not exist.
    UnknownTable(String),
    /// Referenced column does not exist in the named table.
    UnknownColumn {
        /// Table that was searched.
        table: String,
        /// Missing column name.
        column: String,
    },
    /// A row's arity does not match the schema it is being stored under.
    ArityMismatch {
        /// What was being built or mutated (table name or "relation").
        context: String,
        /// The schema's arity.
        expected: usize,
        /// The offending row's arity.
        got: usize,
    },
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            StorageError::UnknownColumn { table, column } => {
                write!(f, "unknown column {column} in table {table}")
            }
            StorageError::ArityMismatch {
                context,
                expected,
                got,
            } => {
                write!(
                    f,
                    "row arity mismatch in {context}: schema has {expected} columns, row has {got}"
                )
            }
        }
    }
}

impl std::error::Error for StorageError {}

/// An in-memory database: a catalog of immutable tables.
///
/// Tables are stored behind `Arc` so that query execution, provenance capture
/// and the self-tuning framework can share them cheaply.
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: BTreeMap<String, Arc<Table>>,
}

impl Database {
    /// Create an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Register a table (replacing any previous table of the same name).
    pub fn add_table(&mut self, table: Table) {
        self.tables
            .insert(table.name().to_string(), Arc::new(table));
    }

    /// Look up a table by name.
    pub fn table(&self, name: &str) -> Result<&Arc<Table>, StorageError> {
        self.tables
            .get(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// True if the table exists.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(|s| s.as_str()).collect()
    }

    /// Total number of rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|t| t.len()).sum()
    }

    /// Replace a table's contents with a filtered subset (used by tests that
    /// evaluate queries over sketch instances `D_P`).
    pub fn with_replaced_table(&self, table: Table) -> Database {
        let mut db = self.clone();
        db.add_table(table);
        db
    }

    /// Mutable access to a table for in-place mutation. Shared tables are
    /// cloned copy-on-write (the clone shares already built derived
    /// artifacts via `Arc` until the mutation invalidates them), so readers
    /// holding the old `Arc<Table>` keep a consistent snapshot.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, StorageError> {
        self.tables
            .get_mut(name)
            .map(Arc::make_mut)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// Append rows to a table (copy-on-write when shared); returns the
    /// table's new epoch. See [`Table::append_rows`].
    pub fn append_rows(
        &mut self,
        table: &str,
        rows: Vec<crate::relation::Row>,
    ) -> Result<u64, StorageError> {
        self.table_mut(table)?.append_rows(rows)
    }

    /// Append several row batches to a table through a single epoch advance
    /// (copy-on-write when shared); returns the table's new epoch. See
    /// [`Table::append_row_batches`].
    pub fn append_row_batches(
        &mut self,
        table: &str,
        batches: Vec<Vec<crate::relation::Row>>,
    ) -> Result<u64, StorageError> {
        self.table_mut(table)?.append_row_batches(batches)
    }

    /// Delete rows matching `pred` from a table (copy-on-write when shared);
    /// returns the number of rows deleted. See [`Table::delete_where`].
    pub fn delete_where(
        &mut self,
        table: &str,
        pred: impl FnMut(&crate::relation::Row) -> bool,
    ) -> Result<usize, StorageError> {
        Ok(self.table_mut(table)?.delete_where(pred))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::{DataType, Value};

    fn tiny_table(name: &str, n: i64) -> Table {
        let schema = Schema::from_pairs(&[("a", DataType::Int)]);
        Table::new(name, schema, (0..n).map(|i| vec![Value::Int(i)]).collect())
    }

    #[test]
    fn add_and_lookup() {
        let mut db = Database::new();
        db.add_table(tiny_table("t1", 3));
        db.add_table(tiny_table("t2", 5));
        assert!(db.contains("t1"));
        assert_eq!(db.table("t2").unwrap().len(), 5);
        assert_eq!(db.table_names(), vec!["t1", "t2"]);
        assert_eq!(db.total_rows(), 8);
    }

    #[test]
    fn missing_table_is_an_error() {
        let db = Database::new();
        assert_eq!(
            db.table("nope").unwrap_err(),
            StorageError::UnknownTable("nope".into())
        );
    }

    #[test]
    fn with_replaced_table_swaps_contents() {
        let mut db = Database::new();
        db.add_table(tiny_table("t", 10));
        let db2 = db.with_replaced_table(tiny_table("t", 2));
        assert_eq!(db.table("t").unwrap().len(), 10);
        assert_eq!(db2.table("t").unwrap().len(), 2);
    }
}
