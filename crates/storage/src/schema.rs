//! Relation schemas: ordered lists of named, typed columns.

use crate::value::DataType;
use std::fmt;

/// A single column of a relation schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (unique within a schema; the paper assumes globally unique
    /// attribute names for the safety rules, which our workloads follow).
    pub name: String,
    /// Declared data type.
    pub dtype: DataType,
}

impl Column {
    /// Create a new column.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Column {
            name: name.into(),
            dtype,
        }
    }
}

/// An ordered list of columns describing the shape of a relation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Create a schema from a list of columns.
    pub fn new(columns: Vec<Column>) -> Self {
        Schema { columns }
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn from_pairs(pairs: &[(&str, DataType)]) -> Self {
        Schema {
            columns: pairs.iter().map(|(n, t)| Column::new(*n, *t)).collect(),
        }
    }

    /// Number of columns (the arity of the relation).
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Column by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Column by position.
    pub fn column_at(&self, idx: usize) -> Option<&Column> {
        self.columns.get(idx)
    }

    /// True if a column with the given name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.index_of(name).is_some()
    }

    /// Concatenate two schemas (used by joins and cross products).
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        Schema { columns }
    }

    /// Project the schema onto a subset of columns, preserving the requested
    /// order. Unknown names are skipped.
    pub fn project(&self, names: &[&str]) -> Schema {
        Schema {
            columns: names
                .iter()
                .filter_map(|n| self.column(n).cloned())
                .collect(),
        }
    }

    /// Append one column, returning a new schema.
    pub fn with_column(&self, column: Column) -> Schema {
        let mut columns = self.columns.clone();
        columns.push(column);
        Schema { columns }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.dtype)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cities_schema() -> Schema {
        Schema::from_pairs(&[
            ("popden", DataType::Int),
            ("city", DataType::Str),
            ("state", DataType::Str),
        ])
    }

    #[test]
    fn index_and_lookup() {
        let s = cities_schema();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.index_of("state"), Some(2));
        assert_eq!(s.index_of("missing"), None);
        assert!(s.contains("city"));
        assert_eq!(s.column("popden").unwrap().dtype, DataType::Int);
    }

    #[test]
    fn concat_appends_columns() {
        let s = cities_schema();
        let t = Schema::from_pairs(&[("id", DataType::Int)]);
        let c = s.concat(&t);
        assert_eq!(c.arity(), 4);
        assert_eq!(c.index_of("id"), Some(3));
    }

    #[test]
    fn project_preserves_requested_order() {
        let s = cities_schema();
        let p = s.project(&["state", "popden"]);
        assert_eq!(p.names(), vec!["state", "popden"]);
    }

    #[test]
    fn display_is_readable() {
        let s = Schema::from_pairs(&[("a", DataType::Int)]);
        assert_eq!(s.to_string(), "(a INT)");
    }

    #[test]
    fn with_column_adds_at_end() {
        let s = cities_schema().with_column(Column::new("extra", DataType::Bool));
        assert_eq!(s.arity(), 4);
        assert_eq!(s.names().last().copied(), Some("extra"));
    }
}
