//! Table statistics: per-column min/max bounds and equi-depth histograms.
//!
//! The paper uses the DBMS's one-dimensional equi-depth histograms to choose
//! the ranges of a partition (Sec. 9.3) and uses min/max statistics to bound
//! attribute values in the safety check's `pred(Q)` construction (Sec. 5.2).

use crate::relation::Row;
use crate::schema::Schema;
use crate::value::Value;
use std::collections::HashMap;

/// Statistics for a single column.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// Smallest non-null value observed.
    pub min: Option<Value>,
    /// Largest non-null value observed.
    pub max: Option<Value>,
    /// Number of distinct non-null values.
    pub distinct: usize,
    /// Number of NULLs.
    pub null_count: usize,
    /// Total number of rows.
    pub row_count: usize,
}

impl ColumnStats {
    /// True when every non-null value is `>= 0` (used by the safety rules'
    /// monotone-aggregation cases).
    pub fn non_negative(&self) -> bool {
        matches!(&self.min, Some(v) if *v >= Value::Int(0))
    }

    /// True when every non-null value is `> 0`.
    pub fn strictly_positive(&self) -> bool {
        matches!(&self.min, Some(v) if *v > Value::Int(0))
    }
}

/// An equi-depth (equi-height) histogram over one column.
///
/// The histogram stores `n+1` boundary values delimiting `n` buckets that
/// each contain approximately the same number of rows. PBDS uses these
/// boundaries directly as the ranges of a range partition so every fragment
/// covers roughly the same number of tuples (Sec. 9.3).
#[derive(Debug, Clone, PartialEq)]
pub struct EquiDepthHistogram {
    boundaries: Vec<Value>,
}

impl EquiDepthHistogram {
    /// Build an equi-depth histogram with (at most) `buckets` buckets from the
    /// non-null values of a column. Returns `None` when there are no non-null
    /// values or `buckets == 0`.
    pub fn build(values: &[Value], buckets: usize) -> Option<Self> {
        Self::build_from_iter(values.iter(), buckets)
    }

    /// Like [`EquiDepthHistogram::build`], but over borrowed values — lets
    /// callers feed a column straight from the row store (e.g.
    /// `Table::column_iter`) without materializing a cloned `Vec<Value>`.
    pub fn build_from_iter<'a>(
        values: impl IntoIterator<Item = &'a Value>,
        buckets: usize,
    ) -> Option<Self> {
        if buckets == 0 {
            return None;
        }
        let mut sorted: Vec<&Value> = values.into_iter().filter(|v| !v.is_null()).collect();
        if sorted.is_empty() {
            return None;
        }
        sorted.sort();
        let n = sorted.len();
        let buckets = buckets.min(n).max(1);
        let mut boundaries = Vec::with_capacity(buckets + 1);
        boundaries.push(sorted[0].clone());
        for b in 1..buckets {
            let idx = (b * n) / buckets;
            let v = sorted[idx.min(n - 1)].clone();
            if &v > boundaries.last().unwrap() {
                boundaries.push(v);
            }
        }
        let last = sorted[n - 1].clone();
        if &last > boundaries.last().unwrap() {
            boundaries.push(last);
        }
        if boundaries.len() < 2 {
            // All values equal: single degenerate bucket.
            boundaries.push(boundaries[0].clone());
        }
        Some(EquiDepthHistogram { boundaries })
    }

    /// Bucket boundary values (length = number of buckets + 1).
    pub fn boundaries(&self) -> &[Value] {
        &self.boundaries
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.boundaries.len() - 1
    }
}

/// Statistics for a whole table, keyed by column name.
#[derive(Debug, Clone, Default)]
pub struct TableStats {
    columns: HashMap<String, ColumnStats>,
    row_count: usize,
}

impl TableStats {
    /// Compute statistics for all columns of a table.
    pub fn compute(schema: &Schema, rows: &[Row]) -> Self {
        let mut columns = HashMap::new();
        for (ci, col) in schema.columns().iter().enumerate() {
            let mut min: Option<Value> = None;
            let mut max: Option<Value> = None;
            let mut null_count = 0usize;
            let mut distinct: std::collections::HashSet<&Value> = std::collections::HashSet::new();
            for row in rows {
                let v = &row[ci];
                if v.is_null() {
                    null_count += 1;
                    continue;
                }
                distinct.insert(v);
                if min.as_ref().is_none_or(|m| v < m) {
                    min = Some(v.clone());
                }
                if max.as_ref().is_none_or(|m| v > m) {
                    max = Some(v.clone());
                }
            }
            columns.insert(
                col.name.clone(),
                ColumnStats {
                    min,
                    max,
                    distinct: distinct.len(),
                    null_count,
                    row_count: rows.len(),
                },
            );
        }
        TableStats {
            columns,
            row_count: rows.len(),
        }
    }

    /// Statistics for a column, if known.
    pub fn column(&self, name: &str) -> Option<&ColumnStats> {
        self.columns.get(name)
    }

    /// Total row count.
    pub fn row_count(&self) -> usize {
        self.row_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    #[test]
    fn column_stats_min_max_distinct_nulls() {
        let schema = Schema::from_pairs(&[("a", DataType::Int)]);
        let rows: Vec<Row> = vec![
            vec![Value::Int(5)],
            vec![Value::Int(1)],
            vec![Value::Null],
            vec![Value::Int(5)],
        ];
        let stats = TableStats::compute(&schema, &rows);
        let a = stats.column("a").unwrap();
        assert_eq!(a.min, Some(Value::Int(1)));
        assert_eq!(a.max, Some(Value::Int(5)));
        assert_eq!(a.distinct, 2);
        assert_eq!(a.null_count, 1);
        assert_eq!(stats.row_count(), 4);
    }

    #[test]
    fn non_negative_and_positive_flags() {
        let schema = Schema::from_pairs(&[("a", DataType::Int)]);
        let pos: Vec<Row> = vec![vec![Value::Int(2)], vec![Value::Int(3)]];
        let zero: Vec<Row> = vec![vec![Value::Int(0)], vec![Value::Int(3)]];
        let neg: Vec<Row> = vec![vec![Value::Int(-1)], vec![Value::Int(3)]];
        assert!(TableStats::compute(&schema, &pos)
            .column("a")
            .unwrap()
            .strictly_positive());
        let z = TableStats::compute(&schema, &zero);
        assert!(z.column("a").unwrap().non_negative());
        assert!(!z.column("a").unwrap().strictly_positive());
        assert!(!TableStats::compute(&schema, &neg)
            .column("a")
            .unwrap()
            .non_negative());
    }

    #[test]
    fn equi_depth_histogram_has_balanced_buckets() {
        let values: Vec<Value> = (0..1000).map(Value::Int).collect();
        let h = EquiDepthHistogram::build(&values, 10).unwrap();
        assert_eq!(h.num_buckets(), 10);
        assert_eq!(h.boundaries().first(), Some(&Value::Int(0)));
        assert_eq!(h.boundaries().last(), Some(&Value::Int(999)));
    }

    #[test]
    fn histogram_with_fewer_distinct_values_than_buckets() {
        let values: Vec<Value> = (0..100).map(|i| Value::Int(i % 3)).collect();
        let h = EquiDepthHistogram::build(&values, 50).unwrap();
        assert!(h.num_buckets() <= 3);
    }

    #[test]
    fn histogram_of_constant_column_is_degenerate() {
        let values: Vec<Value> = (0..10).map(|_| Value::Int(7)).collect();
        let h = EquiDepthHistogram::build(&values, 4).unwrap();
        assert_eq!(h.num_buckets(), 1);
    }

    #[test]
    fn histogram_skewed_data_still_covers_domain() {
        let mut values: Vec<Value> = (0..990).map(|_| Value::Int(1)).collect();
        values.extend((0..10).map(|i| Value::Int(1000 + i)));
        let h = EquiDepthHistogram::build(&values, 8).unwrap();
        assert_eq!(h.boundaries().first(), Some(&Value::Int(1)));
        assert_eq!(h.boundaries().last(), Some(&Value::Int(1009)));
    }

    #[test]
    fn histogram_empty_or_zero_buckets_is_none() {
        assert!(EquiDepthHistogram::build(&[], 4).is_none());
        assert!(EquiDepthHistogram::build(&[Value::Int(1)], 0).is_none());
        assert!(EquiDepthHistogram::build(&[Value::Null], 4).is_none());
    }
}
