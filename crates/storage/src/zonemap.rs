//! Block-level zone maps (small materialized aggregates / BRIN-style min-max
//! summaries).
//!
//! The paper's "use" phase (Sec. 8) relies on the host DBMS exploiting zone
//! maps or indexes to skip data that does not satisfy the range conditions
//! derived from a provenance sketch. This module provides that physical
//! design artifact for our engine: tables are divided into fixed-size blocks
//! and for each block we keep per-column min/max values. A scan with a range
//! predicate can then skip whole blocks whose zone does not intersect the
//! predicate's ranges.

use crate::relation::Row;
use crate::schema::Schema;
use crate::value::Value;

/// Default number of rows per zone-map block.
pub const DEFAULT_BLOCK_SIZE: usize = 1024;

/// Min/max summary of one column within one block.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnZone {
    /// Minimum non-null value in the block (None when all values are NULL).
    pub min: Option<Value>,
    /// Maximum non-null value in the block.
    pub max: Option<Value>,
}

impl ColumnZone {
    fn empty() -> Self {
        ColumnZone {
            min: None,
            max: None,
        }
    }

    fn observe(&mut self, v: &Value) {
        if v.is_null() {
            return;
        }
        match &self.min {
            Some(m) if v >= m => {}
            _ => self.min = Some(v.clone()),
        }
        match &self.max {
            Some(m) if v <= m => {}
            _ => self.max = Some(v.clone()),
        }
    }

    /// Could a value inside `[lo, hi]` (inclusive; `None` = unbounded) exist
    /// in this block? Conservative: returns true when unknown.
    pub fn may_intersect(&self, lo: Option<&Value>, hi: Option<&Value>) -> bool {
        let (bmin, bmax) = match (&self.min, &self.max) {
            (Some(a), Some(b)) => (a, b),
            // All-NULL or empty block: no non-null value can match a range.
            _ => return false,
        };
        if let Some(lo) = lo {
            if bmax < lo {
                return false;
            }
        }
        if let Some(hi) = hi {
            if bmin > hi {
                return false;
            }
        }
        true
    }
}

/// Zone map for a contiguous block of rows.
#[derive(Debug, Clone)]
pub struct BlockZone {
    /// Index of the first row of the block.
    pub start: usize,
    /// One-past-the-last row of the block.
    pub end: usize,
    /// One zone per column (aligned with the table schema).
    pub columns: Vec<ColumnZone>,
}

/// Zone maps for an entire table.
#[derive(Debug, Clone, Default)]
pub struct ZoneMap {
    block_size: usize,
    blocks: Vec<BlockZone>,
}

impl ZoneMap {
    /// Build zone maps over `rows` with the given block size.
    pub fn build(schema: &Schema, rows: &[Row], block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        let mut zm = ZoneMap {
            block_size,
            blocks: Vec::with_capacity(rows.len() / block_size + 1),
        };
        zm.append_blocks(schema, rows, 0);
        zm
    }

    /// Extend the zone map after rows were appended at the tail: `covered`
    /// is the row count the map was built over. The (possibly partial) last
    /// block is rebuilt and new tail blocks are appended, so the result is
    /// identical to a from-scratch [`ZoneMap::build`] over all `rows`.
    pub fn extend(&mut self, schema: &Schema, rows: &[Row], covered: usize) {
        assert!(covered <= rows.len(), "extend cannot shrink a zone map");
        // Re-summarize from the last full-block boundary: the trailing
        // partial block (if any) absorbs appended rows.
        let rebuilt_from = covered - (covered % self.block_size);
        self.blocks.retain(|b| b.end <= rebuilt_from);
        self.append_blocks(schema, rows, rebuilt_from);
    }

    /// Summarize `rows[from..]` into blocks appended at the tail (`from`
    /// must be a multiple of the block size).
    fn append_blocks(&mut self, schema: &Schema, rows: &[Row], from: usize) {
        let arity = schema.arity();
        let mut start = from;
        while start < rows.len() {
            let end = (start + self.block_size).min(rows.len());
            let mut columns = vec![ColumnZone::empty(); arity];
            for row in &rows[start..end] {
                for (col, zone) in row.iter().zip(columns.iter_mut()) {
                    zone.observe(col);
                }
            }
            self.blocks.push(BlockZone {
                start,
                end,
                columns,
            });
            start = end;
        }
    }

    /// The block size this zone map was built with.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// All blocks.
    pub fn blocks(&self) -> &[BlockZone] {
        &self.blocks
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Given a column index and a set of inclusive ranges, return the blocks
    /// that may contain matching rows (the rest can be skipped).
    ///
    /// `ranges` uses `None` bounds for ±infinity.
    pub fn candidate_blocks(
        &self,
        column: usize,
        ranges: &[(Option<Value>, Option<Value>)],
    ) -> Vec<&BlockZone> {
        self.blocks
            .iter()
            .filter(|b| {
                let zone = &b.columns[column];
                ranges
                    .iter()
                    .any(|(lo, hi)| zone.may_intersect(lo.as_ref(), hi.as_ref()))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn rows(n: usize) -> Vec<Row> {
        (0..n).map(|i| vec![Value::Int(i as i64)]).collect()
    }

    fn schema() -> Schema {
        Schema::from_pairs(&[("a", DataType::Int)])
    }

    #[test]
    fn builds_expected_block_count() {
        let zm = ZoneMap::build(&schema(), &rows(2500), 1000);
        assert_eq!(zm.num_blocks(), 3);
        assert_eq!(zm.blocks()[0].start, 0);
        assert_eq!(zm.blocks()[0].end, 1000);
        assert_eq!(zm.blocks()[2].end, 2500);
    }

    #[test]
    fn zones_track_min_max() {
        let zm = ZoneMap::build(&schema(), &rows(2000), 1000);
        let b0 = &zm.blocks()[0].columns[0];
        assert_eq!(b0.min, Some(Value::Int(0)));
        assert_eq!(b0.max, Some(Value::Int(999)));
        let b1 = &zm.blocks()[1].columns[0];
        assert_eq!(b1.min, Some(Value::Int(1000)));
        assert_eq!(b1.max, Some(Value::Int(1999)));
    }

    #[test]
    fn candidate_blocks_skip_non_matching() {
        let zm = ZoneMap::build(&schema(), &rows(10_000), 1000);
        let ranges = vec![(Some(Value::Int(2500)), Some(Value::Int(2600)))];
        let cands = zm.candidate_blocks(0, &ranges);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].start, 2000);
    }

    #[test]
    fn multiple_ranges_union_blocks() {
        let zm = ZoneMap::build(&schema(), &rows(10_000), 1000);
        let ranges = vec![
            (Some(Value::Int(0)), Some(Value::Int(10))),
            (Some(Value::Int(9500)), None),
        ];
        let cands = zm.candidate_blocks(0, &ranges);
        assert_eq!(cands.len(), 2);
    }

    #[test]
    fn unbounded_range_keeps_all_blocks() {
        let zm = ZoneMap::build(&schema(), &rows(5000), 1000);
        let cands = zm.candidate_blocks(0, &[(None, None)]);
        assert_eq!(cands.len(), 5);
    }

    #[test]
    fn extend_matches_from_scratch_build() {
        // Extending over a partial last block must equal a fresh build.
        for initial in [0usize, 999, 1000, 1500, 2000] {
            let all = rows(2750);
            let mut zm = ZoneMap::build(&schema(), &all[..initial], 1000);
            zm.extend(&schema(), &all, initial);
            let fresh = ZoneMap::build(&schema(), &all, 1000);
            assert_eq!(zm.num_blocks(), fresh.num_blocks(), "initial={initial}");
            for (a, b) in zm.blocks().iter().zip(fresh.blocks()) {
                assert_eq!((a.start, a.end), (b.start, b.end), "initial={initial}");
                assert_eq!(a.columns, b.columns, "initial={initial}");
            }
        }
    }

    #[test]
    fn null_only_block_never_matches() {
        let rows: Vec<Row> = (0..10).map(|_| vec![Value::Null]).collect();
        let zm = ZoneMap::build(&schema(), &rows, 4);
        let cands = zm.candidate_blocks(0, &[(None, None)]);
        assert!(cands.is_empty());
    }
}
