//! In-memory relations (bags of rows) used as intermediate query results.

use crate::schema::Schema;
use crate::value::Value;
use std::fmt;

/// A row is an ordered list of values matching a schema.
pub type Row = Vec<Value>;

/// A bag of rows together with its schema.
///
/// The engine materializes every intermediate result as a `Relation`; base
/// tables wrap a `Relation` and add physical-design artifacts (zone maps,
/// indexes, statistics) — see [`crate::table::Table`].
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    schema: Schema,
    rows: Vec<Row>,
}

impl Relation {
    /// Create a relation from a schema and rows. Rows are trusted to match the
    /// schema arity (checked in debug builds).
    pub fn new(schema: Schema, rows: Vec<Row>) -> Self {
        debug_assert!(rows.iter().all(|r| r.len() == schema.arity()));
        Relation { schema, rows }
    }

    /// An empty relation with the given schema.
    pub fn empty(schema: Schema) -> Self {
        Relation {
            schema,
            rows: Vec::new(),
        }
    }

    /// The schema of this relation.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The rows of this relation.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the relation holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append a row.
    pub fn push(&mut self, row: Row) {
        debug_assert_eq!(row.len(), self.schema.arity());
        self.rows.push(row);
    }

    /// Consume the relation and return its rows.
    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }

    /// Value at `(row, column-name)`, if present.
    pub fn value(&self, row: usize, column: &str) -> Option<&Value> {
        let idx = self.schema.index_of(column)?;
        self.rows.get(row).and_then(|r| r.get(idx))
    }

    /// Extract a full column by name (clones every value); prefer
    /// [`Relation::column_iter`] when a borrowed walk suffices.
    pub fn column_values(&self, column: &str) -> Option<Vec<Value>> {
        let idx = self.schema.index_of(column)?;
        Some(self.rows.iter().map(|r| r[idx].clone()).collect())
    }

    /// Borrowing iterator over one column's values (no clones).
    pub fn column_iter(&self, column: &str) -> Option<impl Iterator<Item = &Value> + Clone + '_> {
        let idx = self.schema.index_of(column)?;
        Some(self.rows.iter().map(move |r| &r[idx]))
    }

    /// Sort rows lexicographically; useful for order-insensitive comparisons
    /// in tests (bag equality up to order).
    pub fn sorted(&self) -> Relation {
        let mut rows = self.rows.clone();
        rows.sort();
        Relation {
            schema: self.schema.clone(),
            rows,
        }
    }

    /// True if the two relations contain the same bag of rows (ignoring
    /// order). Schemas must have equal arity.
    pub fn bag_eq(&self, other: &Relation) -> bool {
        if self.schema.arity() != other.schema.arity() || self.len() != other.len() {
            return false;
        }
        self.sorted().rows == other.sorted().rows
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            writeln!(f, "{}", cells.join(" | "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn rel() -> Relation {
        let schema = Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Str)]);
        Relation::new(
            schema,
            vec![
                vec![Value::Int(2), Value::from("y")],
                vec![Value::Int(1), Value::from("x")],
            ],
        )
    }

    #[test]
    fn access_by_name() {
        let r = rel();
        assert_eq!(r.value(0, "a"), Some(&Value::Int(2)));
        assert_eq!(r.value(1, "b"), Some(&Value::from("x")));
        assert_eq!(r.value(0, "missing"), None);
    }

    #[test]
    fn column_extraction() {
        let r = rel();
        assert_eq!(
            r.column_values("a").unwrap(),
            vec![Value::Int(2), Value::Int(1)]
        );
    }

    #[test]
    fn bag_equality_ignores_order() {
        let r = rel();
        let mut swapped = rel();
        swapped.rows.reverse();
        assert!(r.bag_eq(&swapped));
    }

    #[test]
    fn bag_equality_respects_multiplicity() {
        let mut a = rel();
        let b = rel();
        a.push(vec![Value::Int(2), Value::from("y")]);
        assert!(!a.bag_eq(&b));
    }

    #[test]
    fn empty_relation() {
        let r = Relation::empty(Schema::from_pairs(&[("a", DataType::Int)]));
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
    }
}
