//! In-memory relations (bags of rows) used as intermediate query results.

use crate::database::StorageError;
use crate::schema::Schema;
use crate::value::Value;
use std::fmt;

/// A row is an ordered list of values matching a schema.
pub type Row = Vec<Value>;

/// A bag of rows together with its schema.
///
/// The engine materializes every intermediate result as a `Relation`; base
/// tables wrap a `Relation` and add physical-design artifacts (zone maps,
/// indexes, statistics) — see [`crate::table::Table`].
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    schema: Schema,
    rows: Vec<Row>,
}

impl Relation {
    /// Create a relation from a schema and rows. Panics if any row's arity
    /// does not match the schema (in release builds too — a wrong-arity row
    /// would silently corrupt columnar builds and hash operators downstream);
    /// use [`Relation::try_new`] to handle the mismatch as an error.
    pub fn new(schema: Schema, rows: Vec<Row>) -> Self {
        Relation::try_new(schema, rows).expect("Relation::new: row arity does not match schema")
    }

    /// Create a relation, returning [`StorageError::ArityMismatch`] when a
    /// row does not match the schema's arity.
    pub fn try_new(schema: Schema, rows: Vec<Row>) -> Result<Self, StorageError> {
        if let Some(row) = rows.iter().find(|r| r.len() != schema.arity()) {
            return Err(StorageError::ArityMismatch {
                context: "relation".to_string(),
                expected: schema.arity(),
                got: row.len(),
            });
        }
        Ok(Relation { schema, rows })
    }

    /// An empty relation with the given schema.
    pub fn empty(schema: Schema) -> Self {
        Relation {
            schema,
            rows: Vec::new(),
        }
    }

    /// The schema of this relation.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The rows of this relation.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the relation holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append a row. Panics on an arity mismatch (in release builds too);
    /// use [`Relation::try_push`] to handle the mismatch as an error.
    pub fn push(&mut self, row: Row) {
        self.try_push(row)
            .expect("Relation::push: row arity does not match schema");
    }

    /// Append a row, returning [`StorageError::ArityMismatch`] when the row
    /// does not match the schema's arity.
    pub fn try_push(&mut self, row: Row) -> Result<(), StorageError> {
        if row.len() != self.schema.arity() {
            return Err(StorageError::ArityMismatch {
                context: "relation".to_string(),
                expected: self.schema.arity(),
                got: row.len(),
            });
        }
        self.rows.push(row);
        Ok(())
    }

    /// Consume the relation and return its rows.
    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }

    /// Value at `(row, column-name)`, if present.
    pub fn value(&self, row: usize, column: &str) -> Option<&Value> {
        let idx = self.schema.index_of(column)?;
        self.rows.get(row).and_then(|r| r.get(idx))
    }

    /// Extract a full column by name (clones every value); prefer
    /// [`Relation::column_iter`] when a borrowed walk suffices.
    pub fn column_values(&self, column: &str) -> Option<Vec<Value>> {
        let idx = self.schema.index_of(column)?;
        Some(self.rows.iter().map(|r| r[idx].clone()).collect())
    }

    /// Borrowing iterator over one column's values (no clones).
    pub fn column_iter(&self, column: &str) -> Option<impl Iterator<Item = &Value> + Clone + '_> {
        let idx = self.schema.index_of(column)?;
        Some(self.rows.iter().map(move |r| &r[idx]))
    }

    /// Sort rows lexicographically; useful for order-insensitive comparisons
    /// in tests (bag equality up to order).
    pub fn sorted(&self) -> Relation {
        let mut rows = self.rows.clone();
        rows.sort();
        Relation {
            schema: self.schema.clone(),
            rows,
        }
    }

    /// True if the two relations have the same schema (column names *and*
    /// types, not just arity) and contain the same bag of rows (ignoring
    /// order). Relations over different schemas are never bag-equal, even
    /// when their rows coincide.
    pub fn bag_eq(&self, other: &Relation) -> bool {
        if self.schema != other.schema || self.len() != other.len() {
            return false;
        }
        self.sorted().rows == other.sorted().rows
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            writeln!(f, "{}", cells.join(" | "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn rel() -> Relation {
        let schema = Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Str)]);
        Relation::new(
            schema,
            vec![
                vec![Value::Int(2), Value::from("y")],
                vec![Value::Int(1), Value::from("x")],
            ],
        )
    }

    #[test]
    fn access_by_name() {
        let r = rel();
        assert_eq!(r.value(0, "a"), Some(&Value::Int(2)));
        assert_eq!(r.value(1, "b"), Some(&Value::from("x")));
        assert_eq!(r.value(0, "missing"), None);
    }

    #[test]
    fn column_extraction() {
        let r = rel();
        assert_eq!(
            r.column_values("a").unwrap(),
            vec![Value::Int(2), Value::Int(1)]
        );
    }

    #[test]
    fn bag_equality_ignores_order() {
        let r = rel();
        let mut swapped = rel();
        swapped.rows.reverse();
        assert!(r.bag_eq(&swapped));
    }

    #[test]
    fn bag_equality_respects_multiplicity() {
        let mut a = rel();
        let b = rel();
        a.push(vec![Value::Int(2), Value::from("y")]);
        assert!(!a.bag_eq(&b));
    }

    #[test]
    fn bag_equality_requires_matching_schemas() {
        // Same arity, same rows — but different column names / types must
        // never compare bag-equal.
        let rows = vec![vec![Value::Int(1)], vec![Value::Int(2)]];
        let a = Relation::new(Schema::from_pairs(&[("a", DataType::Int)]), rows.clone());
        let renamed = Relation::new(Schema::from_pairs(&[("b", DataType::Int)]), rows.clone());
        let retyped = Relation::new(Schema::from_pairs(&[("a", DataType::Float)]), rows.clone());
        assert!(a.bag_eq(&a.clone()));
        assert!(!a.bag_eq(&renamed));
        assert!(!a.bag_eq(&retyped));
    }

    #[test]
    fn try_new_and_try_push_report_arity_mismatch() {
        let schema = Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Str)]);
        assert!(matches!(
            Relation::try_new(schema.clone(), vec![vec![Value::Int(1)]]),
            Err(crate::database::StorageError::ArityMismatch {
                expected: 2,
                got: 1,
                ..
            })
        ));
        let mut r = Relation::empty(schema);
        assert!(r.try_push(vec![Value::Int(1)]).is_err());
        assert!(r.try_push(vec![Value::Int(1), Value::from("x")]).is_ok());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn empty_relation() {
        let r = Relation::empty(Schema::from_pairs(&[("a", DataType::Int)]));
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
    }
}
