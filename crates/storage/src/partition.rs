//! Horizontal partitions of relations (Sec. 4.1 of the paper).
//!
//! PBDS builds provenance sketches over a horizontal partition of an input
//! relation. The paper focuses on *range partitioning* because it lets
//! sketches be translated into range predicates that exploit indexes and zone
//! maps; for the real-world workloads it also uses partitions over the
//! combination of the group-by attributes (called `PSMIX` in Sec. 9.4), which
//! we model as a [`CompositePartition`] (list partition over composite keys).

use crate::relation::Row;
use crate::schema::Schema;
use crate::stats::EquiDepthHistogram;
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// One interval of a range partition.
///
/// Fragments are half-open on the left and closed on the right,
/// `(lo, hi]`, except for the first fragment (no lower bound) and the last
/// (no upper bound), so the fragments always cover the whole domain.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueRange {
    /// Exclusive lower bound (`None` = unbounded below).
    pub lo: Option<Value>,
    /// Inclusive upper bound (`None` = unbounded above).
    pub hi: Option<Value>,
}

impl ValueRange {
    /// Does this range contain the value?
    pub fn contains(&self, v: &Value) -> bool {
        if v.is_null() {
            return false;
        }
        if let Some(lo) = &self.lo {
            if v <= lo {
                return false;
            }
        }
        if let Some(hi) = &self.hi {
            if v > hi {
                return false;
            }
        }
        true
    }

    /// Conservative inclusive bounds for zone-map / index probing.
    pub fn inclusive_bounds(&self) -> (Option<Value>, Option<Value>) {
        (self.lo.clone(), self.hi.clone())
    }
}

/// A range partition of a relation on a single attribute (Def. 2).
#[derive(Debug, Clone, PartialEq)]
pub struct RangePartition {
    table: String,
    attr: String,
    /// Inclusive upper bounds of fragments `0..n-1`; the last fragment is
    /// unbounded above. `uppers.len() + 1 == num_fragments()`.
    uppers: Vec<Value>,
}

impl RangePartition {
    /// Create a partition from explicit fragment upper bounds (must be
    /// strictly increasing).
    pub fn from_uppers(
        table: impl Into<String>,
        attr: impl Into<String>,
        uppers: Vec<Value>,
    ) -> Self {
        debug_assert!(
            uppers.windows(2).all(|w| w[0] < w[1]),
            "upper bounds must be strictly increasing"
        );
        RangePartition {
            table: table.into(),
            attr: attr.into(),
            uppers,
        }
    }

    /// Build an equi-depth partition with (at most) `fragments` fragments from
    /// the values of the partitioning attribute, mirroring the paper's use of
    /// the DBMS's equi-depth histograms (Sec. 9.3).
    pub fn equi_depth(
        table: impl Into<String>,
        attr: impl Into<String>,
        values: &[Value],
        fragments: usize,
    ) -> Option<Self> {
        Self::equi_depth_from_iter(table, attr, values.iter(), fragments)
    }

    /// Like [`RangePartition::equi_depth`], but over borrowed values (e.g.
    /// straight from `Table::column_iter`) so callers need not clone the
    /// column into an owned `Vec<Value>` first.
    pub fn equi_depth_from_iter<'a>(
        table: impl Into<String>,
        attr: impl Into<String>,
        values: impl IntoIterator<Item = &'a Value>,
        fragments: usize,
    ) -> Option<Self> {
        let hist = EquiDepthHistogram::build_from_iter(values, fragments)?;
        let bounds = hist.boundaries();
        // boundaries = [min, u1, u2, ..., max]; drop the minimum, use interior
        // boundaries as inclusive uppers; the final fragment is unbounded.
        let uppers: Vec<Value> = bounds[1..bounds.len().max(2) - 1].to_vec();
        Some(RangePartition {
            table: table.into(),
            attr: attr.into(),
            uppers,
        })
    }

    /// Build a partition with one fragment per distinct value of the
    /// attribute (used when partitioning on group-by attributes with few
    /// distinct values).
    pub fn per_distinct_value(
        table: impl Into<String>,
        attr: impl Into<String>,
        values: &[Value],
    ) -> Option<Self> {
        Self::per_distinct_value_from_iter(table, attr, values.iter())
    }

    /// Like [`RangePartition::per_distinct_value`], but over borrowed values;
    /// only the distinct values are cloned.
    pub fn per_distinct_value_from_iter<'a>(
        table: impl Into<String>,
        attr: impl Into<String>,
        values: impl IntoIterator<Item = &'a Value>,
    ) -> Option<Self> {
        let mut distinct: Vec<Value> = values
            .into_iter()
            .filter(|v| !v.is_null())
            .cloned()
            .collect();
        distinct.sort();
        distinct.dedup();
        if distinct.is_empty() {
            return None;
        }
        // One fragment per distinct value: uppers are all but the largest.
        distinct.pop();
        Some(RangePartition {
            table: table.into(),
            attr: attr.into(),
            uppers: distinct,
        })
    }

    /// The partitioned table name.
    pub fn table(&self) -> &str {
        &self.table
    }

    /// The partitioning attribute.
    pub fn attr(&self) -> &str {
        &self.attr
    }

    /// The inclusive upper bounds of fragments `0..n-1` (the last fragment is
    /// unbounded above). Together with the table and attribute this is the
    /// partition's complete durable state — see
    /// [`RangePartition::from_uppers`].
    pub fn uppers(&self) -> &[Value] {
        &self.uppers
    }

    /// Number of fragments.
    pub fn num_fragments(&self) -> usize {
        self.uppers.len() + 1
    }

    /// Fragment index of a value using binary search (the optimized lookup of
    /// Sec. 7.3, `O(log n)`).
    pub fn fragment_of(&self, v: &Value) -> Option<usize> {
        if v.is_null() {
            return None;
        }
        Some(self.uppers.partition_point(|u| u < v))
    }

    /// Fragment index using a linear scan; models the naive `CASE` expression
    /// list the paper compares against in Fig. 12a (`O(n)`).
    pub fn fragment_of_linear(&self, v: &Value) -> Option<usize> {
        if v.is_null() {
            return None;
        }
        for (i, u) in self.uppers.iter().enumerate() {
            if v <= u {
                return Some(i);
            }
        }
        Some(self.uppers.len())
    }

    /// The value range covered by a fragment.
    pub fn range_of(&self, fragment: usize) -> ValueRange {
        let lo = if fragment == 0 {
            None
        } else {
            Some(self.uppers[fragment - 1].clone())
        };
        let hi = self.uppers.get(fragment).cloned();
        ValueRange { lo, hi }
    }

    /// Ranges for a sorted list of fragment ids, merging *adjacent* fragments
    /// into a single range (the condition-merging optimization of Sec. 8.1).
    pub fn merged_ranges(&self, fragments: &[usize]) -> Vec<ValueRange> {
        let mut out: Vec<ValueRange> = Vec::new();
        let mut i = 0;
        while i < fragments.len() {
            let start = fragments[i];
            let mut end = start;
            while i + 1 < fragments.len() && fragments[i + 1] == end + 1 {
                i += 1;
                end = fragments[i];
            }
            let lo = self.range_of(start).lo;
            let hi = self.range_of(end).hi;
            out.push(ValueRange { lo, hi });
            i += 1;
        }
        out
    }
}

/// A list partition on a composite key (one fragment per distinct combination
/// of the partitioning attributes). Used to model the paper's `PSMIX`
/// sketches over all group-by attributes of a query (Sec. 9.4).
#[derive(Debug, Clone)]
pub struct CompositePartition {
    table: String,
    attrs: Vec<String>,
    key_to_fragment: HashMap<Vec<Value>, usize>,
    fragment_keys: Vec<Vec<Value>>,
}

impl CompositePartition {
    /// Build a composite partition from the rows of a table, one fragment per
    /// distinct combination of `attrs`.
    pub fn build(
        table: impl Into<String>,
        schema: &Schema,
        rows: &[Row],
        attrs: &[&str],
    ) -> Option<Self> {
        let idxs: Option<Vec<usize>> = attrs.iter().map(|a| schema.index_of(a)).collect();
        let idxs = idxs?;
        let mut key_to_fragment = HashMap::new();
        let mut fragment_keys = Vec::new();
        for row in rows {
            let key: Vec<Value> = idxs.iter().map(|&i| row[i].clone()).collect();
            if !key_to_fragment.contains_key(&key) {
                key_to_fragment.insert(key.clone(), fragment_keys.len());
                fragment_keys.push(key);
            }
        }
        if fragment_keys.is_empty() {
            return None;
        }
        Some(CompositePartition {
            table: table.into(),
            attrs: attrs.iter().map(|s| s.to_string()).collect(),
            key_to_fragment,
            fragment_keys,
        })
    }

    /// Reconstruct a composite partition from its durable state: the ordered
    /// list of fragment keys (fragment `i` holds the rows matching
    /// `keys[i]`). Returns `None` when `keys` is empty, a key's arity does
    /// not match `attrs`, or two keys are equal (a corrupt image — fragment
    /// identity would be ambiguous).
    pub fn from_keys(
        table: impl Into<String>,
        attrs: Vec<String>,
        keys: Vec<Vec<Value>>,
    ) -> Option<Self> {
        if keys.is_empty() || keys.iter().any(|k| k.len() != attrs.len()) {
            return None;
        }
        let mut key_to_fragment = HashMap::with_capacity(keys.len());
        for (i, key) in keys.iter().enumerate() {
            if key_to_fragment.insert(key.clone(), i).is_some() {
                return None;
            }
        }
        Some(CompositePartition {
            table: table.into(),
            attrs,
            key_to_fragment,
            fragment_keys: keys,
        })
    }

    /// The partitioned table.
    pub fn table(&self) -> &str {
        &self.table
    }

    /// The partitioning attributes.
    pub fn attrs(&self) -> &[String] {
        &self.attrs
    }

    /// All fragment keys in fragment order (the inverse of
    /// [`CompositePartition::from_keys`]).
    pub fn keys(&self) -> &[Vec<Value>] {
        &self.fragment_keys
    }

    /// Number of fragments.
    pub fn num_fragments(&self) -> usize {
        self.fragment_keys.len()
    }

    /// Fragment of a composite key (as extracted from a row).
    pub fn fragment_of_key(&self, key: &[Value]) -> Option<usize> {
        self.key_to_fragment.get(key).copied()
    }

    /// The composite keys belonging to a set of fragments (used to build the
    /// `IN`-list predicate when applying a composite sketch).
    pub fn keys_of(&self, fragments: &[usize]) -> Vec<Vec<Value>> {
        fragments
            .iter()
            .filter_map(|&f| self.fragment_keys.get(f).cloned())
            .collect()
    }
}

/// Any supported partition kind.
#[derive(Debug, Clone)]
pub enum Partition {
    /// Range partition on a single attribute.
    Range(RangePartition),
    /// List partition on a composite key.
    Composite(CompositePartition),
}

impl Partition {
    /// The partitioned table.
    pub fn table(&self) -> &str {
        match self {
            Partition::Range(p) => p.table(),
            Partition::Composite(p) => p.table(),
        }
    }

    /// The partitioning attributes.
    pub fn attrs(&self) -> Vec<String> {
        match self {
            Partition::Range(p) => vec![p.attr().to_string()],
            Partition::Composite(p) => p.attrs().to_vec(),
        }
    }

    /// Number of fragments.
    pub fn num_fragments(&self) -> usize {
        match self {
            Partition::Range(p) => p.num_fragments(),
            Partition::Composite(p) => p.num_fragments(),
        }
    }

    /// Fragment a row of the partitioned table belongs to.
    pub fn fragment_of_row(&self, schema: &Schema, row: &Row) -> Option<usize> {
        let idxs = self.resolve_attrs(schema)?;
        self.fragment_of_row_at(&idxs, row)
    }

    /// Resolve the partitioning attributes against a schema once; the result
    /// can be reused for every row via [`Partition::fragment_of_row_at`],
    /// avoiding the per-row string lookups of [`Partition::fragment_of_row`].
    pub fn resolve_attrs(&self, schema: &Schema) -> Option<Vec<usize>> {
        match self {
            Partition::Range(p) => Some(vec![schema.index_of(p.attr())?]),
            Partition::Composite(p) => p.attrs().iter().map(|a| schema.index_of(a)).collect(),
        }
    }

    /// Fragment of a row given pre-resolved attribute indexes (see
    /// [`Partition::resolve_attrs`]).
    pub fn fragment_of_row_at(&self, idxs: &[usize], row: &Row) -> Option<usize> {
        match self {
            Partition::Range(p) => p.fragment_of(&row[*idxs.first()?]),
            Partition::Composite(p) => {
                let key: Vec<Value> = idxs.iter().map(|&i| row[i].clone()).collect();
                p.fragment_of_key(&key)
            }
        }
    }
}

/// Shared handle to a partition; partitions are immutable once built and are
/// shared between sketches, the capture instrumentation and the use
/// instrumentation.
pub type PartitionRef = Arc<Partition>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn states_partition() -> RangePartition {
        // Mirrors Fig. 1e: f1=[AL,DE], f2=[FL,MI], f3=[MN,OK], f4=[OR,WY].
        RangePartition::from_uppers(
            "cities",
            "state",
            vec![Value::from("DE"), Value::from("MI"), Value::from("OK")],
        )
    }

    #[test]
    fn fragment_lookup_matches_paper_example() {
        let p = states_partition();
        assert_eq!(p.num_fragments(), 4);
        assert_eq!(p.fragment_of(&Value::from("CA")), Some(0));
        assert_eq!(p.fragment_of(&Value::from("AK")), Some(0));
        assert_eq!(p.fragment_of(&Value::from("NY")), Some(2));
        assert_eq!(p.fragment_of(&Value::from("TX")), Some(3));
    }

    #[test]
    fn binary_and_linear_lookup_agree() {
        let p = RangePartition::from_uppers("t", "a", (1..100).map(Value::Int).collect());
        for v in -5..110 {
            assert_eq!(
                p.fragment_of(&Value::Int(v)),
                p.fragment_of_linear(&Value::Int(v)),
                "mismatch at {v}"
            );
        }
    }

    #[test]
    fn null_has_no_fragment() {
        let p = states_partition();
        assert_eq!(p.fragment_of(&Value::Null), None);
        assert_eq!(p.fragment_of_linear(&Value::Null), None);
    }

    #[test]
    fn range_of_fragment_bounds() {
        let p = states_partition();
        assert_eq!(p.range_of(0).lo, None);
        assert_eq!(p.range_of(0).hi, Some(Value::from("DE")));
        assert_eq!(p.range_of(3).lo, Some(Value::from("OK")));
        assert_eq!(p.range_of(3).hi, None);
        assert!(p.range_of(0).contains(&Value::from("CA")));
        assert!(!p.range_of(0).contains(&Value::from("NY")));
    }

    #[test]
    fn merged_ranges_collapse_adjacent_fragments() {
        let p = RangePartition::from_uppers(
            "t",
            "a",
            vec![Value::Int(10), Value::Int(20), Value::Int(30)],
        );
        let merged = p.merged_ranges(&[0, 1, 3]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].lo, None);
        assert_eq!(merged[0].hi, Some(Value::Int(20)));
        assert_eq!(merged[1].lo, Some(Value::Int(30)));
        assert_eq!(merged[1].hi, None);
    }

    #[test]
    fn equi_depth_partition_has_requested_fragments() {
        let values: Vec<Value> = (0..10_000).map(Value::Int).collect();
        let p = RangePartition::equi_depth("t", "a", &values, 32).unwrap();
        assert_eq!(p.num_fragments(), 32);
        // Every value must land in some fragment.
        for v in [0, 5000, 9999] {
            assert!(p.fragment_of(&Value::Int(v)).unwrap() < 32);
        }
    }

    #[test]
    fn per_distinct_value_partition_isolates_values() {
        let values: Vec<Value> = ["CA", "NY", "TX", "CA"]
            .iter()
            .map(|s| Value::from(*s))
            .collect();
        let p = RangePartition::per_distinct_value("t", "state", &values).unwrap();
        assert_eq!(p.num_fragments(), 3);
        let fca = p.fragment_of(&Value::from("CA")).unwrap();
        let fny = p.fragment_of(&Value::from("NY")).unwrap();
        let ftx = p.fragment_of(&Value::from("TX")).unwrap();
        assert_ne!(fca, fny);
        assert_ne!(fny, ftx);
    }

    #[test]
    fn composite_partition_groups_by_key() {
        let schema = Schema::from_pairs(&[("area", DataType::Int), ("kind", DataType::Str)]);
        let rows: Vec<Row> = vec![
            vec![Value::Int(1), Value::from("theft")],
            vec![Value::Int(1), Value::from("theft")],
            vec![Value::Int(2), Value::from("theft")],
            vec![Value::Int(1), Value::from("assault")],
        ];
        let p = CompositePartition::build("crimes", &schema, &rows, &["area", "kind"]).unwrap();
        assert_eq!(p.num_fragments(), 3);
        let part = Partition::Composite(p);
        assert_eq!(
            part.fragment_of_row(&schema, &rows[0]),
            part.fragment_of_row(&schema, &rows[1])
        );
        assert_ne!(
            part.fragment_of_row(&schema, &rows[0]),
            part.fragment_of_row(&schema, &rows[2])
        );
    }

    #[test]
    fn partition_enum_delegates() {
        let p = Partition::Range(states_partition());
        assert_eq!(p.table(), "cities");
        assert_eq!(p.attrs(), vec!["state".to_string()]);
        assert_eq!(p.num_fragments(), 4);
        let schema = Schema::from_pairs(&[
            ("popden", DataType::Int),
            ("city", DataType::Str),
            ("state", DataType::Str),
        ]);
        let row = vec![
            Value::Int(6000),
            Value::from("San Diego"),
            Value::from("CA"),
        ];
        assert_eq!(p.fragment_of_row(&schema, &row), Some(0));
    }
}
