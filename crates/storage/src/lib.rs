//! # pbds-storage
//!
//! Storage substrate for the Provenance-Based Data Skipping (PBDS)
//! reproduction: scalar values, schemas, in-memory relations and tables,
//! block-level zone maps, ordered secondary indexes, table statistics
//! (min/max + equi-depth histograms) and horizontal partitions.
//!
//! The crate corresponds to the physical-design layer the paper assumes its
//! host DBMS provides (Sec. 1 and Sec. 8): PBDS translates a provenance
//! sketch into range predicates, and the artifacts in this crate (zone maps,
//! ordered indexes) are what make evaluating those predicates cheap.

#![warn(missing_docs)]

pub mod columnar;
pub mod database;
pub mod index;
pub mod partition;
pub mod relation;
pub mod schema;
pub mod stats;
pub mod table;
pub mod value;
pub mod zonemap;

pub use columnar::{ColumnData, ColumnVector, ColumnarChunk, ColumnarChunks, PackedInts, Runs};
pub use database::{Database, StorageError};
pub use index::OrderedIndex;
pub use partition::{CompositePartition, Partition, PartitionRef, RangePartition, ValueRange};
pub use relation::{Relation, Row};
pub use schema::{Column, Schema};
pub use stats::{ColumnStats, EquiDepthHistogram, TableStats};
pub use table::{MutationKind, Table, TableBuilder, TableImage};
pub use value::{DataType, Value};
pub use zonemap::{BlockZone, ColumnZone, ZoneMap, DEFAULT_BLOCK_SIZE};

// Concurrency audit: the serving middleware shares the database, tables and
// partitions across session and capture-worker threads behind `Arc`s. Rows
// and partitions are immutable once shared (mutation goes through
// copy-on-write `Database::table_mut`); `Table`'s derived-artifact caches use
// an internal `RwLock` and hand out `Arc` snapshots, so these bounds must
// hold — a compile error here means a change introduced thread-unsafe state
// into the storage layer.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Database>();
    assert_send_sync::<Table>();
    assert_send_sync::<Partition>();
    assert_send_sync::<PartitionRef>();
    assert_send_sync::<Relation>();
    assert_send_sync::<Value>();
    assert_send_sync::<ZoneMap>();
    assert_send_sync::<OrderedIndex>();
    assert_send_sync::<ColumnarChunks>();
};
