//! Scalar values and data types used throughout the PBDS engine.
//!
//! The paper (Sec. 3.1) assumes a universal domain; we model it with a small
//! dynamically typed [`Value`] enum that supports total ordering (needed for
//! range partitioning, sorting and top-k), hashing (needed for group-by and
//! joins) and basic arithmetic (needed for aggregation and projection
//! expressions).

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// The type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float with total ordering.
    Float,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INT"),
            DataType::Float => write!(f, "FLOAT"),
            DataType::Str => write!(f, "TEXT"),
            DataType::Bool => write!(f, "BOOL"),
        }
    }
}

/// A dynamically typed scalar value.
///
/// `Value` implements a *total* order: `Null` sorts before everything,
/// numeric values compare numerically across `Int`/`Float`, and values of
/// different non-numeric types compare by a fixed type rank. This gives the
/// engine deterministic sorting and lets range partitions be defined over any
/// column type.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Integer value.
    Int(i64),
    /// Floating point value.
    Float(f64),
    /// String value.
    Str(String),
    /// Boolean value.
    Bool(bool),
}

impl Value {
    /// Returns the data type of this value, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    /// True if the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interpret the value as a float if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Interpret the value as an integer if it is an `Int`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) => Some(*f as i64),
            _ => None,
        }
    }

    /// Interpret the value as a string slice if it is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Interpret the value as a boolean. Numeric values are truthy when
    /// non-zero; NULL maps to `None` (unknown).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            Value::Int(i) => Some(*i != 0),
            Value::Float(f) => Some(*f != 0.0),
            Value::Null => None,
            Value::Str(_) => None,
        }
    }

    /// Numeric rank used to order values of different types deterministically.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Str(_) => 3,
        }
    }

    /// Add two numeric values, preserving `Int` when both are integers.
    pub fn add(&self, other: &Value) -> Value {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Value::Int(a + b),
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => Value::Float(a + b),
                _ => Value::Null,
            },
        }
    }

    /// Subtract two numeric values.
    pub fn sub(&self, other: &Value) -> Value {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Value::Int(a - b),
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => Value::Float(a - b),
                _ => Value::Null,
            },
        }
    }

    /// Multiply two numeric values.
    pub fn mul(&self, other: &Value) -> Value {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Value::Int(a * b),
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => Value::Float(a * b),
                _ => Value::Null,
            },
        }
    }

    /// Divide two numeric values (always produces a float; division by zero
    /// yields NULL like SQL).
    pub fn div(&self, other: &Value) -> Value {
        match (self.as_f64(), other.as_f64()) {
            (Some(a), Some(b)) if b != 0.0 => Value::Float(a / b),
            _ => Value::Null,
        }
    }
}

/// Exact comparison of an `i64` against an `f64`.
///
/// Casting the integer to `f64` loses precision beyond 2^53, which would
/// make `Value`'s equivalence non-transitive (two distinct big integers both
/// "equal" to their shared rounded double). Instead the float is compared
/// against the integer at full precision; ties between mathematically equal
/// values fall back to `total_cmp` so `-0.0` keeps its place just below
/// `+0.0`, consistent with the `Float`/`Float` ordering.
fn cmp_int_float(i: i64, f: f64) -> Ordering {
    if f.is_nan() {
        // NaNs never equal a real number; order them like total_cmp does.
        return (i as f64).total_cmp(&f);
    }
    // 2^63 and -2^63 are exactly representable: every float at or beyond
    // them lies outside (or at the edge of) the i64 range.
    if f >= 9_223_372_036_854_775_808.0 {
        return Ordering::Less;
    }
    if f < -9_223_372_036_854_775_808.0 {
        return Ordering::Greater;
    }
    let t = f.trunc(); // integral, in i64 range → exact cast
    match i.cmp(&(t as i64)) {
        Ordering::Equal if f > t => Ordering::Less,
        Ordering::Equal if f < t => Ordering::Greater,
        // Mathematically equal; refine only the -0.0 / +0.0 distinction.
        Ordering::Equal => (i as f64).total_cmp(&f),
        other => other,
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => cmp_int_float(*a, *b),
            (Float(a), Int(b)) => cmp_int_float(*b, *a).reverse(),
            (Str(a), Str(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

/// `Value` is its own hash-key representation: `Hash` is consistent with the
/// exact, total-order `Eq` above, so the physical hash operators (group-by,
/// hash join, duplicate elimination) key their tables on `Value` rows
/// directly. A `Float` can only equal an `Int` when it is integer-valued and
/// within the `i64` range, so exactly those floats hash via their `i64`
/// value alongside `Int`s; every other float hashes via its bit pattern.
/// This keeps equal values hashing equal without clustering large integer
/// keys that share one `f64` image into a single bucket.
impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            Value::Int(i) => {
                2u8.hash(state);
                i.hash(state);
            }
            Value::Float(f) => {
                if f.trunc() == *f
                    && (-9_223_372_036_854_775_808.0..9_223_372_036_854_775_808.0).contains(f)
                {
                    2u8.hash(state);
                    (*f as i64).hash(state);
                } else {
                    3u8.hash(state);
                    f.to_bits().hash(state);
                }
            }
            Value::Str(s) => {
                4u8.hash(state);
                s.hash(state);
            }
        }
    }
}

// Tag bytes of the canonical binary encoding. Part of the on-disk format
// (snapshots and the mutation WAL), so these values must never be reused or
// renumbered — add new tags instead.
const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_STR: u8 = 3;
const TAG_BOOL_FALSE: u8 = 4;
const TAG_BOOL_TRUE: u8 = 5;

impl Value {
    /// Append the canonical binary encoding of this value to `out`.
    ///
    /// The encoding is exact: floats are written as their raw IEEE-754 bit
    /// pattern, so `NaN` payloads and `-0.0` survive a round trip and the
    /// decoded value keeps the same position in `Value`'s total order and the
    /// same hash as the original (see
    /// [`Value::decode_from`]). Integers are little-endian `i64`, strings are
    /// a `u32` byte length followed by UTF-8 bytes.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Value::Null => out.push(TAG_NULL),
            Value::Int(i) => {
                out.push(TAG_INT);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Float(f) => {
                out.push(TAG_FLOAT);
                // Raw bits, not a numeric cast: NaN payloads and the sign of
                // zero are part of the value's identity under `total_cmp`.
                out.extend_from_slice(&f.to_bits().to_le_bytes());
            }
            Value::Str(s) => {
                out.push(TAG_STR);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Bool(b) => out.push(if *b { TAG_BOOL_TRUE } else { TAG_BOOL_FALSE }),
        }
    }

    /// Decode one value from the front of `bytes`, returning the value and
    /// the number of bytes consumed, or `None` when the bytes are truncated
    /// or malformed (unknown tag, invalid UTF-8).
    pub fn decode_from(bytes: &[u8]) -> Option<(Value, usize)> {
        let (&tag, rest) = bytes.split_first()?;
        match tag {
            TAG_NULL => Some((Value::Null, 1)),
            TAG_INT => {
                let raw: [u8; 8] = rest.get(..8)?.try_into().ok()?;
                Some((Value::Int(i64::from_le_bytes(raw)), 9))
            }
            TAG_FLOAT => {
                let raw: [u8; 8] = rest.get(..8)?.try_into().ok()?;
                Some((Value::Float(f64::from_bits(u64::from_le_bytes(raw))), 9))
            }
            TAG_STR => {
                let raw: [u8; 4] = rest.get(..4)?.try_into().ok()?;
                let len = u32::from_le_bytes(raw) as usize;
                let s = std::str::from_utf8(rest.get(4..4 + len)?).ok()?;
                Some((Value::Str(s.to_string()), 1 + 4 + len))
            }
            TAG_BOOL_FALSE => Some((Value::Bool(false), 1)),
            TAG_BOOL_TRUE => Some((Value::Bool(true), 1)),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn int_float_cross_type_ordering() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert!(Value::Int(3) < Value::Float(3.5));
        assert!(Value::Float(2.9) < Value::Int(3));
    }

    #[test]
    fn null_sorts_first() {
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Null < Value::Str(String::new()));
        assert!(Value::Null < Value::Bool(false));
    }

    #[test]
    fn string_ordering_is_lexicographic() {
        assert!(Value::from("AL") < Value::from("CA"));
        assert!(Value::from("CA") < Value::from("DE"));
        assert!(Value::from("NY") > Value::from("DE"));
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(hash_of(&Value::Int(7)), hash_of(&Value::Float(7.0)));
        assert_eq!(hash_of(&Value::from("x")), hash_of(&Value::from("x")));
    }

    #[test]
    fn arithmetic_preserves_int_and_promotes_float() {
        assert_eq!(Value::Int(2).add(&Value::Int(3)), Value::Int(5));
        assert_eq!(Value::Int(2).add(&Value::Float(3.5)), Value::Float(5.5));
        assert_eq!(Value::Int(10).sub(&Value::Int(4)), Value::Int(6));
        assert_eq!(Value::Int(3).mul(&Value::Int(4)), Value::Int(12));
        assert_eq!(Value::Int(7).div(&Value::Int(2)), Value::Float(3.5));
    }

    #[test]
    fn division_by_zero_is_null() {
        assert!(Value::Int(1).div(&Value::Int(0)).is_null());
    }

    #[test]
    fn arithmetic_with_null_is_null() {
        assert!(Value::Null.add(&Value::Int(1)).is_null());
        assert!(Value::Int(1).mul(&Value::Null).is_null());
    }

    #[test]
    fn truthiness() {
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Int(0).as_bool(), Some(false));
        assert_eq!(Value::Null.as_bool(), None);
    }

    #[test]
    fn display_round_trips_simple_values() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::from("CA").to_string(), "CA");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn ordering_is_a_lawful_total_order_on_mixed_samples() {
        // Antisymmetry + transitivity over a sample set spanning the 2^53
        // precision boundary, ±0.0, infinities and cross-type pairs.
        const BIG: i64 = 1 << 53;
        let samples = vec![
            Value::Null,
            Value::Bool(false),
            Value::Int(-5),
            Value::Int(0),
            Value::Int(3),
            Value::Int(BIG),
            Value::Int(BIG + 1),
            Value::Float(-0.0),
            Value::Float(0.0),
            Value::Float(3.0),
            Value::Float(3.5),
            Value::Float(BIG as f64),
            Value::Float(f64::NEG_INFINITY),
            Value::Float(f64::INFINITY),
            Value::from("CA"),
        ];
        for a in &samples {
            for b in &samples {
                assert_eq!(a.cmp(b), b.cmp(a).reverse(), "antisymmetry: {a:?} vs {b:?}");
                for c in &samples {
                    if a <= b && b <= c {
                        assert!(a <= c, "transitivity: {a:?} <= {b:?} <= {c:?}");
                    }
                    if a == b && b == c {
                        assert!(a == c, "eq transitivity: {a:?}, {b:?}, {c:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn int_float_comparison_is_exact_beyond_f64_precision() {
        const BIG: i64 = 1 << 53; // BIG and BIG + 1 share one f64 image
        assert_ne!(Value::Int(BIG), Value::Int(BIG + 1));
        assert_eq!(Value::Int(BIG), Value::Float(BIG as f64));
        // The rounded double equals BIG exactly, so BIG + 1 is greater.
        assert!(Value::Int(BIG + 1) > Value::Float(BIG as f64));
        assert!(Value::Float(BIG as f64) < Value::Int(BIG + 1));
        // Fractional and out-of-range floats.
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Int(-2) > Value::Float(-2.5));
        assert!(Value::Int(i64::MAX) < Value::Float(1e19));
        assert!(Value::Int(i64::MIN) > Value::Float(-1e19));
        // -0.0 stays just below +0.0, like the Float/Float total order.
        assert!(Value::Float(-0.0) < Value::Int(0));
        assert_eq!(Value::Int(0), Value::Float(0.0));
    }

    #[test]
    fn hash_stays_consistent_with_exact_equality() {
        const BIG: i64 = 1 << 53;
        // Equal values hash equal; unequal big ints collide in the hash but
        // a HashSet (which re-checks Eq) still separates them.
        assert_eq!(
            hash_of(&Value::Int(BIG)),
            hash_of(&Value::Float(BIG as f64))
        );
        // Large integers sharing one f64 image no longer share a bucket.
        assert_ne!(hash_of(&Value::Int(BIG)), hash_of(&Value::Int(BIG + 1)));
        use std::collections::HashSet;
        let distinct: HashSet<Value> = [
            Value::Int(BIG),
            Value::Int(BIG + 1),
            Value::Float(BIG as f64), // == Int(BIG)
        ]
        .into_iter()
        .collect();
        assert_eq!(distinct.len(), 2);
    }

    fn round_trip(v: &Value) -> Value {
        let mut buf = Vec::new();
        v.encode_into(&mut buf);
        let (decoded, used) = Value::decode_from(&buf).expect("decodable");
        assert_eq!(used, buf.len(), "{v:?} left trailing bytes");
        decoded
    }

    #[test]
    fn encode_decode_round_trips_every_variant() {
        for v in [
            Value::Null,
            Value::Int(0),
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::Float(3.25),
            Value::from(""),
            Value::from("héllo, wörld"),
            Value::Bool(true),
            Value::Bool(false),
        ] {
            let d = round_trip(&v);
            assert_eq!(v.cmp(&d), Ordering::Equal, "{v:?} changed under codec");
            assert_eq!(hash_of(&v), hash_of(&d), "{v:?} hash changed under codec");
        }
    }

    #[test]
    fn float_round_trip_is_bit_exact_for_nan_and_negative_zero() {
        // NaN: not equal to itself under `==` semantics elsewhere, but
        // `Value`'s total order treats it as a point; the codec must
        // preserve the exact bit pattern (payload included), keeping both
        // the total order position and the hash.
        let nan = Value::Float(f64::NAN);
        let Value::Float(back) = round_trip(&nan) else {
            panic!("NaN decoded to a different variant");
        };
        assert_eq!(back.to_bits(), f64::NAN.to_bits());
        assert_eq!(nan.cmp(&Value::Float(back)), Ordering::Equal);
        assert_eq!(hash_of(&nan), hash_of(&Value::Float(back)));
        // A NaN with a non-default payload round-trips bit-exactly too.
        let weird = f64::from_bits(f64::NAN.to_bits() | 0xdead);
        let Value::Float(back) = round_trip(&Value::Float(weird)) else {
            panic!("payload NaN decoded to a different variant");
        };
        assert_eq!(back.to_bits(), weird.to_bits());

        // -0.0 and +0.0 are distinct points of the total order (and -0.0
        // equals Int(0) only via +0.0's slot); the codec must not collapse
        // them through a numeric cast.
        let neg = round_trip(&Value::Float(-0.0));
        let pos = round_trip(&Value::Float(0.0));
        let Value::Float(n) = &neg else {
            unreachable!()
        };
        assert!(n.is_sign_negative(), "-0.0 lost its sign");
        assert_eq!(neg.cmp(&pos), Ordering::Less, "-0.0 must stay below +0.0");
        assert_eq!(pos, Value::Int(0));
        assert_ne!(neg, Value::Int(0));
        // Infinities survive as well.
        for f in [f64::INFINITY, f64::NEG_INFINITY] {
            let Value::Float(back) = round_trip(&Value::Float(f)) else {
                panic!("infinity decoded to a different variant");
            };
            assert_eq!(back.to_bits(), f.to_bits());
        }
    }

    #[test]
    fn decode_rejects_truncated_and_malformed_bytes() {
        let mut buf = Vec::new();
        Value::from("abcdef").encode_into(&mut buf);
        for cut in 0..buf.len() {
            assert!(
                Value::decode_from(&buf[..cut]).is_none(),
                "truncation at {cut} went unnoticed"
            );
        }
        assert!(
            Value::decode_from(&[0xff]).is_none(),
            "unknown tag accepted"
        );
        assert!(Value::decode_from(&[]).is_none());
        // Invalid UTF-8 behind a string tag is rejected, not replaced.
        let mut bad = vec![3u8];
        bad.extend_from_slice(&2u32.to_le_bytes());
        bad.extend_from_slice(&[0xc3, 0x28]);
        assert!(Value::decode_from(&bad).is_none());
    }

    #[test]
    fn decode_reports_consumed_length_for_concatenated_values() {
        let mut buf = Vec::new();
        let vals = [
            Value::Int(7),
            Value::from("xy"),
            Value::Null,
            Value::Bool(true),
        ];
        for v in &vals {
            v.encode_into(&mut buf);
        }
        let mut off = 0;
        for v in &vals {
            let (d, used) = Value::decode_from(&buf[off..]).unwrap();
            assert_eq!(&d, v);
            off += used;
        }
        assert_eq!(off, buf.len());
    }

    #[test]
    fn data_type_reporting() {
        assert_eq!(Value::Int(1).data_type(), Some(DataType::Int));
        assert_eq!(Value::Float(1.0).data_type(), Some(DataType::Float));
        assert_eq!(Value::from("a").data_type(), Some(DataType::Str));
        assert_eq!(Value::Bool(true).data_type(), Some(DataType::Bool));
        assert_eq!(Value::Null.data_type(), None);
    }
}
