//! Base tables: a relation plus its physical design artifacts (zone maps,
//! ordered indexes, columnar chunks, statistics) and a mutation API.
//!
//! # Epochs and derived-artifact invalidation
//!
//! A table's row store is the single source of truth; everything else — the
//! zone map, ordered indexes, the columnar chunk projection and the table
//! statistics — is *derived*. Every mutation ([`Table::append_rows`],
//! [`Table::delete_where`]) and every physical-design change
//! ([`Table::build_zone_map`], [`Table::create_index`]) advances the table's
//! **epoch** through the single `Table::invalidate_derived` helper, so no
//! mutator can ever forget to invalidate a cache. Epochs are drawn from one
//! process-wide monotone counter, so two tables (or two copy-on-write forks
//! of one table) that diverged can never reuse each other's epoch values —
//! equal epochs always mean identical content. Derived artifacts are rebuilt
//! lazily: each cached artifact is stamped with the epoch (and row count) it
//! was built at, and an accessor that observes a newer table epoch refreshes
//! the artifact before handing it out. For append-only epoch gaps the
//! refresh is *incremental* — zone maps grow new tail blocks, columnar
//! projections grow new tail chunks and indexes absorb the new row ids —
//! while deletes and block-size changes force a full rebuild (row ids
//! shift).
//!
//! Next to the all-encompassing `epoch` the table keeps a **data epoch**
//! ([`Table::data_epoch`]) that only advances when row *content* changes
//! (append / delete), not on physical-design changes: provenance sketches
//! describe data, so the catalog layer stamps and validates them against the
//! data epoch — building an index must not strand every stored sketch.
//!
//! Accessors hand out `Arc` snapshots, so a scan that fetched an artifact
//! keeps a consistent view even if the table is mutated (behind copy-on-write
//! cloning) afterwards; the execution layer additionally re-validates the
//! table epoch before trusting previously fetched row-id lists or chunks.

use crate::columnar::ColumnarChunks;
use crate::database::StorageError;
use crate::index::OrderedIndex;
use crate::relation::{Relation, Row};
use crate::schema::Schema;
use crate::stats::TableStats;
use crate::value::Value;
use crate::zonemap::{ZoneMap, DEFAULT_BLOCK_SIZE};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pbds_sync::TrackedRwLock;

/// Process-wide epoch source: every invalidation (and every fresh table)
/// draws the next value, so epochs are unique across tables and
/// copy-on-write forks — equal epochs imply identical content.
static EPOCH_SOURCE: AtomicU64 = AtomicU64::new(1);

fn next_epoch() -> u64 {
    EPOCH_SOURCE.fetch_add(1, Ordering::Relaxed)
}

/// What a mutation did to the table; decides whether derived artifacts can
/// be extended incrementally or must be rebuilt, and whether the *data*
/// epoch (which provenance sketches are validated against) advances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationKind {
    /// Rows were appended at the tail; derived artifacts stamped at the
    /// previous epoch can be *extended* with the new rows.
    Append,
    /// Rows were removed: row ids shifted, derived artifacts must be rebuilt
    /// from scratch.
    Delete,
    /// The physical design changed (block size, new index request): derived
    /// artifacts rebuild, but row content — and therefore the data epoch —
    /// is untouched.
    Design,
}

/// A derived artifact plus the table state (epoch, row count) it reflects.
#[derive(Debug, Clone)]
struct Stamped<T> {
    epoch: u64,
    rows: usize,
    value: T,
}

/// Lazily maintained derived artifacts, all epoch-stamped.
#[derive(Debug, Clone, Default)]
struct DerivedCaches {
    stats: Option<Stamped<Arc<TableStats>>>,
    zone_map: Option<Stamped<Arc<ZoneMap>>>,
    columnar: Option<Stamped<Arc<ColumnarChunks>>>,
    indexes: HashMap<String, Stamped<Arc<OrderedIndex>>>,
}

/// An owned, self-contained image of a table's durable state: everything a
/// snapshot must persist to reconstruct the table ([`Table::restore`]), and
/// nothing more — derived artifacts (zone maps, indexes, columnar chunks,
/// statistics) are *not* part of the image; they are re-declared here
/// (`with_zone_map`, `index_columns`, `block_size`) and rebuilt lazily
/// through the normal epoch-stamped cache machinery after a restore.
#[derive(Debug, Clone)]
pub struct TableImage {
    /// Table name.
    pub name: String,
    /// Table schema.
    pub schema: Schema,
    /// All rows, in storage order.
    pub rows: Vec<Row>,
    /// The table's epoch at image time (see [`Table::epoch`]).
    pub epoch: u64,
    /// The table's data epoch at image time (see [`Table::data_epoch`]).
    pub data_epoch: u64,
    /// Zone-map / columnar block size.
    pub block_size: usize,
    /// Whether a zone map is maintained.
    pub with_zone_map: bool,
    /// Columns with a maintained ordered index.
    pub index_columns: Vec<String>,
}

/// A named base table with epoch-invalidated physical design artifacts.
#[derive(Debug)]
pub struct Table {
    name: String,
    schema: Schema,
    rows: Vec<Row>,
    /// Version of the table as a whole (data *and* physical design); bumped
    /// by `invalidate_derived` on every mutation. Drawn from the process-wide
    /// [`EPOCH_SOURCE`], so values are never reused across forks.
    epoch: u64,
    /// Version of the row *content* only: advances on append/delete, not on
    /// design changes. Provenance sketches are stamped with this.
    data_epoch: u64,
    /// Epoch of the last *structural* mutation. Artifacts stamped at an epoch
    /// `>= rebuild_epoch` saw every row that still exists at its original
    /// position, so an append-only gap can be closed incrementally.
    rebuild_epoch: u64,
    block_size: usize,
    /// Whether a zone map is requested/maintained for this table.
    with_zone_map: bool,
    /// Columns with a requested/maintained ordered index.
    index_columns: Vec<String>,
    derived: TrackedRwLock<DerivedCaches>,
}

impl Clone for Table {
    fn clone(&self) -> Self {
        Table {
            name: self.name.clone(),
            schema: self.schema.clone(),
            rows: self.rows.clone(),
            epoch: self.epoch,
            data_epoch: self.data_epoch,
            rebuild_epoch: self.rebuild_epoch,
            block_size: self.block_size,
            with_zone_map: self.with_zone_map,
            index_columns: self.index_columns.clone(),
            // Clones share the already built artifacts via `Arc`.
            derived: TrackedRwLock::new("table.derived", self.derived.read().clone()),
        }
    }
}

impl Table {
    /// Create a table from a schema and rows. Statistics, zone maps and
    /// indexes are built on demand; request the latter via
    /// [`Table::build_zone_map`] and [`Table::create_index`].
    pub fn new(name: impl Into<String>, schema: Schema, rows: Vec<Row>) -> Self {
        assert!(
            rows.iter().all(|r| r.len() == schema.arity()),
            "Table::new: row arity does not match schema arity {}",
            schema.arity()
        );
        let epoch = next_epoch();
        Table {
            name: name.into(),
            schema,
            rows,
            epoch,
            data_epoch: epoch,
            rebuild_epoch: epoch,
            block_size: DEFAULT_BLOCK_SIZE,
            with_zone_map: false,
            index_columns: Vec::new(),
            derived: TrackedRwLock::new("table.derived", DerivedCaches::default()),
        }
    }

    /// Reconstruct a table from a persisted [`TableImage`], keeping the
    /// epochs it was persisted with.
    ///
    /// Restored epochs must stay authoritative: a provenance-sketch catalog
    /// imported alongside the snapshot validates its entries against these
    /// exact values. To keep the global invariant that equal epochs imply
    /// identical content, the process-wide epoch source is advanced past
    /// every restored epoch, so no *future* mutation (in this process) can
    /// ever mint an epoch a restored table already carries.
    pub fn restore(image: TableImage) -> Self {
        assert!(
            image.rows.iter().all(|r| r.len() == image.schema.arity()),
            "Table::restore: row arity does not match schema arity {}",
            image.schema.arity()
        );
        assert!(image.block_size > 0, "block size must be positive");
        // `epoch >= data_epoch` holds for every live table; tolerate images
        // that violate it (hand-crafted or corrupt) by flooring on both.
        EPOCH_SOURCE.fetch_max(
            image.epoch.max(image.data_epoch).saturating_add(1),
            Ordering::Relaxed,
        );
        Table {
            name: image.name,
            schema: image.schema,
            rows: image.rows,
            epoch: image.epoch,
            data_epoch: image.data_epoch,
            // Derived caches start empty in a fresh process; everything
            // rebuilds from scratch on first access.
            rebuild_epoch: image.epoch,
            block_size: image.block_size,
            with_zone_map: image.with_zone_map,
            index_columns: image.index_columns,
            derived: TrackedRwLock::new("table.derived", DerivedCaches::default()),
        }
    }

    /// An owned image of the table's durable state (clones the rows). The
    /// inverse of [`Table::restore`].
    pub fn image(&self) -> TableImage {
        TableImage {
            name: self.name.clone(),
            schema: self.schema.clone(),
            rows: self.rows.clone(),
            epoch: self.epoch,
            data_epoch: self.data_epoch,
            block_size: self.block_size,
            with_zone_map: self.with_zone_map,
            index_columns: self.index_columns.clone(),
        }
    }

    /// Whether this table maintains a zone map (without forcing it to be
    /// built, unlike [`Table::zone_map`]).
    pub fn has_zone_map(&self) -> bool {
        self.with_zone_map
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// All rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table's current epoch (data *and* physical design). Advances on
    /// every mutation or design change; derived artifacts record the epoch
    /// they were built at so staleness is checkable.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The table's current *data* epoch: advances on append/delete only,
    /// never on physical-design changes. Provenance sketches describe data,
    /// so the catalog stamps and validates stored sketches against this —
    /// building an index does not invalidate them.
    pub fn data_epoch(&self) -> u64 {
        self.data_epoch
    }

    /// The single invalidation point for all derived caches: draws a fresh
    /// globally unique epoch and, depending on the mutation kind, advances
    /// the data epoch (append/delete) and the rebuild watermark
    /// (delete/design). Every mutator — [`Table::append_rows`],
    /// [`Table::delete_where`], [`Table::build_zone_map`],
    /// [`Table::create_index`] and any future mutation — must route through
    /// here, so no cache can be missed. Returns the new epoch.
    fn invalidate_derived(&mut self, kind: MutationKind) -> u64 {
        self.epoch = next_epoch();
        match kind {
            MutationKind::Append => self.data_epoch = self.epoch,
            MutationKind::Delete => {
                self.data_epoch = self.epoch;
                self.rebuild_epoch = self.epoch;
            }
            MutationKind::Design => self.rebuild_epoch = self.epoch,
        }
        self.epoch
    }

    /// Append rows at the tail of the table. Every row's arity is validated
    /// up front (in release builds too); on any mismatch nothing is appended
    /// and a [`StorageError::ArityMismatch`] is returned. Returns the new
    /// epoch. Appending an empty batch is a no-op that keeps the epoch.
    pub fn append_rows(&mut self, rows: Vec<Row>) -> Result<u64, StorageError> {
        let expected = self.schema.arity();
        for row in &rows {
            if row.len() != expected {
                return Err(StorageError::ArityMismatch {
                    context: format!("append to table {}", self.name),
                    expected,
                    got: row.len(),
                });
            }
        }
        if rows.is_empty() {
            return Ok(self.epoch);
        }
        self.rows.extend(rows);
        Ok(self.invalidate_derived(MutationKind::Append))
    }

    /// Append several row batches at once through a **single** epoch
    /// advance — the multi-delta `invalidate_derived` path group commit
    /// relies on. Semantically identical to calling [`Table::append_rows`]
    /// once per batch (same validation: *every* row of *every* batch is
    /// arity-checked before anything is appended, so the whole call is
    /// atomic), but derived caches are invalidated once instead of once per
    /// batch, and sketch maintenance sees one combined append delta. Returns
    /// the new epoch; an all-empty set of batches keeps the epoch.
    pub fn append_row_batches(&mut self, batches: Vec<Vec<Row>>) -> Result<u64, StorageError> {
        let expected = self.schema.arity();
        for row in batches.iter().flatten() {
            if row.len() != expected {
                return Err(StorageError::ArityMismatch {
                    context: format!("append to table {}", self.name),
                    expected,
                    got: row.len(),
                });
            }
        }
        let total: usize = batches.iter().map(Vec::len).sum();
        if total == 0 {
            return Ok(self.epoch);
        }
        self.rows.reserve(total);
        for batch in batches {
            self.rows.extend(batch);
        }
        Ok(self.invalidate_derived(MutationKind::Append))
    }

    /// Delete every row for which `pred` returns true. `pred` is called once
    /// per row in storage order. Returns the number of rows deleted; when any
    /// row is deleted the epoch advances structurally (row ids shift, so all
    /// derived artifacts rebuild on next access).
    pub fn delete_where(&mut self, mut pred: impl FnMut(&Row) -> bool) -> usize {
        let before = self.rows.len();
        self.rows.retain(|r| !pred(r));
        let deleted = before - self.rows.len();
        if deleted > 0 {
            self.invalidate_derived(MutationKind::Delete);
        }
        deleted
    }

    /// Precomputed table statistics (recomputed lazily after mutations).
    pub fn stats(&self) -> Arc<TableStats> {
        {
            let g = self.derived.read();
            if let Some(s) = g.stats.as_ref().filter(|s| s.epoch == self.epoch) {
                return s.value.clone();
            }
        }
        let mut g = self.derived.write();
        if let Some(s) = g.stats.as_ref().filter(|s| s.epoch == self.epoch) {
            return s.value.clone();
        }
        // Statistics always recompute in full: the distinct-value count
        // cannot be extended without retaining the whole value set.
        let value = Arc::new(TableStats::compute(&self.schema, &self.rows));
        g.stats = Some(self.stamp(value.clone()));
        value
    }

    /// The zone map, if this table maintains one. Lazily (re)built: after an
    /// append-only epoch gap the existing map is extended with tail blocks,
    /// after a structural change it is rebuilt.
    pub fn zone_map(&self) -> Option<Arc<ZoneMap>> {
        if !self.with_zone_map {
            return None;
        }
        {
            let g = self.derived.read();
            if let Some(s) = g.zone_map.as_ref().filter(|s| s.epoch == self.epoch) {
                return Some(s.value.clone());
            }
        }
        let mut g = self.derived.write();
        match g.zone_map.take() {
            Some(s) if s.epoch == self.epoch => {
                let value = s.value.clone();
                g.zone_map = Some(s);
                Some(value)
            }
            Some(s) if self.append_only_gap(&s) => {
                let mut arc = s.value;
                Arc::make_mut(&mut arc).extend(&self.schema, &self.rows, s.rows);
                g.zone_map = Some(self.stamp(arc.clone()));
                Some(arc)
            }
            _ => {
                let arc = Arc::new(ZoneMap::build(&self.schema, &self.rows, self.block_size));
                g.zone_map = Some(self.stamp(arc.clone()));
                Some(arc)
            }
        }
    }

    /// The block size used for zone maps and columnar chunks.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Request (or re-request with a different block size) a zone map.
    /// Structural invalidation: the cached columnar projection must stay
    /// block-aligned, so it rebuilds too.
    pub fn build_zone_map(&mut self, block_size: usize) {
        assert!(block_size > 0, "block size must be positive");
        self.with_zone_map = true;
        self.block_size = block_size;
        self.invalidate_derived(MutationKind::Design);
    }

    /// The columnar chunk projection of the table (one chunk per zone-map
    /// block), built lazily and cached; extended with tail chunks after
    /// appends, rebuilt after structural changes.
    pub fn columnar_chunks(&self) -> Arc<ColumnarChunks> {
        {
            let g = self.derived.read();
            if let Some(s) = g.columnar.as_ref().filter(|s| s.epoch == self.epoch) {
                return s.value.clone();
            }
        }
        let mut g = self.derived.write();
        match g.columnar.take() {
            Some(s) if s.epoch == self.epoch => {
                let value = s.value.clone();
                g.columnar = Some(s);
                value
            }
            Some(s) if self.append_only_gap(&s) && s.value.block_size() == self.block_size => {
                let mut arc = s.value;
                Arc::make_mut(&mut arc).extend(&self.schema, &self.rows, s.rows);
                g.columnar = Some(self.stamp(arc.clone()));
                arc
            }
            _ => {
                let arc = Arc::new(ColumnarChunks::build(
                    &self.schema,
                    &self.rows,
                    self.block_size,
                ));
                g.columnar = Some(self.stamp(arc.clone()));
                arc
            }
        }
    }

    /// Request an ordered index on `column`. Returns false if the column does
    /// not exist. The index is built lazily on first use and maintained
    /// across mutations like every other derived artifact.
    pub fn create_index(&mut self, column: &str) -> bool {
        if self.schema.index_of(column).is_none() {
            return false;
        }
        if self.index_columns.iter().any(|c| c == column) {
            return true; // already maintained: a true no-op
        }
        self.index_columns.push(column.to_string());
        self.invalidate_derived(MutationKind::Design);
        true
    }

    /// The index on `column`, if one is maintained. Lazily (re)built; after
    /// an append-only gap the new row ids are inserted incrementally.
    pub fn index_on(&self, column: &str) -> Option<Arc<OrderedIndex>> {
        if !self.index_columns.iter().any(|c| c == column) {
            return None;
        }
        {
            let g = self.derived.read();
            if let Some(s) = g.indexes.get(column).filter(|s| s.epoch == self.epoch) {
                return Some(s.value.clone());
            }
        }
        let mut g = self.derived.write();
        match g.indexes.remove(column) {
            Some(s) if s.epoch == self.epoch => {
                let value = s.value.clone();
                g.indexes.insert(column.to_string(), s);
                Some(value)
            }
            Some(s) if self.append_only_gap(&s) => {
                let mut arc = s.value;
                Arc::make_mut(&mut arc).extend(&self.schema, &self.rows, s.rows);
                g.indexes
                    .insert(column.to_string(), self.stamp(arc.clone()));
                Some(arc)
            }
            _ => {
                let arc = Arc::new(OrderedIndex::build(&self.schema, &self.rows, column)?);
                g.indexes
                    .insert(column.to_string(), self.stamp(arc.clone()));
                Some(arc)
            }
        }
    }

    /// Names of indexed columns.
    pub fn indexed_columns(&self) -> Vec<&str> {
        self.index_columns.iter().map(|s| s.as_str()).collect()
    }

    /// Stamp an artifact with the current epoch and row count.
    fn stamp<T>(&self, value: T) -> Stamped<T> {
        Stamped {
            epoch: self.epoch,
            rows: self.rows.len(),
            value,
        }
    }

    /// True when the gap between the artifact's stamp and the current epoch
    /// consists of appends only, so the artifact can be extended in place.
    fn append_only_gap<T>(&self, s: &Stamped<T>) -> bool {
        s.epoch >= self.rebuild_epoch && s.rows <= self.rows.len()
    }

    /// Values of one column (used to build partitions and histograms).
    ///
    /// Clones every value; prefer [`Table::column_iter`] when a borrowed
    /// walk suffices.
    pub fn column_values(&self, column: &str) -> Option<Vec<Value>> {
        let idx = self.schema.index_of(column)?;
        Some(self.rows.iter().map(|r| r[idx].clone()).collect())
    }

    /// Borrowing iterator over one column's values (no clones).
    pub fn column_iter(&self, column: &str) -> Option<impl Iterator<Item = &Value> + Clone + '_> {
        let idx = self.schema.index_of(column)?;
        Some(self.rows.iter().map(move |r| &r[idx]))
    }

    /// View the table as a plain relation (clones the rows).
    pub fn to_relation(&self) -> Relation {
        Relation::new(self.schema.clone(), self.rows.clone())
    }
}

/// Builder for tables that finalizes physical design in one go.
#[derive(Debug)]
pub struct TableBuilder {
    name: String,
    schema: Schema,
    rows: Vec<Row>,
    block_size: usize,
    index_columns: Vec<String>,
    with_zone_map: bool,
}

impl TableBuilder {
    /// Start building a table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        TableBuilder {
            name: name.into(),
            schema,
            rows: Vec::new(),
            block_size: DEFAULT_BLOCK_SIZE,
            index_columns: Vec::new(),
            with_zone_map: true,
        }
    }

    /// Append a row. Panics on an arity mismatch (in release builds too —
    /// a wrong-arity row must never corrupt the columnar build downstream);
    /// use [`TableBuilder::try_push`] to handle the mismatch as an error.
    pub fn push(&mut self, row: Row) -> &mut Self {
        self.try_push(row)
            .expect("TableBuilder::push: row arity does not match the schema")
    }

    /// Append a row, returning [`StorageError::ArityMismatch`] when the row
    /// does not match the schema's arity.
    pub fn try_push(&mut self, row: Row) -> Result<&mut Self, StorageError> {
        if row.len() != self.schema.arity() {
            return Err(StorageError::ArityMismatch {
                context: format!("build of table {}", self.name),
                expected: self.schema.arity(),
                got: row.len(),
            });
        }
        self.rows.push(row);
        Ok(self)
    }

    /// Append many rows (each validated like [`TableBuilder::push`]).
    pub fn extend(&mut self, rows: impl IntoIterator<Item = Row>) -> &mut Self {
        for row in rows {
            self.push(row);
        }
        self
    }

    /// Set the zone-map block size.
    pub fn block_size(&mut self, size: usize) -> &mut Self {
        self.block_size = size;
        self
    }

    /// Request an ordered index on a column.
    pub fn index(&mut self, column: &str) -> &mut Self {
        self.index_columns.push(column.to_string());
        self
    }

    /// Disable zone-map construction (used by the columnar engine profile).
    pub fn without_zone_map(&mut self) -> &mut Self {
        self.with_zone_map = false;
        self
    }

    /// Finish building: registers the requested physical design (statistics,
    /// zone maps and indexes materialize lazily on first use).
    pub fn build(&mut self) -> Table {
        let mut table = Table::new(
            std::mem::take(&mut self.name),
            self.schema.clone(),
            std::mem::take(&mut self.rows),
        );
        table.block_size = self.block_size;
        if self.with_zone_map {
            table.build_zone_map(self.block_size);
        }
        for col in &self.index_columns {
            table.create_index(col);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn build_table(n: usize) -> Table {
        let schema = Schema::from_pairs(&[("id", DataType::Int), ("grp", DataType::Int)]);
        let mut b = TableBuilder::new("t", schema);
        b.block_size(100).index("id");
        for i in 0..n {
            b.push(vec![Value::Int(i as i64), Value::Int((i % 7) as i64)]);
        }
        b.build()
    }

    #[test]
    fn builder_creates_stats_zonemaps_and_indexes() {
        let t = build_table(1000);
        assert_eq!(t.len(), 1000);
        assert_eq!(t.stats().column("id").unwrap().max, Some(Value::Int(999)));
        assert_eq!(t.zone_map().unwrap().num_blocks(), 10);
        assert!(t.index_on("id").is_some());
        assert!(t.index_on("grp").is_none());
    }

    #[test]
    fn without_zone_map_profile() {
        let schema = Schema::from_pairs(&[("a", DataType::Int)]);
        let mut b = TableBuilder::new("t", schema);
        b.without_zone_map().push(vec![Value::Int(1)]);
        let t = b.build();
        assert!(t.zone_map().is_none());
    }

    #[test]
    fn column_values_extraction() {
        let t = build_table(10);
        let vals = t.column_values("grp").unwrap();
        assert_eq!(vals.len(), 10);
        assert!(t.column_values("nope").is_none());
    }

    #[test]
    fn to_relation_round_trip() {
        let t = build_table(5);
        let r = t.to_relation();
        assert_eq!(r.len(), 5);
        assert_eq!(r.schema(), t.schema());
    }

    #[test]
    fn append_bumps_epoch_and_extends_artifacts() {
        let mut t = build_table(250);
        // Materialize every artifact at the current epoch.
        let zm0 = t.zone_map().unwrap();
        let idx0 = t.index_on("id").unwrap();
        let ch0 = t.columnar_chunks();
        let st0 = t.stats();
        let e0 = t.epoch();
        assert_eq!(zm0.num_blocks(), 3);

        let rows: Vec<Row> = (250..420)
            .map(|i| vec![Value::Int(i), Value::Int(i % 7)])
            .collect();
        let e1 = t.append_rows(rows).unwrap();
        assert!(e1 > e0);

        // Refreshed artifacts cover the appended tail and agree with a
        // from-scratch build.
        let zm1 = t.zone_map().unwrap();
        assert_eq!(zm1.num_blocks(), 5);
        let fresh = ZoneMap::build(t.schema(), t.rows(), t.block_size());
        for (a, b) in zm1.blocks().iter().zip(fresh.blocks()) {
            assert_eq!((a.start, a.end), (b.start, b.end));
            assert_eq!(a.columns, b.columns);
        }
        let idx1 = t.index_on("id").unwrap();
        assert_eq!(idx1.indexed_rows(), 420);
        assert_eq!(idx1.range(None, None).len(), 420);
        let ch1 = t.columnar_chunks();
        assert_eq!(ch1.chunks().len(), 5);
        assert_eq!(ch1.chunks().last().unwrap().end, 420);
        let st1 = t.stats();
        assert_eq!(st1.column("id").unwrap().max, Some(Value::Int(419)));

        // The pre-append snapshots are untouched (scans holding them keep a
        // consistent view).
        assert_eq!(zm0.num_blocks(), 3);
        assert_eq!(idx0.indexed_rows(), 250);
        assert_eq!(ch0.chunks().len(), 3);
        assert_eq!(st0.column("id").unwrap().max, Some(Value::Int(249)));
    }

    #[test]
    fn delete_forces_full_rebuild() {
        let mut t = build_table(300);
        let _ = (t.zone_map(), t.index_on("id"), t.columnar_chunks());
        let e0 = t.epoch();
        let deleted = t.delete_where(|r| matches!(r[1], Value::Int(3)));
        assert!(deleted > 0);
        assert!(t.epoch() > e0);
        assert_eq!(t.len(), 300 - deleted);
        // Row ids shifted: the refreshed index must reflect the new layout.
        let idx = t.index_on("id").unwrap();
        assert_eq!(idx.indexed_rows(), t.len());
        let ch = t.columnar_chunks();
        assert_eq!(ch.chunks().last().unwrap().end, t.len());
        let zm = t.zone_map().unwrap();
        assert_eq!(zm.blocks().last().unwrap().end, t.len());
        // Deleting nothing keeps the epoch.
        let e1 = t.epoch();
        assert_eq!(t.delete_where(|_| false), 0);
        assert_eq!(t.epoch(), e1);
    }

    #[test]
    fn append_arity_mismatch_is_rejected_atomically() {
        let mut t = build_table(10);
        let e0 = t.epoch();
        let err = t
            .append_rows(vec![
                vec![Value::Int(10), Value::Int(3)],
                vec![Value::Int(11)], // wrong arity
            ])
            .unwrap_err();
        assert!(matches!(err, StorageError::ArityMismatch { .. }));
        assert_eq!(t.len(), 10, "nothing may be appended on error");
        assert_eq!(t.epoch(), e0);
    }

    #[test]
    fn empty_append_keeps_epoch() {
        let mut t = build_table(10);
        let e0 = t.epoch();
        assert_eq!(t.append_rows(Vec::new()).unwrap(), e0);
        assert_eq!(t.epoch(), e0);
    }

    #[test]
    fn batched_append_bumps_one_epoch_and_matches_sequential_rows() {
        let mut a = build_table(100);
        let mut b = build_table(100);
        let batches: Vec<Vec<Row>> = (0..4)
            .map(|k| {
                (0..25)
                    .map(|i| vec![Value::Int(100 + k * 25 + i), Value::Int(i % 7)])
                    .collect()
            })
            .collect();
        let mut seq_epochs = Vec::new();
        for batch in batches.clone() {
            seq_epochs.push(a.append_rows(batch).unwrap());
        }
        let e0 = b.epoch();
        let e1 = b.append_row_batches(batches).unwrap();
        // Same final rows, but one epoch advance instead of four.
        assert_eq!(a.rows(), b.rows());
        assert!(e1 > e0);
        assert_eq!(b.epoch(), b.data_epoch());
        assert_eq!(seq_epochs.len(), 4);
        // Derived artifacts rebuilt at the single new epoch cover the tail.
        assert_eq!(b.columnar_chunks().chunks().last().unwrap().end, 200);
    }

    #[test]
    fn batched_append_validates_every_batch_before_appending() {
        let mut t = build_table(10);
        let e0 = t.epoch();
        let err = t
            .append_row_batches(vec![
                vec![vec![Value::Int(10), Value::Int(3)]], // valid
                vec![vec![Value::Int(11)]],                // wrong arity
            ])
            .unwrap_err();
        assert!(matches!(err, StorageError::ArityMismatch { .. }));
        assert_eq!(t.len(), 10, "nothing may be appended on error");
        assert_eq!(t.epoch(), e0);
        // All-empty batches are a no-op that keeps the epoch.
        assert_eq!(
            t.append_row_batches(vec![Vec::new(), Vec::new()]).unwrap(),
            e0
        );
        assert_eq!(t.epoch(), e0);
    }

    #[test]
    fn clone_shares_built_artifacts() {
        let mut t = build_table(100);
        let _ = t.columnar_chunks();
        let c = t.clone();
        assert_eq!(c.epoch(), t.epoch());
        assert!(Arc::ptr_eq(&c.columnar_chunks(), &t.columnar_chunks()));
        // Mutating the clone does not disturb the original.
        t.append_rows(vec![vec![Value::Int(100), Value::Int(2)]])
            .unwrap();
        assert_eq!(c.len(), 100);
        assert_eq!(t.len(), 101);
        assert_ne!(c.epoch(), t.epoch());
    }

    #[test]
    fn image_restore_round_trip_keeps_epochs_and_design() {
        let mut t = build_table(300);
        let _ = (t.zone_map(), t.index_on("id"));
        t.append_rows(vec![vec![Value::Int(300), Value::Int(2)]])
            .unwrap();
        let image = t.image();
        let restored = Table::restore(image);
        assert_eq!(restored.name(), t.name());
        assert_eq!(restored.schema(), t.schema());
        assert_eq!(restored.rows(), t.rows());
        assert_eq!(restored.epoch(), t.epoch());
        assert_eq!(restored.data_epoch(), t.data_epoch());
        assert_eq!(restored.block_size(), t.block_size());
        assert_eq!(restored.has_zone_map(), t.has_zone_map());
        assert_eq!(restored.indexed_columns(), t.indexed_columns());
        // Derived artifacts rebuild lazily and agree with the original's.
        assert_eq!(
            restored.zone_map().unwrap().num_blocks(),
            t.zone_map().unwrap().num_blocks()
        );
        assert_eq!(
            restored.index_on("id").unwrap().indexed_rows(),
            t.index_on("id").unwrap().indexed_rows()
        );
    }

    #[test]
    fn restore_advances_the_epoch_source_past_restored_epochs() {
        let t = build_table(10);
        let image = t.image();
        let frozen_epoch = image.epoch;
        let mut restored = Table::restore(image);
        // A mutation after restore must draw an epoch strictly beyond every
        // restored one — equal epochs must keep implying identical content.
        let e = restored
            .append_rows(vec![vec![Value::Int(10), Value::Int(0)]])
            .unwrap();
        assert!(e > frozen_epoch);
        // Even a brand-new table can no longer collide with restored epochs.
        assert!(build_table(1).epoch() > frozen_epoch);
    }

    #[test]
    fn try_push_reports_arity_mismatch() {
        let schema = Schema::from_pairs(&[("a", DataType::Int)]);
        let mut b = TableBuilder::new("t", schema);
        assert!(b.try_push(vec![Value::Int(1)]).is_ok());
        assert!(matches!(
            b.try_push(vec![Value::Int(1), Value::Int(2)]),
            Err(StorageError::ArityMismatch { .. })
        ));
        assert_eq!(b.build().len(), 1);
    }
}
