//! Base tables: a relation plus its physical design artifacts (zone maps,
//! ordered indexes) and statistics.

use crate::columnar::ColumnarChunks;
use crate::index::OrderedIndex;
use crate::relation::{Relation, Row};
use crate::schema::Schema;
use crate::stats::TableStats;
use crate::value::Value;
use crate::zonemap::{ZoneMap, DEFAULT_BLOCK_SIZE};
use std::collections::HashMap;
use std::sync::OnceLock;

/// A named base table with optional physical design artifacts.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    rows: Vec<Row>,
    block_size: usize,
    zone_map: Option<ZoneMap>,
    indexes: HashMap<String, OrderedIndex>,
    stats: TableStats,
    /// Lazily built columnar projection (one chunk per zone-map block); the
    /// row store stays the source of truth.
    columnar: OnceLock<ColumnarChunks>,
}

impl Table {
    /// Create a table from a schema and rows. Statistics are computed
    /// eagerly; zone maps and indexes are built on demand via
    /// [`Table::build_zone_map`] and [`Table::create_index`].
    pub fn new(name: impl Into<String>, schema: Schema, rows: Vec<Row>) -> Self {
        let stats = TableStats::compute(&schema, &rows);
        Table {
            name: name.into(),
            schema,
            rows,
            block_size: DEFAULT_BLOCK_SIZE,
            zone_map: None,
            indexes: HashMap::new(),
            stats,
            columnar: OnceLock::new(),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// All rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Precomputed table statistics.
    pub fn stats(&self) -> &TableStats {
        &self.stats
    }

    /// The zone map, if built.
    pub fn zone_map(&self) -> Option<&ZoneMap> {
        self.zone_map.as_ref()
    }

    /// The block size used for zone maps.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Build (or rebuild) zone maps with the given block size. Invalidates
    /// the cached columnar projection so its chunks stay block-aligned.
    pub fn build_zone_map(&mut self, block_size: usize) {
        self.block_size = block_size;
        self.zone_map = Some(ZoneMap::build(&self.schema, &self.rows, block_size));
        self.columnar = OnceLock::new();
    }

    /// The columnar chunk projection of the table, built lazily on first use
    /// and cached (thread-safe; tables are immutable once shared).
    pub fn columnar_chunks(&self) -> &ColumnarChunks {
        self.columnar
            .get_or_init(|| ColumnarChunks::build(&self.schema, &self.rows, self.block_size))
    }

    /// Build an ordered index on `column`. Returns false if the column does
    /// not exist.
    pub fn create_index(&mut self, column: &str) -> bool {
        match OrderedIndex::build(&self.schema, &self.rows, column) {
            Some(idx) => {
                self.indexes.insert(column.to_string(), idx);
                true
            }
            None => false,
        }
    }

    /// The index on `column`, if any.
    pub fn index_on(&self, column: &str) -> Option<&OrderedIndex> {
        self.indexes.get(column)
    }

    /// Names of indexed columns.
    pub fn indexed_columns(&self) -> Vec<&str> {
        self.indexes.keys().map(|s| s.as_str()).collect()
    }

    /// Values of one column (used to build partitions and histograms).
    ///
    /// Clones every value; prefer [`Table::column_iter`] when a borrowed
    /// walk suffices.
    pub fn column_values(&self, column: &str) -> Option<Vec<Value>> {
        let idx = self.schema.index_of(column)?;
        Some(self.rows.iter().map(|r| r[idx].clone()).collect())
    }

    /// Borrowing iterator over one column's values (no clones).
    pub fn column_iter(&self, column: &str) -> Option<impl Iterator<Item = &Value> + Clone + '_> {
        let idx = self.schema.index_of(column)?;
        Some(self.rows.iter().map(move |r| &r[idx]))
    }

    /// View the table as a plain relation (clones the rows).
    pub fn to_relation(&self) -> Relation {
        Relation::new(self.schema.clone(), self.rows.clone())
    }
}

/// Builder for tables that finalizes physical design in one go.
#[derive(Debug)]
pub struct TableBuilder {
    name: String,
    schema: Schema,
    rows: Vec<Row>,
    block_size: usize,
    index_columns: Vec<String>,
    with_zone_map: bool,
}

impl TableBuilder {
    /// Start building a table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        TableBuilder {
            name: name.into(),
            schema,
            rows: Vec::new(),
            block_size: DEFAULT_BLOCK_SIZE,
            index_columns: Vec::new(),
            with_zone_map: true,
        }
    }

    /// Append a row.
    pub fn push(&mut self, row: Row) -> &mut Self {
        debug_assert_eq!(row.len(), self.schema.arity());
        self.rows.push(row);
        self
    }

    /// Append many rows.
    pub fn extend(&mut self, rows: impl IntoIterator<Item = Row>) -> &mut Self {
        self.rows.extend(rows);
        self
    }

    /// Set the zone-map block size.
    pub fn block_size(&mut self, size: usize) -> &mut Self {
        self.block_size = size;
        self
    }

    /// Request an ordered index on a column.
    pub fn index(&mut self, column: &str) -> &mut Self {
        self.index_columns.push(column.to_string());
        self
    }

    /// Disable zone-map construction (used by the columnar engine profile).
    pub fn without_zone_map(&mut self) -> &mut Self {
        self.with_zone_map = false;
        self
    }

    /// Finish building: computes statistics, zone maps and indexes.
    pub fn build(&mut self) -> Table {
        let mut table = Table::new(
            std::mem::take(&mut self.name),
            self.schema.clone(),
            std::mem::take(&mut self.rows),
        );
        if self.with_zone_map {
            table.build_zone_map(self.block_size);
        }
        for col in &self.index_columns {
            table.create_index(col);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn build_table(n: usize) -> Table {
        let schema = Schema::from_pairs(&[("id", DataType::Int), ("grp", DataType::Int)]);
        let mut b = TableBuilder::new("t", schema);
        b.block_size(100).index("id");
        for i in 0..n {
            b.push(vec![Value::Int(i as i64), Value::Int((i % 7) as i64)]);
        }
        b.build()
    }

    #[test]
    fn builder_creates_stats_zonemaps_and_indexes() {
        let t = build_table(1000);
        assert_eq!(t.len(), 1000);
        assert_eq!(t.stats().column("id").unwrap().max, Some(Value::Int(999)));
        assert_eq!(t.zone_map().unwrap().num_blocks(), 10);
        assert!(t.index_on("id").is_some());
        assert!(t.index_on("grp").is_none());
    }

    #[test]
    fn without_zone_map_profile() {
        let schema = Schema::from_pairs(&[("a", DataType::Int)]);
        let mut b = TableBuilder::new("t", schema);
        b.without_zone_map().push(vec![Value::Int(1)]);
        let t = b.build();
        assert!(t.zone_map().is_none());
    }

    #[test]
    fn column_values_extraction() {
        let t = build_table(10);
        let vals = t.column_values("grp").unwrap();
        assert_eq!(vals.len(), 10);
        assert!(t.column_values("nope").is_none());
    }

    #[test]
    fn to_relation_round_trip() {
        let t = build_table(5);
        let r = t.to_relation();
        assert_eq!(r.len(), 5);
        assert_eq!(r.schema(), t.schema());
    }
}
