//! Ordered secondary indexes (B-tree style) over single columns.
//!
//! The "Postgres-like" engine profile uses these indexes to answer the range
//! predicates that PBDS derives from provenance sketches (Sec. 8), which is
//! what makes a selective sketch pay off.

use crate::relation::Row;
use crate::schema::Schema;
use crate::value::Value;
use std::collections::BTreeMap;
use std::ops::Bound;

/// An ordered index mapping column values to the row ids holding them.
#[derive(Debug, Clone, Default)]
pub struct OrderedIndex {
    column: String,
    entries: BTreeMap<Value, Vec<u32>>,
    indexed_rows: usize,
}

impl OrderedIndex {
    /// Build an index on `column` over the given rows. NULLs are not indexed
    /// (consistent with typical B-tree range-scan semantics for our purposes).
    pub fn build(schema: &Schema, rows: &[Row], column: &str) -> Option<Self> {
        let idx = schema.index_of(column)?;
        let mut entries: BTreeMap<Value, Vec<u32>> = BTreeMap::new();
        for (rid, row) in rows.iter().enumerate() {
            let v = &row[idx];
            if v.is_null() {
                continue;
            }
            entries.entry(v.clone()).or_default().push(rid as u32);
        }
        Some(OrderedIndex {
            column: column.to_string(),
            entries,
            indexed_rows: rows.len(),
        })
    }

    /// Extend the index after rows were appended at the tail: `covered` is
    /// the row count it was built over; `rows[covered..]`'s ids are inserted.
    /// Appended row ids exceed every indexed id, so per-key id lists stay
    /// sorted and the result equals a from-scratch build. Returns false (and
    /// leaves the index untouched) when the column vanished from the schema.
    pub fn extend(&mut self, schema: &Schema, rows: &[Row], covered: usize) -> bool {
        assert!(covered <= rows.len(), "extend cannot shrink an index");
        let Some(idx) = schema.index_of(&self.column) else {
            return false;
        };
        for (rid, row) in rows.iter().enumerate().skip(covered) {
            let v = &row[idx];
            if v.is_null() {
                continue;
            }
            self.entries.entry(v.clone()).or_default().push(rid as u32);
        }
        self.indexed_rows = rows.len();
        true
    }

    /// The indexed column name.
    pub fn column(&self) -> &str {
        &self.column
    }

    /// Number of distinct keys.
    pub fn num_keys(&self) -> usize {
        self.entries.len()
    }

    /// Number of rows in the table at build time.
    pub fn indexed_rows(&self) -> usize {
        self.indexed_rows
    }

    /// Row ids whose value lies in the inclusive range `[lo, hi]` (`None`
    /// bounds are unbounded). Results are returned in key order.
    pub fn range(&self, lo: Option<&Value>, hi: Option<&Value>) -> Vec<u32> {
        let lower = match lo {
            Some(v) => Bound::Included(v.clone()),
            None => Bound::Unbounded,
        };
        let upper = match hi {
            Some(v) => Bound::Included(v.clone()),
            None => Bound::Unbounded,
        };
        let mut out = Vec::new();
        for (_, rids) in self.entries.range((lower, upper)) {
            out.extend_from_slice(rids);
        }
        out
    }

    /// Row ids matching any of the given inclusive ranges; the result is
    /// deduplicated and sorted so the caller can scan rows in storage order.
    pub fn multi_range(&self, ranges: &[(Option<Value>, Option<Value>)]) -> Vec<u32> {
        let mut out = Vec::new();
        for (lo, hi) in ranges {
            out.extend(self.range(lo.as_ref(), hi.as_ref()));
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Row ids with exactly the given key value.
    pub fn lookup(&self, key: &Value) -> &[u32] {
        self.entries.get(key).map(|v| v.as_slice()).unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn setup() -> (Schema, Vec<Row>) {
        let schema = Schema::from_pairs(&[("k", DataType::Int), ("s", DataType::Str)]);
        let rows = (0..100)
            .map(|i| vec![Value::Int(i % 10), Value::from(format!("r{i}"))])
            .collect();
        (schema, rows)
    }

    #[test]
    fn point_lookup_returns_all_matches() {
        let (schema, rows) = setup();
        let idx = OrderedIndex::build(&schema, &rows, "k").unwrap();
        assert_eq!(idx.lookup(&Value::Int(3)).len(), 10);
        assert!(idx.lookup(&Value::Int(99)).is_empty());
    }

    #[test]
    fn range_scan_is_inclusive() {
        let (schema, rows) = setup();
        let idx = OrderedIndex::build(&schema, &rows, "k").unwrap();
        let rids = idx.range(Some(&Value::Int(2)), Some(&Value::Int(4)));
        assert_eq!(rids.len(), 30);
    }

    #[test]
    fn unbounded_range_returns_everything_non_null() {
        let (schema, rows) = setup();
        let idx = OrderedIndex::build(&schema, &rows, "k").unwrap();
        assert_eq!(idx.range(None, None).len(), 100);
    }

    #[test]
    fn multi_range_dedups_and_sorts() {
        let (schema, rows) = setup();
        let idx = OrderedIndex::build(&schema, &rows, "k").unwrap();
        let rids = idx.multi_range(&[
            (Some(Value::Int(0)), Some(Value::Int(1))),
            (Some(Value::Int(1)), Some(Value::Int(2))),
        ]);
        assert_eq!(rids.len(), 30);
        assert!(rids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn nulls_are_not_indexed() {
        let schema = Schema::from_pairs(&[("k", DataType::Int)]);
        let rows = vec![vec![Value::Null], vec![Value::Int(1)]];
        let idx = OrderedIndex::build(&schema, &rows, "k").unwrap();
        assert_eq!(idx.range(None, None), vec![1]);
    }

    #[test]
    fn extend_equals_from_scratch_build() {
        let (schema, rows) = setup();
        let mut idx = OrderedIndex::build(&schema, &rows[..60], "k").unwrap();
        assert!(idx.extend(&schema, &rows, 60));
        let fresh = OrderedIndex::build(&schema, &rows, "k").unwrap();
        assert_eq!(idx.indexed_rows(), 100);
        assert_eq!(idx.num_keys(), fresh.num_keys());
        for k in 0..10 {
            assert_eq!(idx.lookup(&Value::Int(k)), fresh.lookup(&Value::Int(k)));
        }
    }

    #[test]
    fn missing_column_yields_none() {
        let (schema, rows) = setup();
        assert!(OrderedIndex::build(&schema, &rows, "missing").is_none());
    }
}
