//! Columnar chunk projections of base tables.
//!
//! The row store (`Vec<Row>` of dynamically typed [`Value`]s) stays the
//! source of truth; a [`ColumnarChunks`] is a derived, cached projection the
//! execution engine uses to evaluate predicates column-at-a-time. Each chunk
//! covers one zone-map block of rows and holds one typed vector per column:
//! `i64` / `f64` / dictionary-encoded strings / booleans, each with a `u64`
//! null-bitmap, falling back to a plain `Value` vector for columns whose
//! non-null values mix types (the dynamically typed row store allows that).
//!
//! String dictionaries are per chunk and **sorted**, so dictionary codes are
//! order-preserving within the chunk: a range or comparison predicate against
//! a string literal translates to a comparison on `u32` codes.
//!
//! ## Compressed layouts
//!
//! On top of the plain typed vectors, the encoder picks a compressed layout
//! per chunk-column with a cheap statistics pass at build time:
//!
//! * [`ColumnData::RleInt`] — run-length encoding for integer columns whose
//!   values repeat in runs (sorted or near-constant data). NULL rows merge
//!   into the surrounding run (the null bitmap still marks them), so
//!   interspersed NULLs do not break runs.
//! * [`ColumnData::RleDict`] — the same run-length layout over the sorted
//!   dictionary codes of a low-cardinality string column.
//! * [`ColumnData::PackedInt`] — frame-of-reference bit-packing for integer
//!   columns with a small value range: each value is stored as an unsigned
//!   delta from the chunk minimum in 1/2/4/8/16 bits.
//!
//! The choice is a deterministic function of the chunk's rows, so
//! [`ColumnarChunks::extend`] re-encoding only the tail chunk yields exactly
//! the layouts a from-scratch build would. Columns that fit no compressed
//! layout keep the plain vectors, and `Mixed` semantics are untouched.

use crate::relation::Row;
use crate::schema::Schema;
use crate::value::Value;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Chunks shorter than this are never worth encoding; the plain vectors win.
const MIN_ENCODE_ROWS: usize = 16;

/// A run-length encoded sequence: run `k` holds `values[k]` and covers the
/// row range `[ends[k-1], ends[k])` (with an implicit `ends[-1] == 0`).
#[derive(Debug, Clone, PartialEq)]
pub struct Runs<T> {
    values: Vec<T>,
    ends: Vec<u32>,
}

impl<T: Copy + PartialEq> Runs<T> {
    /// Build runs from a dense slice of per-row values.
    pub fn from_values(vals: &[T]) -> Self {
        debug_assert!(vals.len() <= u32::MAX as usize);
        let mut values = Vec::new();
        let mut ends = Vec::new();
        for (i, v) in vals.iter().enumerate() {
            if values.last() != Some(v) {
                if !values.is_empty() {
                    ends.push(i as u32);
                }
                values.push(*v);
            }
        }
        if !values.is_empty() {
            ends.push(vals.len() as u32);
        }
        Runs { values, ends }
    }

    /// Number of rows covered by all runs.
    pub fn len(&self) -> usize {
        self.ends.last().map_or(0, |&e| e as usize)
    }

    /// True when no rows are covered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of runs.
    pub fn run_count(&self) -> usize {
        self.values.len()
    }

    /// The value covering row `i` (chunk-relative).
    #[inline]
    pub fn value_at(&self, i: usize) -> T {
        let k = self.ends.partition_point(|&e| e as usize <= i);
        self.values[k]
    }

    /// Iterate the runs as `(start, end, value)` triples in row order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        self.values
            .iter()
            .zip(self.ends.iter())
            .scan(0usize, |start, (&v, &e)| {
                let s = *start;
                *start = e as usize;
                Some((s, e as usize, v))
            })
    }

    /// The distinct run values in row order.
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Approximate heap footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<T>() + self.ends.len() * 4
    }
}

/// Frame-of-reference bit-packed integers: each value is stored as an
/// unsigned delta from `base` in `width` bits (1, 2, 4, 8 or 16 — widths
/// that divide 64, so no value straddles a word boundary).
#[derive(Debug, Clone, PartialEq)]
pub struct PackedInts {
    base: i64,
    width: u32,
    len: usize,
    words: Vec<u64>,
}

impl PackedInts {
    /// Pack `vals` relative to `base`; every `v - base` must fit `width` bits.
    pub fn pack(vals: impl ExactSizeIterator<Item = i64>, base: i64, width: u32) -> Self {
        debug_assert!(matches!(width, 1 | 2 | 4 | 8 | 16));
        let len = vals.len();
        let per = (64 / width) as usize;
        let mut words = vec![0u64; len.div_ceil(per)];
        for (i, v) in vals.enumerate() {
            let delta = (v - base) as u64;
            debug_assert!(delta < (1u64 << width));
            words[i / per] |= delta << ((i % per) as u32 * width);
        }
        PackedInts {
            base,
            width,
            len,
            words,
        }
    }

    /// The frame-of-reference base (the chunk minimum).
    pub fn base(&self) -> i64 {
        self.base
    }

    /// Bits per value.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Number of packed values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no values are packed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The packed words (little-endian lane order within each word).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The value at row `i` (chunk-relative).
    #[inline]
    pub fn get(&self, i: usize) -> i64 {
        let per = (64 / self.width) as usize;
        let lane = (i % per) as u32;
        let mask = (1u64 << self.width) - 1;
        self.base + ((self.words[i / per] >> (lane * self.width)) & mask) as i64
    }

    /// Approximate heap footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

/// Typed storage of one column within one chunk.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// All non-null values are `Value::Int`.
    Int(Vec<i64>),
    /// All non-null values are `Value::Float`.
    Float(Vec<f64>),
    /// All non-null values are `Value::Str`, dictionary-encoded. `dict` is
    /// sorted and deduplicated, so codes preserve the string order.
    Dict {
        /// Sorted distinct strings of the chunk.
        dict: Vec<String>,
        /// Per-row index into `dict` (0 for NULL rows; check the null bitmap).
        codes: Vec<u32>,
    },
    /// All non-null values are `Value::Bool`.
    Bool(Vec<bool>),
    /// Mixed-type column (e.g. `Int` and `Float` rows in one column): kept as
    /// plain values so the engine falls back to `Value` comparison semantics.
    Mixed(Vec<Value>),
    /// Run-length encoded integer column. NULL rows merge into the
    /// surrounding run (check the null bitmap); a leading NULL carries the
    /// first non-null value.
    RleInt(Runs<i64>),
    /// Frame-of-reference bit-packed integer column (NULL rows pack as the
    /// base; check the null bitmap).
    PackedInt(PackedInts),
    /// Run-length encoding over the sorted dictionary codes of a
    /// low-cardinality string column. NULL rows merge into the surrounding
    /// run (check the null bitmap).
    RleDict {
        /// Sorted distinct strings of the chunk.
        dict: Vec<String>,
        /// Run-length encoded codes indexing into `dict`.
        runs: Runs<u32>,
    },
}

impl ColumnData {
    /// A short stable name of the physical layout, for plans and benchmarks.
    pub fn encoding_name(&self) -> &'static str {
        match self {
            ColumnData::Int(_) => "int",
            ColumnData::Float(_) => "float",
            ColumnData::Dict { .. } => "dict",
            ColumnData::Bool(_) => "bool",
            ColumnData::Mixed(_) => "mixed",
            ColumnData::RleInt(_) => "rle-int",
            ColumnData::PackedInt(_) => "packed-int",
            ColumnData::RleDict { .. } => "rle-dict",
        }
    }

    /// True for the compressed layouts (RLE / bit-packed).
    pub fn is_encoded(&self) -> bool {
        matches!(
            self,
            ColumnData::RleInt(_) | ColumnData::PackedInt(_) | ColumnData::RleDict { .. }
        )
    }

    /// Approximate heap footprint in bytes (dictionary strings included).
    pub fn approx_bytes(&self) -> usize {
        let dict_bytes = |dict: &[String]| dict.iter().map(|s| s.len() + 24).sum::<usize>();
        match self {
            ColumnData::Int(v) => v.len() * 8,
            ColumnData::Float(v) => v.len() * 8,
            ColumnData::Bool(v) => v.len(),
            ColumnData::Dict { dict, codes } => dict_bytes(dict) + codes.len() * 4,
            ColumnData::Mixed(v) => {
                v.len() * std::mem::size_of::<Value>()
                    + v.iter()
                        .map(|val| match val {
                            Value::Str(s) => s.len(),
                            _ => 0,
                        })
                        .sum::<usize>()
            }
            ColumnData::RleInt(runs) => runs.approx_bytes(),
            ColumnData::PackedInt(p) => p.approx_bytes(),
            ColumnData::RleDict { dict, runs } => dict_bytes(dict) + runs.approx_bytes(),
        }
    }
}

/// One column of one chunk: typed data plus a null bitmap.
#[derive(Debug, Clone)]
pub struct ColumnVector {
    /// One bit per row of the chunk; set = NULL. `None` when the chunk has no
    /// NULLs in this column.
    nulls: Option<Vec<u64>>,
    data: ColumnData,
}

impl ColumnVector {
    /// The typed data vector.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// True when row `i` (chunk-relative) is NULL.
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        match &self.nulls {
            Some(words) => words[i / 64] & (1u64 << (i % 64)) != 0,
            None => false,
        }
    }

    /// True when the column holds at least one NULL in this chunk.
    pub fn has_nulls(&self) -> bool {
        self.nulls.is_some()
    }

    /// The null bitmap as `u64` words (little-endian bit order), if any row
    /// is NULL.
    pub fn null_words(&self) -> Option<&[u64]> {
        self.nulls.as_deref()
    }

    /// Decode row `i` (chunk-relative) back to a [`Value`] — NULL-aware, so
    /// encoding placeholders are never observable.
    pub fn value(&self, i: usize) -> Value {
        if self.is_null(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::Dict { dict, codes } => Value::Str(dict[codes[i] as usize].clone()),
            ColumnData::Mixed(v) => v[i].clone(),
            ColumnData::RleInt(runs) => Value::Int(runs.value_at(i)),
            ColumnData::PackedInt(p) => Value::Int(p.get(i)),
            ColumnData::RleDict { dict, runs } => {
                Value::Str(dict[runs.value_at(i) as usize].clone())
            }
        }
    }

    /// Approximate heap footprint in bytes (null bitmap included).
    pub fn approx_bytes(&self) -> usize {
        self.data.approx_bytes() + self.nulls.as_ref().map_or(0, |w| w.len() * 8)
    }
}

/// A contiguous run of rows (`[start, end)`) stored column-wise.
#[derive(Debug, Clone)]
pub struct ColumnarChunk {
    /// Table-level index of the first row of the chunk.
    pub start: usize,
    /// One past the last row of the chunk.
    pub end: usize,
    columns: Vec<ColumnVector>,
}

impl ColumnarChunk {
    /// Number of rows in the chunk.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the chunk holds no rows.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The column vector at schema position `idx`.
    pub fn column(&self, idx: usize) -> &ColumnVector {
        &self.columns[idx]
    }

    /// Number of columns stored with a compressed layout in this chunk.
    pub fn encoded_columns(&self) -> usize {
        self.columns
            .iter()
            .filter(|c| c.data().is_encoded())
            .count()
    }

    /// Approximate heap footprint of the chunk in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.columns.iter().map(|c| c.approx_bytes()).sum()
    }
}

/// The columnar projection of a whole table: one chunk per zone-map block.
///
/// Chunks are stored behind `Arc` so that extending the projection after an
/// append (see [`ColumnarChunks::extend`]) reuses the untouched chunks
/// instead of re-encoding — only the trailing partial chunk is rebuilt and
/// new tail chunks are added.
#[derive(Debug, Clone)]
pub struct ColumnarChunks {
    block_size: usize,
    encode: bool,
    chunks: Vec<Arc<ColumnarChunk>>,
}

impl ColumnarChunks {
    /// Build the projection over `rows` with `block_size` rows per chunk
    /// (aligned with the table's zone-map blocks), picking a compressed
    /// layout per chunk-column where the stats heuristic pays off.
    pub fn build(schema: &Schema, rows: &[Row], block_size: usize) -> Self {
        Self::build_inner(schema, rows, block_size, true)
    }

    /// Build the projection with compressed layouts disabled: every column
    /// keeps the plain typed vectors. Used as the decode oracle in
    /// equivalence tests and benchmarks.
    pub fn build_plain(schema: &Schema, rows: &[Row], block_size: usize) -> Self {
        Self::build_inner(schema, rows, block_size, false)
    }

    fn build_inner(schema: &Schema, rows: &[Row], block_size: usize, encode: bool) -> Self {
        assert!(block_size > 0, "chunk size must be positive");
        let mut out = ColumnarChunks {
            block_size,
            encode,
            chunks: Vec::with_capacity(rows.len().div_ceil(block_size)),
        };
        out.append_chunks(schema, rows, 0);
        out
    }

    /// Extend the projection after rows were appended at the tail: `covered`
    /// is the row count it was built over. The (possibly partial) last chunk
    /// is re-encoded and new tail chunks are added; untouched chunks are
    /// shared with the previous projection. The result is value-identical to
    /// a from-scratch [`ColumnarChunks::build`] over all `rows` — including
    /// the compressed-layout choices, which depend only on chunk contents.
    pub fn extend(&mut self, schema: &Schema, rows: &[Row], covered: usize) {
        assert!(covered <= rows.len(), "extend cannot shrink a projection");
        let rebuilt_from = covered - (covered % self.block_size);
        self.chunks.retain(|c| c.end <= rebuilt_from);
        self.append_chunks(schema, rows, rebuilt_from);
    }

    /// Encode `rows[from..]` into chunks appended at the tail (`from` must
    /// be a multiple of the block size).
    fn append_chunks(&mut self, schema: &Schema, rows: &[Row], from: usize) {
        let arity = schema.arity();
        let mut start = from;
        while start < rows.len() {
            let end = (start + self.block_size).min(rows.len());
            let columns = (0..arity)
                .map(|c| build_column(&rows[start..end], c, self.encode))
                .collect();
            self.chunks.push(Arc::new(ColumnarChunk {
                start,
                end,
                columns,
            }));
            start = end;
        }
    }

    /// Rows per chunk (matches the zone-map block size it was built with).
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// All chunks in table order.
    pub fn chunks(&self) -> &[Arc<ColumnarChunk>] {
        &self.chunks
    }

    /// The chunk containing table row `rid`, if in range.
    pub fn chunk_for(&self, rid: usize) -> Option<&ColumnarChunk> {
        self.chunks.get(rid / self.block_size).map(Arc::as_ref)
    }

    /// Approximate heap footprint of the whole projection in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.chunks.iter().map(|c| c.approx_bytes()).sum()
    }

    /// Per-encoding chunk counts for schema column `col` — e.g.
    /// `{"rle-int": 3, "packed-int": 9}`. Used by `EXPLAIN` output and the
    /// scan microbenchmark to report the layouts actually chosen.
    pub fn column_encoding_counts(&self, col: usize) -> BTreeMap<&'static str, usize> {
        let mut counts = BTreeMap::new();
        for chunk in &self.chunks {
            *counts
                .entry(chunk.column(col).data().encoding_name())
                .or_insert(0) += 1;
        }
        counts
    }
}

/// Classify and pack one column of a row slice. With `encode` set, integer
/// and dictionary columns additionally go through the compressed-layout
/// heuristic; the choice is a pure function of `rows`, which keeps
/// [`ColumnarChunks::extend`] equivalent to a fresh build.
fn build_column(rows: &[Row], col: usize, encode: bool) -> ColumnVector {
    #[derive(PartialEq, Clone, Copy)]
    enum Kind {
        Unknown,
        Int,
        Float,
        Str,
        Bool,
        Mixed,
    }
    let mut kind = Kind::Unknown;
    let mut any_null = false;
    for row in rows {
        let k = match &row[col] {
            Value::Null => {
                any_null = true;
                continue;
            }
            Value::Int(_) => Kind::Int,
            Value::Float(_) => Kind::Float,
            Value::Str(_) => Kind::Str,
            Value::Bool(_) => Kind::Bool,
        };
        if kind == Kind::Unknown {
            kind = k;
        } else if kind != k && kind != Kind::Mixed {
            // Keep scanning: the null bitmap below needs every row seen.
            kind = Kind::Mixed;
        }
    }

    let nulls = if any_null {
        let mut words = vec![0u64; rows.len().div_ceil(64)];
        for (i, row) in rows.iter().enumerate() {
            if row[col].is_null() {
                words[i / 64] |= 1u64 << (i % 64);
            }
        }
        Some(words)
    } else {
        None
    };

    let data = match kind {
        Kind::Int => encode_int_column(rows, col, encode),
        Kind::Float => ColumnData::Float(
            rows.iter()
                .map(|r| match &r[col] {
                    Value::Float(f) => *f,
                    _ => 0.0,
                })
                .collect(),
        ),
        Kind::Bool => ColumnData::Bool(
            rows.iter()
                .map(|r| match &r[col] {
                    Value::Bool(b) => *b,
                    _ => false,
                })
                .collect(),
        ),
        Kind::Str => {
            let mut dict: Vec<String> = rows
                .iter()
                .filter_map(|r| match &r[col] {
                    Value::Str(s) => Some(s.clone()),
                    _ => None,
                })
                .collect();
            dict.sort_unstable();
            dict.dedup();
            let codes: Vec<u32> = rows
                .iter()
                .map(|r| match &r[col] {
                    Value::Str(s) => dict
                        .binary_search_by(|d| d.as_str().cmp(s))
                        .expect("in dict") as u32,
                    _ => 0,
                })
                .collect();
            encode_dict_column(rows, col, dict, codes, encode)
        }
        // All-NULL columns pack as Mixed so every accessor stays trivial.
        Kind::Unknown | Kind::Mixed => {
            ColumnData::Mixed(rows.iter().map(|r| r[col].clone()).collect())
        }
    };

    ColumnVector { nulls, data }
}

/// The compressed-layout heuristic for an all-Int (modulo NULLs) column:
/// RLE when runs cover ≥4 rows on average, else frame-of-reference packing
/// when the value range fits 16 bits or fewer, else the plain `i64` vector.
fn encode_int_column(rows: &[Row], col: usize, encode: bool) -> ColumnData {
    if encode && rows.len() >= MIN_ENCODE_ROWS && rows.len() <= u32::MAX as usize {
        // Fill NULL rows forward so they merge into the surrounding run (a
        // leading NULL takes the first non-null value); the null bitmap keeps
        // them distinguishable.
        let first = rows
            .iter()
            .find_map(|r| match &r[col] {
                Value::Int(i) => Some(*i),
                _ => None,
            })
            .expect("int column has a non-null value");
        let mut filled = Vec::with_capacity(rows.len());
        let (mut last, mut min, mut max) = (first, first, first);
        for row in rows {
            if let Value::Int(i) = &row[col] {
                last = *i;
                min = min.min(*i);
                max = max.max(*i);
            }
            filled.push(last);
        }
        let runs = Runs::from_values(&filled);
        if runs.run_count() * 4 <= rows.len() {
            return ColumnData::RleInt(runs);
        }
        let range = max as i128 - min as i128;
        for width in [1u32, 2, 4, 8, 16] {
            if range < (1i128 << width) {
                let vals = rows.iter().map(|r| match &r[col] {
                    Value::Int(i) => *i,
                    _ => min, // NULL placeholder; masked by the bitmap
                });
                return ColumnData::PackedInt(PackedInts::pack(vals, min, width));
            }
        }
    }
    ColumnData::Int(
        rows.iter()
            .map(|r| match &r[col] {
                Value::Int(i) => *i,
                _ => 0, // NULL placeholder; masked by the bitmap
            })
            .collect(),
    )
}

/// The compressed-layout heuristic for a dictionary column: RLE over the
/// order-preserving codes when runs cover ≥4 rows on average.
fn encode_dict_column(
    rows: &[Row],
    col: usize,
    dict: Vec<String>,
    codes: Vec<u32>,
    encode: bool,
) -> ColumnData {
    if encode && rows.len() >= MIN_ENCODE_ROWS && rows.len() <= u32::MAX as usize {
        // Fill NULL rows forward over codes, mirroring the integer path.
        let first = rows
            .iter()
            .position(|r| matches!(&r[col], Value::Str(_)))
            .expect("str column has a non-null value");
        let mut filled = Vec::with_capacity(rows.len());
        let mut last = codes[first];
        for (i, row) in rows.iter().enumerate() {
            if !row[col].is_null() {
                last = codes[i];
            }
            filled.push(last);
        }
        let runs = Runs::from_values(&filled);
        if runs.run_count() * 4 <= rows.len() {
            return ColumnData::RleDict { dict, runs };
        }
    }
    ColumnData::Dict { dict, codes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("i", DataType::Int),
            ("f", DataType::Float),
            ("s", DataType::Str),
            ("m", DataType::Float),
        ])
    }

    fn rows(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| {
                vec![
                    if i % 5 == 0 {
                        Value::Null
                    } else {
                        Value::Int(i as i64)
                    },
                    Value::Float(i as f64 / 2.0),
                    Value::Str(format!("s{}", i % 7)),
                    // Mixed-type column: alternating Int and Float.
                    if i % 2 == 0 {
                        Value::Int(i as i64)
                    } else {
                        Value::Float(i as f64)
                    },
                ]
            })
            .collect()
    }

    #[test]
    fn chunking_follows_block_size() {
        let rows = rows(250);
        let c = ColumnarChunks::build(&schema(), &rows, 100);
        assert_eq!(c.chunks().len(), 3);
        assert_eq!(c.chunks()[0].start, 0);
        assert_eq!(c.chunks()[0].end, 100);
        assert_eq!(c.chunks()[2].len(), 50);
        assert_eq!(c.chunk_for(150).unwrap().start, 100);
        assert!(c.chunk_for(999).is_none());
    }

    #[test]
    fn columns_classify_by_value_types() {
        let rows = rows(64);
        let c = ColumnarChunks::build(&schema(), &rows, 64);
        let chunk = &c.chunks()[0];
        // Ascending ints with a small range pack frame-of-reference.
        assert!(matches!(chunk.column(0).data(), ColumnData::PackedInt(_)));
        assert!(matches!(chunk.column(1).data(), ColumnData::Float(_)));
        assert!(matches!(chunk.column(2).data(), ColumnData::Dict { .. }));
        assert!(matches!(chunk.column(3).data(), ColumnData::Mixed(_)));
        assert!(chunk.column(0).has_nulls());
        assert!(chunk.column(0).is_null(0));
        assert!(!chunk.column(0).is_null(1));
        assert!(!chunk.column(1).has_nulls());
    }

    #[test]
    fn build_plain_keeps_plain_vectors() {
        let rows = rows(64);
        let c = ColumnarChunks::build_plain(&schema(), &rows, 64);
        let chunk = &c.chunks()[0];
        assert!(matches!(chunk.column(0).data(), ColumnData::Int(_)));
        assert_eq!(chunk.encoded_columns(), 0);
    }

    #[test]
    fn dictionary_codes_preserve_string_order() {
        let rows = rows(50);
        let c = ColumnarChunks::build(&schema(), &rows, 50);
        let ColumnData::Dict { dict, codes } = c.chunks()[0].column(2).data() else {
            panic!("expected dict column");
        };
        assert!(dict.windows(2).all(|w| w[0] < w[1]));
        for (i, row) in rows.iter().enumerate() {
            let Value::Str(s) = &row[2] else {
                unreachable!()
            };
            assert_eq!(&dict[codes[i] as usize], s);
        }
    }

    #[test]
    fn extend_shares_full_chunks_and_matches_fresh_build() {
        let all = rows(250);
        let mut c = ColumnarChunks::build(&schema(), &all[..130], 100);
        let first_chunk = Arc::clone(&c.chunks()[0]);
        c.extend(&schema(), &all, 130);
        let fresh = ColumnarChunks::build(&schema(), &all, 100);
        assert_eq!(c.chunks().len(), fresh.chunks().len());
        // The untouched full chunk is shared, not re-encoded.
        assert!(Arc::ptr_eq(&c.chunks()[0], &first_chunk));
        // Every chunk decodes to the same values as a fresh build — and the
        // compressed-layout choices agree, since they are pure functions of
        // the chunk rows.
        for (a, b) in c.chunks().iter().zip(fresh.chunks()) {
            assert_eq!((a.start, a.end), (b.start, b.end));
            for col in 0..4 {
                for i in 0..a.len() {
                    assert_eq!(a.column(col).is_null(i), b.column(col).is_null(i));
                }
                match (a.column(col).data(), b.column(col).data()) {
                    (ColumnData::Int(x), ColumnData::Int(y)) => assert_eq!(x, y),
                    (ColumnData::Float(x), ColumnData::Float(y)) => assert_eq!(x, y),
                    (ColumnData::Bool(x), ColumnData::Bool(y)) => assert_eq!(x, y),
                    (ColumnData::Mixed(x), ColumnData::Mixed(y)) => assert_eq!(x, y),
                    (ColumnData::RleInt(x), ColumnData::RleInt(y)) => assert_eq!(x, y),
                    (ColumnData::PackedInt(x), ColumnData::PackedInt(y)) => assert_eq!(x, y),
                    (
                        ColumnData::Dict {
                            dict: d1,
                            codes: c1,
                        },
                        ColumnData::Dict {
                            dict: d2,
                            codes: c2,
                        },
                    ) => {
                        assert_eq!(d1, d2);
                        assert_eq!(c1, c2);
                    }
                    (
                        ColumnData::RleDict { dict: d1, runs: r1 },
                        ColumnData::RleDict { dict: d2, runs: r2 },
                    ) => {
                        assert_eq!(d1, d2);
                        assert_eq!(r1, r2);
                    }
                    (x, y) => panic!("chunk column kind diverged: {x:?} vs {y:?}"),
                }
            }
        }
    }

    #[test]
    fn all_null_column_is_mixed_with_full_bitmap() {
        let schema = Schema::from_pairs(&[("a", DataType::Int)]);
        let rows: Vec<Row> = (0..10).map(|_| vec![Value::Null]).collect();
        let c = ColumnarChunks::build(&schema, &rows, 4);
        for chunk in c.chunks() {
            let col = chunk.column(0);
            assert!(matches!(col.data(), ColumnData::Mixed(_)));
            for i in 0..chunk.len() {
                assert!(col.is_null(i));
            }
        }
    }

    #[test]
    fn runny_ints_pick_rle_and_nulls_merge_into_runs() {
        let schema = Schema::from_pairs(&[("a", DataType::Int)]);
        // Three long runs with NULLs sprinkled inside the middle one.
        let rows: Vec<Row> = (0..90)
            .map(|i| {
                if i % 13 == 7 && (30..60).contains(&i) {
                    vec![Value::Null]
                } else {
                    vec![Value::Int((i / 30) as i64 * 10)]
                }
            })
            .collect();
        let c = ColumnarChunks::build(&schema, &rows, 90);
        let col = c.chunks()[0].column(0);
        let ColumnData::RleInt(runs) = col.data() else {
            panic!("expected RLE, got {}", col.data().encoding_name());
        };
        assert_eq!(runs.run_count(), 3);
        assert_eq!(runs.len(), 90);
        // Decoding is NULL-aware and placeholder-free.
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(col.value(i), row[0]);
        }
        assert_eq!(runs.value_at(0), 0);
        assert_eq!(runs.value_at(45), 10);
        assert_eq!(runs.value_at(89), 20);
    }

    #[test]
    fn small_range_ints_pick_frame_of_reference_packing() {
        let schema = Schema::from_pairs(&[("a", DataType::Int)]);
        let rows: Vec<Row> = (0..64)
            .map(|i| vec![Value::Int(1000 + (i as i64 * 7) % 13)])
            .collect();
        let c = ColumnarChunks::build(&schema, &rows, 64);
        let col = c.chunks()[0].column(0);
        let ColumnData::PackedInt(p) = col.data() else {
            panic!("expected packed, got {}", col.data().encoding_name());
        };
        assert_eq!(p.base(), 1000);
        assert_eq!(p.width(), 4);
        assert_eq!(p.len(), 64);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(col.value(i), row[0]);
            assert_eq!(Value::Int(p.get(i)), row[0]);
        }
        // 4 bits per value: 64 values fit 4 words instead of 64.
        assert_eq!(p.words().len(), 4);
        assert!(col.approx_bytes() < 64 * 8);
    }

    #[test]
    fn short_and_wide_columns_stay_plain() {
        let schema = Schema::from_pairs(&[("a", DataType::Int)]);
        // Below MIN_ENCODE_ROWS: plain even though perfectly runny.
        let short: Vec<Row> = (0..8).map(|_| vec![Value::Int(1)]).collect();
        let c = ColumnarChunks::build(&schema, &short, 8);
        assert!(matches!(c.chunks()[0].column(0).data(), ColumnData::Int(_)));
        // Wide range, no runs: plain.
        let wide: Vec<Row> = (0..64)
            .map(|i| vec![Value::Int(i as i64 * 1_000_000)])
            .collect();
        let c = ColumnarChunks::build(&schema, &wide, 64);
        assert!(matches!(c.chunks()[0].column(0).data(), ColumnData::Int(_)));
    }

    #[test]
    fn low_cardinality_strings_pick_rle_dict() {
        let schema = Schema::from_pairs(&[("s", DataType::Str)]);
        let rows: Vec<Row> = (0..80)
            .map(|i| {
                if i == 40 {
                    vec![Value::Null]
                } else {
                    vec![Value::Str(if i < 40 { "aa" } else { "bb" }.to_string())]
                }
            })
            .collect();
        let c = ColumnarChunks::build(&schema, &rows, 80);
        let col = c.chunks()[0].column(0);
        let ColumnData::RleDict { dict, runs } = col.data() else {
            panic!("expected rle-dict, got {}", col.data().encoding_name());
        };
        assert_eq!(dict, &["aa".to_string(), "bb".to_string()]);
        // The NULL at row 40 merges into the preceding "aa" run.
        assert_eq!(runs.run_count(), 2);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(col.value(i), row[0]);
        }
    }

    #[test]
    fn encoding_counts_and_footprint() {
        let schema = Schema::from_pairs(&[("a", DataType::Int)]);
        let rows: Vec<Row> = (0..200).map(|i| vec![Value::Int(i as i64 % 10)]).collect();
        let enc = ColumnarChunks::build(&schema, &rows, 50);
        let plain = ColumnarChunks::build_plain(&schema, &rows, 50);
        let counts = enc.column_encoding_counts(0);
        assert_eq!(counts.values().sum::<usize>(), 4);
        assert!(counts.contains_key("packed-int"), "counts: {counts:?}");
        assert!(enc.approx_bytes() < plain.approx_bytes());
        assert_eq!(plain.column_encoding_counts(0)["int"], 4);
    }

    #[test]
    fn runs_accessors_are_consistent() {
        let runs = Runs::from_values(&[5i64, 5, 5, 7, 7, 2]);
        assert_eq!(runs.run_count(), 3);
        assert_eq!(runs.len(), 6);
        assert!(!runs.is_empty());
        assert_eq!(
            runs.iter().collect::<Vec<_>>(),
            vec![(0, 3, 5), (3, 5, 7), (5, 6, 2)]
        );
        for i in 0..6 {
            assert_eq!(runs.value_at(i), [5, 5, 5, 7, 7, 2][i]);
        }
        let empty: Runs<i64> = Runs::from_values(&[]);
        assert!(empty.is_empty());
        assert_eq!(empty.len(), 0);
    }
}
