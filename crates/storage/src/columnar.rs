//! Columnar chunk projections of base tables.
//!
//! The row store (`Vec<Row>` of dynamically typed [`Value`]s) stays the
//! source of truth; a [`ColumnarChunks`] is a derived, cached projection the
//! execution engine uses to evaluate predicates column-at-a-time. Each chunk
//! covers one zone-map block of rows and holds one typed vector per column:
//! `i64` / `f64` / dictionary-encoded strings / booleans, each with a `u64`
//! null-bitmap, falling back to a plain `Value` vector for columns whose
//! non-null values mix types (the dynamically typed row store allows that).
//!
//! String dictionaries are per chunk and **sorted**, so dictionary codes are
//! order-preserving within the chunk: a range or comparison predicate against
//! a string literal translates to a comparison on `u32` codes.

use crate::relation::Row;
use crate::schema::Schema;
use crate::value::Value;
use std::sync::Arc;

/// Typed storage of one column within one chunk.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// All non-null values are `Value::Int`.
    Int(Vec<i64>),
    /// All non-null values are `Value::Float`.
    Float(Vec<f64>),
    /// All non-null values are `Value::Str`, dictionary-encoded. `dict` is
    /// sorted and deduplicated, so codes preserve the string order.
    Dict {
        /// Sorted distinct strings of the chunk.
        dict: Vec<String>,
        /// Per-row index into `dict` (0 for NULL rows; check the null bitmap).
        codes: Vec<u32>,
    },
    /// All non-null values are `Value::Bool`.
    Bool(Vec<bool>),
    /// Mixed-type column (e.g. `Int` and `Float` rows in one column): kept as
    /// plain values so the engine falls back to `Value` comparison semantics.
    Mixed(Vec<Value>),
}

/// One column of one chunk: typed data plus a null bitmap.
#[derive(Debug, Clone)]
pub struct ColumnVector {
    /// One bit per row of the chunk; set = NULL. `None` when the chunk has no
    /// NULLs in this column.
    nulls: Option<Vec<u64>>,
    data: ColumnData,
}

impl ColumnVector {
    /// The typed data vector.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// True when row `i` (chunk-relative) is NULL.
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        match &self.nulls {
            Some(words) => words[i / 64] & (1u64 << (i % 64)) != 0,
            None => false,
        }
    }

    /// True when the column holds at least one NULL in this chunk.
    pub fn has_nulls(&self) -> bool {
        self.nulls.is_some()
    }

    /// The null bitmap as `u64` words (little-endian bit order), if any row
    /// is NULL.
    pub fn null_words(&self) -> Option<&[u64]> {
        self.nulls.as_deref()
    }
}

/// A contiguous run of rows (`[start, end)`) stored column-wise.
#[derive(Debug, Clone)]
pub struct ColumnarChunk {
    /// Table-level index of the first row of the chunk.
    pub start: usize,
    /// One past the last row of the chunk.
    pub end: usize,
    columns: Vec<ColumnVector>,
}

impl ColumnarChunk {
    /// Number of rows in the chunk.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the chunk holds no rows.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The column vector at schema position `idx`.
    pub fn column(&self, idx: usize) -> &ColumnVector {
        &self.columns[idx]
    }
}

/// The columnar projection of a whole table: one chunk per zone-map block.
///
/// Chunks are stored behind `Arc` so that extending the projection after an
/// append (see [`ColumnarChunks::extend`]) reuses the untouched chunks
/// instead of re-encoding — only the trailing partial chunk is rebuilt and
/// new tail chunks are added.
#[derive(Debug, Clone)]
pub struct ColumnarChunks {
    block_size: usize,
    chunks: Vec<Arc<ColumnarChunk>>,
}

impl ColumnarChunks {
    /// Build the projection over `rows` with `block_size` rows per chunk
    /// (aligned with the table's zone-map blocks).
    pub fn build(schema: &Schema, rows: &[Row], block_size: usize) -> Self {
        assert!(block_size > 0, "chunk size must be positive");
        let mut out = ColumnarChunks {
            block_size,
            chunks: Vec::with_capacity(rows.len().div_ceil(block_size)),
        };
        out.append_chunks(schema, rows, 0);
        out
    }

    /// Extend the projection after rows were appended at the tail: `covered`
    /// is the row count it was built over. The (possibly partial) last chunk
    /// is re-encoded and new tail chunks are added; untouched chunks are
    /// shared with the previous projection. The result is value-identical to
    /// a from-scratch [`ColumnarChunks::build`] over all `rows`.
    pub fn extend(&mut self, schema: &Schema, rows: &[Row], covered: usize) {
        assert!(covered <= rows.len(), "extend cannot shrink a projection");
        let rebuilt_from = covered - (covered % self.block_size);
        self.chunks.retain(|c| c.end <= rebuilt_from);
        self.append_chunks(schema, rows, rebuilt_from);
    }

    /// Encode `rows[from..]` into chunks appended at the tail (`from` must
    /// be a multiple of the block size).
    fn append_chunks(&mut self, schema: &Schema, rows: &[Row], from: usize) {
        let arity = schema.arity();
        let mut start = from;
        while start < rows.len() {
            let end = (start + self.block_size).min(rows.len());
            let columns = (0..arity)
                .map(|c| build_column(&rows[start..end], c))
                .collect();
            self.chunks.push(Arc::new(ColumnarChunk {
                start,
                end,
                columns,
            }));
            start = end;
        }
    }

    /// Rows per chunk (matches the zone-map block size it was built with).
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// All chunks in table order.
    pub fn chunks(&self) -> &[Arc<ColumnarChunk>] {
        &self.chunks
    }

    /// The chunk containing table row `rid`, if in range.
    pub fn chunk_for(&self, rid: usize) -> Option<&ColumnarChunk> {
        self.chunks.get(rid / self.block_size).map(Arc::as_ref)
    }
}

/// Classify and pack one column of a row slice.
fn build_column(rows: &[Row], col: usize) -> ColumnVector {
    #[derive(PartialEq, Clone, Copy)]
    enum Kind {
        Unknown,
        Int,
        Float,
        Str,
        Bool,
        Mixed,
    }
    let mut kind = Kind::Unknown;
    let mut any_null = false;
    for row in rows {
        let k = match &row[col] {
            Value::Null => {
                any_null = true;
                continue;
            }
            Value::Int(_) => Kind::Int,
            Value::Float(_) => Kind::Float,
            Value::Str(_) => Kind::Str,
            Value::Bool(_) => Kind::Bool,
        };
        if kind == Kind::Unknown {
            kind = k;
        } else if kind != k && kind != Kind::Mixed {
            // Keep scanning: the null bitmap below needs every row seen.
            kind = Kind::Mixed;
        }
    }

    let nulls = if any_null {
        let mut words = vec![0u64; rows.len().div_ceil(64)];
        for (i, row) in rows.iter().enumerate() {
            if row[col].is_null() {
                words[i / 64] |= 1u64 << (i % 64);
            }
        }
        Some(words)
    } else {
        None
    };

    let data = match kind {
        Kind::Int => ColumnData::Int(
            rows.iter()
                .map(|r| match &r[col] {
                    Value::Int(i) => *i,
                    _ => 0, // NULL placeholder; masked by the bitmap
                })
                .collect(),
        ),
        Kind::Float => ColumnData::Float(
            rows.iter()
                .map(|r| match &r[col] {
                    Value::Float(f) => *f,
                    _ => 0.0,
                })
                .collect(),
        ),
        Kind::Bool => ColumnData::Bool(
            rows.iter()
                .map(|r| match &r[col] {
                    Value::Bool(b) => *b,
                    _ => false,
                })
                .collect(),
        ),
        Kind::Str => {
            let mut dict: Vec<String> = rows
                .iter()
                .filter_map(|r| match &r[col] {
                    Value::Str(s) => Some(s.clone()),
                    _ => None,
                })
                .collect();
            dict.sort_unstable();
            dict.dedup();
            let codes = rows
                .iter()
                .map(|r| match &r[col] {
                    Value::Str(s) => dict
                        .binary_search_by(|d| d.as_str().cmp(s))
                        .expect("in dict") as u32,
                    _ => 0,
                })
                .collect();
            ColumnData::Dict { dict, codes }
        }
        // All-NULL columns pack as Mixed so every accessor stays trivial.
        Kind::Unknown | Kind::Mixed => {
            ColumnData::Mixed(rows.iter().map(|r| r[col].clone()).collect())
        }
    };

    ColumnVector { nulls, data }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("i", DataType::Int),
            ("f", DataType::Float),
            ("s", DataType::Str),
            ("m", DataType::Float),
        ])
    }

    fn rows(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| {
                vec![
                    if i % 5 == 0 {
                        Value::Null
                    } else {
                        Value::Int(i as i64)
                    },
                    Value::Float(i as f64 / 2.0),
                    Value::Str(format!("s{}", i % 7)),
                    // Mixed-type column: alternating Int and Float.
                    if i % 2 == 0 {
                        Value::Int(i as i64)
                    } else {
                        Value::Float(i as f64)
                    },
                ]
            })
            .collect()
    }

    #[test]
    fn chunking_follows_block_size() {
        let rows = rows(250);
        let c = ColumnarChunks::build(&schema(), &rows, 100);
        assert_eq!(c.chunks().len(), 3);
        assert_eq!(c.chunks()[0].start, 0);
        assert_eq!(c.chunks()[0].end, 100);
        assert_eq!(c.chunks()[2].len(), 50);
        assert_eq!(c.chunk_for(150).unwrap().start, 100);
        assert!(c.chunk_for(999).is_none());
    }

    #[test]
    fn columns_classify_by_value_types() {
        let rows = rows(64);
        let c = ColumnarChunks::build(&schema(), &rows, 64);
        let chunk = &c.chunks()[0];
        assert!(matches!(chunk.column(0).data(), ColumnData::Int(_)));
        assert!(matches!(chunk.column(1).data(), ColumnData::Float(_)));
        assert!(matches!(chunk.column(2).data(), ColumnData::Dict { .. }));
        assert!(matches!(chunk.column(3).data(), ColumnData::Mixed(_)));
        assert!(chunk.column(0).has_nulls());
        assert!(chunk.column(0).is_null(0));
        assert!(!chunk.column(0).is_null(1));
        assert!(!chunk.column(1).has_nulls());
    }

    #[test]
    fn dictionary_codes_preserve_string_order() {
        let rows = rows(50);
        let c = ColumnarChunks::build(&schema(), &rows, 50);
        let ColumnData::Dict { dict, codes } = c.chunks()[0].column(2).data() else {
            panic!("expected dict column");
        };
        assert!(dict.windows(2).all(|w| w[0] < w[1]));
        for (i, row) in rows.iter().enumerate() {
            let Value::Str(s) = &row[2] else {
                unreachable!()
            };
            assert_eq!(&dict[codes[i] as usize], s);
        }
    }

    #[test]
    fn extend_shares_full_chunks_and_matches_fresh_build() {
        let all = rows(250);
        let mut c = ColumnarChunks::build(&schema(), &all[..130], 100);
        let first_chunk = Arc::clone(&c.chunks()[0]);
        c.extend(&schema(), &all, 130);
        let fresh = ColumnarChunks::build(&schema(), &all, 100);
        assert_eq!(c.chunks().len(), fresh.chunks().len());
        // The untouched full chunk is shared, not re-encoded.
        assert!(Arc::ptr_eq(&c.chunks()[0], &first_chunk));
        // Every chunk decodes to the same values as a fresh build.
        for (a, b) in c.chunks().iter().zip(fresh.chunks()) {
            assert_eq!((a.start, a.end), (b.start, b.end));
            for col in 0..4 {
                for i in 0..a.len() {
                    assert_eq!(a.column(col).is_null(i), b.column(col).is_null(i));
                }
                match (a.column(col).data(), b.column(col).data()) {
                    (ColumnData::Int(x), ColumnData::Int(y)) => assert_eq!(x, y),
                    (ColumnData::Float(x), ColumnData::Float(y)) => assert_eq!(x, y),
                    (ColumnData::Bool(x), ColumnData::Bool(y)) => assert_eq!(x, y),
                    (ColumnData::Mixed(x), ColumnData::Mixed(y)) => assert_eq!(x, y),
                    (
                        ColumnData::Dict {
                            dict: d1,
                            codes: c1,
                        },
                        ColumnData::Dict {
                            dict: d2,
                            codes: c2,
                        },
                    ) => {
                        assert_eq!(d1, d2);
                        assert_eq!(c1, c2);
                    }
                    (x, y) => panic!("chunk column kind diverged: {x:?} vs {y:?}"),
                }
            }
        }
    }

    #[test]
    fn all_null_column_is_mixed_with_full_bitmap() {
        let schema = Schema::from_pairs(&[("a", DataType::Int)]);
        let rows: Vec<Row> = (0..10).map(|_| vec![Value::Null]).collect();
        let c = ColumnarChunks::build(&schema, &rows, 4);
        for chunk in c.chunks() {
            let col = chunk.column(0);
            assert!(matches!(col.data(), ColumnData::Mixed(_)));
            for i in 0..chunk.len() {
                assert!(col.is_null(i));
            }
        }
    }
}
