//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build container has no crates.io registry cache, so the workspace
//! vendors this shim instead of the real `rand`. It implements exactly the
//! subset the PBDS workload generators use — `StdRng::seed_from_u64`,
//! `Rng::gen_range` over integer/float ranges, `Rng::gen`, `Rng::gen_bool` —
//! with a deterministic xoshiro256** generator, so datasets are reproducible
//! across runs and machines.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Sample uniformly from a range (`low..high` or `low..=high`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Sample a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A biased coin flip: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Seeding interface.
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges a value can be sampled from.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Types that can be sampled uniformly from a bounded range.
///
/// Mirrors rand's `SampleUniform` so `SampleRange` can be a single blanket
/// impl per range kind — that shape is what lets integer-literal ranges
/// (`rng.gen_range(1..51)`) infer their type from the surrounding arithmetic.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_between<R: RngCore>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_between(lo, hi, true, rng)
    }
}

/// Types with a standard uniform distribution (for [`Rng::gen`]).
pub trait Standard {
    /// Draw one sample.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

/// Map 64 random bits to a float in `[0, 1)` using the top 53 bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform integer in `[0, n)` by widening multiply (Lemire's method,
/// unbiased enough for synthetic data generation).
fn below<R: RngCore>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                let (lo, hi) = (lo as i128, hi as i128);
                let span = hi - lo + if inclusive { 1 } else { 0 };
                assert!(span > 0, "gen_range: empty range");
                if span > u64::MAX as i128 {
                    // Full-domain range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                (lo + below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore>(lo: f64, hi: f64, _inclusive: bool, rng: &mut R) -> f64 {
        assert!(lo < hi, "gen_range: empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_between<R: RngCore>(lo: f32, hi: f32, _inclusive: bool, rng: &mut R) -> f32 {
        assert!(lo < hi, "gen_range: empty range");
        lo + (unit_f64(rng.next_u64()) as f32) * (hi - lo)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> f32 {
        unit_f64(rng.next_u64()) as f32
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for i64 {
    fn sample<R: RngCore>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand`'s
    /// `StdRng`. Not cryptographically secure — fine for synthetic datasets.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-999..10_000i64);
            assert!((-999..10_000).contains(&v));
            let u = rng.gen_range(3..=9usize);
            assert!((3..=9).contains(&u));
            let f = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_and_bools() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut heads = 0usize;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            if rng.gen_bool(0.5) {
                heads += 1;
            }
        }
        assert!((3500..=6500).contains(&heads), "suspicious coin: {heads}");
    }

    #[test]
    fn range_distribution_covers_all_buckets() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut seen = [0usize; 13];
        for _ in 0..5_000 {
            seen[rng.gen_range(0..13usize)] += 1;
        }
        assert!(seen.iter().all(|&c| c > 0));
    }
}
