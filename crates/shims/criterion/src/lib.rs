//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build container has no crates.io registry cache, so the workspace
//! vendors this shim. It implements the subset of the criterion API the
//! PBDS benches use (`benchmark_group`, `bench_with_input`, `bench_function`,
//! `Bencher::iter`, `criterion_group!`/`criterion_main!`) with a simple
//! timing loop: a warm-up pass followed by `sample_size` measured samples,
//! reporting median/min/max per benchmark. No statistics, plots or baselines
//! — swap in the real criterion when a registry is available.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], matching `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n== {name}");
        let (sample_size, measurement_time, warm_up_time) =
            (self.sample_size, self.measurement_time, self.warm_up_time);
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
            measurement_time,
            warm_up_time,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        run_bench(
            &id.to_string(),
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            f,
        );
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Upper bound on total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up time before measuring.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Benchmark a closure over one input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_bench(
            &label,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            |b| f(b, input),
        );
        self
    }

    /// Benchmark a closure without an explicit input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_bench(
            &label,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            f,
        );
        self
    }

    /// End the group (printing is already done incrementally).
    pub fn finish(&mut self) {}
}

/// Identifier of one benchmark within a group: `function/parameter`.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Create an id from a function name and a parameter value.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }

    /// Create an id from a parameter value only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Passed to benchmark closures; runs the measured routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Bencher {
    /// Measure `routine`: warm up, then collect samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
        }
        let measure_start = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
            if measure_start.elapsed() > self.measurement_time {
                break;
            }
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    mut f: F,
) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
        warm_up_time,
        measurement_time,
    };
    f(&mut b);
    if b.samples.is_empty() {
        eprintln!("{label:<48} (no samples)");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let min = b.samples[0];
    let max = b.samples[b.samples.len() - 1];
    eprintln!(
        "{label:<48} median {median:>10.2?}  min {min:>10.2?}  max {max:>10.2?}  ({} samples)",
        b.samples.len()
    );
}

/// Collects benchmark functions into a runnable group, like criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running every group passed to it.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_test");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(50));
        let mut ran = 0usize;
        group.bench_with_input(BenchmarkId::new("noop", 1), &5u64, |b, &x| {
            b.iter(|| {
                ran += 1;
                x * 2
            })
        });
        group.finish();
        assert!(ran >= 3);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", "p").to_string(), "f/p");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
