//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build container has no crates.io registry cache, so the workspace
//! vendors this shim. It supports the subset the PBDS property tests use:
//! the `proptest!` macro with `#![proptest_config(...)]`, range and tuple
//! strategies, `any::<T>()`, `prop::collection::vec`, and the `prop_assert*`
//! macros. Inputs are drawn from a deterministic per-test RNG; there is no
//! shrinking — a failing case panics with the offending inputs printed.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Debug;
use std::ops::Range;

/// Configuration for one `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The RNG handed to strategies (re-exported so the macro can name it).
pub type TestRng = StdRng;

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Strategy for "any value of `T`" — see [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                let raw: u64 = rng.gen();
                raw as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Size specification for [`vec()`]: an exact size or a half-open range.
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `element` values with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The `proptest::prelude` glob import surface.
pub mod prelude {
    pub use crate::collection as prop_collection;
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The `prop::` module alias used by `prop::collection::vec(...)`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Deterministic seed derived from the test's name.
pub fn seed_for(name: &str) -> u64 {
    // FNV-1a.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Run `cases` samples of a property (used by the `proptest!` expansion).
pub fn run_cases<I: Debug>(
    name: &str,
    cases: u32,
    mut gen: impl FnMut(&mut TestRng) -> I,
    mut body: impl FnMut(&I),
) {
    let mut rng = TestRng::seed_from_u64(seed_for(name));
    for case in 0..cases {
        let input = gen(&mut rng);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&input)));
        if let Err(panic) = result {
            eprintln!("proptest '{name}' failed at case {case} with input: {input:#?}");
            std::panic::resume_unwind(panic);
        }
    }
}

/// Assert inside a property (panics; no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The `proptest!` test-definition macro.
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(
                stringify!($name),
                config.cases,
                |rng| ($($crate::Strategy::sample(&($strategy), rng),)+),
                |input| {
                    let ($(ref $arg,)+) = *input;
                    $(let $arg = ::std::clone::Clone::clone($arg);)+
                    $body
                },
            );
        }
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    // With a block-level config.
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    // Without a config: default.
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn addition_commutes(a in -1000i64..1000, b in -1000i64..1000) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(any::<u16>(), 3..10)) {
            prop_assert!((3..10).contains(&v.len()));
        }

        #[test]
        fn exact_vec_size(v in prop::collection::vec(any::<bool>(), 20)) {
            prop_assert_eq!(v.len(), 20);
        }

        #[test]
        fn tuples_compose(pair in (0i64..30, 1i64..100)) {
            prop_assert!(pair.0 < 30 && pair.1 >= 1);
        }
    }

    #[test]
    fn deterministic_seeding() {
        assert_eq!(crate::seed_for("x"), crate::seed_for("x"));
        assert_ne!(crate::seed_for("x"), crate::seed_for("y"));
    }
}
