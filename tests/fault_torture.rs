//! Fault-injection torture for the durability stack.
//!
//! A deterministic grid of **288 seeded fault schedules** (write faults:
//! 3 kinds × 3 file classes × 4 skip offsets × 6 seeds = 216; read
//! corruption: 3 file classes × 24 seeds = 72 — the floor asserted by
//! [`the_schedule_grid_meets_the_coverage_floor`] is 200) drives a durable
//! `PbdsServer` through a serve / mutate / checkpoint / crash / reopen cycle
//! with exactly one fault armed, and proves three invariants:
//!
//! 1. **Acked ⇒ durable.** Every mutation whose ticket resolved `Ok` is
//!    present after crash + reopen — a failed fsync never yields a silently
//!    acked-but-lost write.
//! 2. **Unacked ⇒ atomic.** A mutation whose ticket errored is either fully
//!    present or fully absent: the recovered state equals the shadow state
//!    for *some* subset of the errored mutations applied in submission
//!    order — never a torn half-mutation, never a reordering.
//! 3. **Replay is idempotent.** Reopening the same directory twice recovers
//!    byte-identical rows and the same replay count.
//!
//! Read corruption additionally proves fail-safe opening: a flipped bit in
//! the snapshot fails the open; in the WAL it either fails the open (a
//! complete frame with a bad checksum) or lands on a whole-record prefix (a
//! torn-shaped flip, indistinguishable from a crash) — never a garbled
//! state; in the catalog it is quarantined (renamed aside) and the server
//! comes up cold with full answers. And since a corrupt *read* never damages
//! the disk, a clean reopen recovers everything the damaged open detected.

use pbds_algebra::{col, lit, param, AggExpr, AggFunc, LogicalPlan, QueryTemplate};
use pbds_core::{HealthState, Mutation, PbdsServer, ServerConfig};
use pbds_persist::{
    FaultInjector, FaultIo, FaultKind, FaultSpec, FileClass, CATALOG_FILE, SNAPSHOT_FILE, WAL_FILE,
};
use pbds_storage::{DataType, Database, Row, Schema, TableBuilder, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// The schedule grid
// ---------------------------------------------------------------------------

const WRITE_KINDS: [FaultKind; 3] = [
    FaultKind::FsyncFail,
    FaultKind::ShortWrite,
    FaultKind::Enospc,
];
const CLASSES: [FileClass; 3] = [FileClass::Wal, FileClass::Snapshot, FileClass::Catalog];
const SKIPS: [u64; 4] = [0, 1, 2, 3];
const WRITE_SEEDS: u64 = 6;
const READ_SEEDS: u64 = 24;
const MUTATIONS_PER_SCHEDULE: usize = 8;

#[test]
fn the_schedule_grid_meets_the_coverage_floor() {
    let write = WRITE_KINDS.len() * CLASSES.len() * SKIPS.len() * WRITE_SEEDS as usize;
    let read = CLASSES.len() * READ_SEEDS as usize;
    assert!(
        write + read >= 200,
        "torture grid shrank below the 200-schedule floor: {} write + {} read",
        write,
        read
    );
}

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

/// Fresh scratch directory under `target/tmp` (never outside the repo).
fn test_dir(name: &str) -> PathBuf {
    static UNIQUE: AtomicU64 = AtomicU64::new(0);
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"))
        .join("fault_torture")
        .join(format!("{name}-{}", UNIQUE.fetch_add(1, Ordering::Relaxed)));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create test dir");
    dir
}

/// `r(k INT, grp INT, v INT)`, indexed on `k`, small blocks.
fn base_db() -> Database {
    let mut rng = StdRng::seed_from_u64(0xBA5E);
    let schema = Schema::from_pairs(&[
        ("k", DataType::Int),
        ("grp", DataType::Int),
        ("v", DataType::Int),
    ]);
    let mut b = TableBuilder::new("r", schema);
    b.block_size(16).index("k");
    for k in 0..48i64 {
        b.push(vec![
            Value::Int(k),
            Value::Int(k % 6),
            Value::Int(rng.gen_range(1..200i64)),
        ]);
    }
    let mut db = Database::new();
    db.add_table(b.build());
    db
}

fn having_template() -> QueryTemplate {
    QueryTemplate::new(
        "r-having",
        LogicalPlan::scan("r")
            .aggregate(
                vec!["grp"],
                vec![AggExpr::new(AggFunc::Sum, col("v"), "total")],
            )
            .filter(col("total").gt(param(0))),
    )
}

fn torture_config() -> ServerConfig {
    ServerConfig {
        capture_workers: 1,
        checkpoint_every: Some(3),
        ..ServerConfig::default()
    }
}

/// Deterministic mutation sequence for one schedule: mostly small appends,
/// some deletes (which may match nothing — a no-op that writes no WAL
/// record). Rows are baked in, so the live server and every shadow replayer
/// apply byte-identical mutations.
fn mutation_plan(seed: u64) -> Vec<Mutation> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x00AD_5EED);
    let mut next_k = 48i64;
    (0..MUTATIONS_PER_SCHEDULE)
        .map(|_| {
            if rng.gen_range(0..4u32) == 0 {
                let lo = rng.gen_range(1..180i64);
                Mutation::DeleteWhere(col("v").between(lit(lo), lit(lo + 25)))
            } else {
                let n = rng.gen_range(1..4usize);
                let rows: Vec<Row> = (0..n)
                    .map(|_| {
                        let k = next_k;
                        next_k += 1;
                        vec![
                            Value::Int(k),
                            Value::Int(rng.gen_range(0..6i64)),
                            Value::Int(rng.gen_range(1..200i64)),
                        ]
                    })
                    .collect();
                Mutation::Append(rows)
            }
        })
        .collect()
}

fn table_rows(server: &PbdsServer) -> Vec<Row> {
    server.db().table("r").unwrap().rows().to_vec()
}

/// The state after applying `mutations[i]` for every `include[i]`, in
/// submission order, to the base database — computed by an independent
/// in-memory server, so batch application on the live path is checked
/// against record-at-a-time application here.
fn shadow_rows(mutations: &[Mutation], include: &[bool]) -> Vec<Row> {
    let config = ServerConfig {
        capture_workers: 1,
        ..ServerConfig::default()
    };
    let shadow = PbdsServer::new(Arc::new(base_db()), config);
    for (m, inc) in mutations.iter().zip(include) {
        if *inc {
            shadow.apply_mutation("r", m.clone()).unwrap();
        }
    }
    table_rows(&shadow)
}

/// Wait (bounded) for the janitor to repair a degraded server, so most
/// schedules continue writing after the fault; schedules whose fault fires
/// late still crash mid-repair, covering that window too.
fn await_settled(server: &PbdsServer) {
    let deadline = Instant::now() + Duration::from_secs(2);
    while server.health() > HealthState::Healthy && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
}

// ---------------------------------------------------------------------------
// Write-fault schedules
// ---------------------------------------------------------------------------

fn run_write_schedule(kind: FaultKind, class: FileClass, skip: u64, seed: u64) {
    let dir = test_dir("write");
    let config = torture_config();
    let injector = FaultInjector::new(seed);
    let io = Arc::new(FaultIo::new(Arc::clone(&injector)));
    let mutations = mutation_plan(seed);
    let ctx = format!("{kind:?} on {class:?}, skip {skip}, seed {seed}");

    let acked: Vec<bool> = {
        let server = PbdsServer::create_with_io(&dir, Arc::new(base_db()), config, io).unwrap();
        let session = server.session();
        session
            .serve(&having_template(), &[Value::Int(600)])
            .unwrap();
        server.drain();
        // Arm only now: the schedule targets the serving phase, not create.
        injector.inject(FaultSpec { kind, class, skip });
        let mut acked = Vec::new();
        for (i, m) in mutations.iter().enumerate() {
            let r = server.apply_mutation("r", m.clone());
            if r.is_err() {
                await_settled(&server);
            }
            acked.push(r.is_ok());
            if i == 3 {
                // May fail (the fault may target it); callers are told.
                let _ = server.checkpoint();
            }
        }
        acked
        // crash: drop without shutdown, no final checkpoint
    };

    // Invariants 1 + 2: the recovered state must contain every acked
    // mutation and an all-or-nothing subset of the errored ones, in order.
    let reopened = PbdsServer::open(&dir, config)
        .unwrap_or_else(|e| panic!("{ctx}: reopen after crash failed: {e}"));
    let rows = table_rows(&reopened);
    let replayed = reopened.recovery_report().unwrap().wal_replayed;
    drop(reopened);

    let errored: Vec<usize> = acked
        .iter()
        .enumerate()
        .filter(|(_, ok)| !**ok)
        .map(|(i, _)| i)
        .collect();
    assert!(
        errored.len() <= 6,
        "{ctx}: implausibly many errored mutations: {errored:?}"
    );
    let matched = (0u32..1 << errored.len()).any(|mask| {
        let mut include = acked.clone();
        for (bit, &ix) in errored.iter().enumerate() {
            if mask & (1 << bit) != 0 {
                include[ix] = true;
            }
        }
        shadow_rows(&mutations, &include) == rows
    });
    assert!(
        matched,
        "{ctx}: recovered state matches no acked-plus-subset-of-errored shadow \
         (acked {acked:?}, fired {:?})",
        injector.fired()
    );

    // Invariant 3: replay is idempotent.
    let again = PbdsServer::open(&dir, config)
        .unwrap_or_else(|e| panic!("{ctx}: second reopen failed: {e}"));
    assert_eq!(table_rows(&again), rows, "{ctx}: second replay diverged");
    assert_eq!(
        again.recovery_report().unwrap().wal_replayed,
        replayed,
        "{ctx}: replay count changed between reopens"
    );
}

fn drive_write_kind(kind_ix: usize) {
    let kind = WRITE_KINDS[kind_ix];
    for (class_ix, class) in CLASSES.iter().enumerate() {
        for &skip in &SKIPS {
            for s in 0..WRITE_SEEDS {
                let raw = ((kind_ix as u64) << 24) | ((class_ix as u64) << 16) | (skip << 8) | s;
                run_write_schedule(kind, *class, skip, raw.wrapping_mul(0x9E37) + 17);
            }
        }
    }
}

#[test]
fn torture_failed_fsyncs_never_lose_acked_mutations() {
    drive_write_kind(0);
}

#[test]
fn torture_short_writes_never_tear_a_mutation() {
    drive_write_kind(1);
}

#[test]
fn torture_enospc_fails_cleanly_and_recovers() {
    drive_write_kind(2);
}

// ---------------------------------------------------------------------------
// Read-corruption schedules
// ---------------------------------------------------------------------------

struct ReadFixture {
    dir: PathBuf,
    /// `prefix_rows[i]`: rows after the first `i` mutations.
    prefix_rows: Vec<Vec<Row>>,
    config: ServerConfig,
}

/// One durable directory crashed with a snapshot covering the first four
/// mutations, a non-empty persisted catalog, and the last four mutations
/// only in the WAL — so each file class has real content to corrupt.
fn build_read_fixture() -> ReadFixture {
    let dir = test_dir("read-fixture");
    let config = ServerConfig {
        capture_workers: 1,
        checkpoint_every: None,
        ..ServerConfig::default()
    };
    let mutations = mutation_plan(0xF1C5);
    let server = PbdsServer::create(&dir, Arc::new(base_db()), config).unwrap();
    let mut prefix_rows = vec![table_rows(&server)];
    for (i, m) in mutations.iter().enumerate() {
        server.apply_mutation("r", m.clone()).unwrap();
        prefix_rows.push(table_rows(&server));
        if i == 3 {
            let session = server.session();
            session
                .serve(&having_template(), &[Value::Int(600)])
                .unwrap();
            server.drain();
            server.checkpoint().unwrap();
        }
    }
    drop(server); // crash: the tail mutations live only in the WAL
    ReadFixture {
        dir,
        prefix_rows,
        config,
    }
}

fn run_read_schedule(class: FileClass, seed: u64, fixture: &ReadFixture) {
    let dir = test_dir("read");
    for f in [SNAPSHOT_FILE, CATALOG_FILE, WAL_FILE] {
        fs::copy(fixture.dir.join(f), dir.join(f)).unwrap();
    }
    let config = fixture.config;
    let full = fixture.prefix_rows.last().unwrap();
    let ctx = format!("ReadCorrupt on {class:?}, seed {seed}");

    let injector = FaultInjector::new(seed);
    injector.inject(FaultSpec {
        kind: FaultKind::ReadCorrupt,
        class,
        skip: 0,
    });
    let io = Arc::new(FaultIo::new(Arc::clone(&injector)));
    let result = PbdsServer::open_with_io(&dir, config, io);
    assert_eq!(
        injector.armed_remaining(),
        0,
        "{ctx}: the open never read the target file"
    );

    // What the damaged open was allowed to do, per file class.
    let mut damaged_rows: Option<Vec<Row>> = None;
    match class {
        FileClass::Snapshot => {
            assert!(
                result.is_err(),
                "{ctx}: a corrupt snapshot read must fail the open, not serve wrong answers"
            );
        }
        FileClass::Catalog => {
            let server = result.unwrap_or_else(|e| {
                panic!("{ctx}: catalog corruption must quarantine, not abort the open: {e}")
            });
            let report = server.recovery_report().unwrap();
            assert!(report.catalog_quarantined, "{ctx}: {report:?}");
            assert_eq!(report.catalog_imported, 0, "{ctx}: {report:?}");
            assert_eq!(server.catalog().stored_sketches(), 0, "{ctx}");
            assert_eq!(
                &table_rows(&server),
                full,
                "{ctx}: quarantine changed answers"
            );
            drop(server);
            assert!(
                dir.join("catalog.pbds.quarantined").exists(),
                "{ctx}: quarantined catalog not preserved for inspection"
            );
            assert!(!dir.join(CATALOG_FILE).exists(), "{ctx}");
        }
        FileClass::Wal => match result {
            // A complete frame with a failing checksum: detected, fail-safe.
            Err(_) => {}
            // A torn-shaped flip (a length prefix running past EOF) is
            // indistinguishable from a crash; recovery may truncate, but
            // only ever onto a whole-record prefix state.
            Ok(server) => {
                let rows = table_rows(&server);
                assert!(
                    fixture.prefix_rows.contains(&rows),
                    "{ctx}: recovered a state no whole-record prefix produces"
                );
                damaged_rows = Some(rows);
            }
        },
        FileClass::Other => unreachable!(),
    }

    // A corrupt read never damages the disk: the clean reopen must succeed
    // and lose nothing the damaged open did not *legitimately* truncate.
    let clean = PbdsServer::open(&dir, config)
        .unwrap_or_else(|e| panic!("{ctx}: clean reopen failed: {e}"));
    let clean_rows = table_rows(&clean);
    match class {
        FileClass::Wal => match &damaged_rows {
            // The damaged open truncated a torn-shaped tail on disk; that
            // truncation must at least be stable (idempotent replay).
            Some(rows) => assert_eq!(&clean_rows, rows, "{ctx}: post-truncation replay diverged"),
            // Detected corruption must have left the file untouched.
            None => assert_eq!(
                &clean_rows, full,
                "{ctx}: a detected corrupt read still modified the WAL"
            ),
        },
        FileClass::Catalog => {
            assert_eq!(&clean_rows, full, "{ctx}: clean reopen lost acked state");
            let report = clean.recovery_report().unwrap();
            assert!(
                !report.catalog_quarantined,
                "{ctx}: a missing (already-quarantined) catalog is a cold start, not damage"
            );
            assert_eq!(report.catalog_imported, 0, "{ctx}: {report:?}");
        }
        _ => assert_eq!(&clean_rows, full, "{ctx}: clean reopen lost acked state"),
    }
}

#[test]
fn torture_read_corruption_fails_safe_and_never_damages_the_disk() {
    let fixture = build_read_fixture();
    for (class_ix, class) in CLASSES.iter().enumerate() {
        for s in 0..READ_SEEDS {
            let seed = ((class_ix as u64) << 32) | 0x00C0_0000 | (s.wrapping_mul(7) + 1);
            run_read_schedule(*class, seed, &fixture);
        }
    }
}
