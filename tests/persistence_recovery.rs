//! Crash-recovery correctness for the durability layer.
//!
//! Three guarantees are proven here, end to end through `PbdsServer`:
//!
//! 1. **Torn-tail recovery lands on the longest whole-record prefix.** A
//!    generated mutation/query interleaving is logged to the WAL; the log is
//!    then truncated at *every byte prefix* (simulating a crash mid-append)
//!    and reopened. The recovered database must be byte-identical to the
//!    state after exactly the mutations whose records survived whole — no
//!    more, no fewer — and the row-at-a-time vs vectorized oracle must agree
//!    on the recovered state (stale derived artifacts would break it).
//! 2. **The catalog is warm across restarts, and only with epoch-valid
//!    entries.** A server that served a Zipf stream, checkpointed and was
//!    reopened serves the same stream with catalog hits from the first
//!    repeated template and never pays capture again; every imported entry's
//!    capture epochs match the recovered tables exactly.
//! 3. **A stale persisted catalog cannot poison recovery.** If the catalog
//!    file lags the snapshot (the crash window between the two renames), its
//!    entries are dropped on import, never offered.

use pbds_algebra::{col, lit, param, AggExpr, AggFunc, LogicalPlan, QueryTemplate};
use pbds_core::{Mutation, PbdsServer, ServerConfig};
use pbds_exec::{Engine, EngineProfile};
use pbds_persist::{read_records, write_snapshot, SNAPSHOT_FILE, WAL_FILE};
use pbds_storage::{DataType, Database, Row, Schema, TableBuilder, Value};
use pbds_workloads::stream::{zipf_stream, StreamSpec, TemplatePool};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

/// Fresh scratch directory under `target/tmp` (never outside the repo).
fn test_dir(name: &str) -> PathBuf {
    static UNIQUE: AtomicU64 = AtomicU64::new(0);
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR"))
        .join("persistence_recovery")
        .join(format!("{name}-{}", UNIQUE.fetch_add(1, Ordering::Relaxed)));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create test dir");
    dir
}

/// `r(k INT, grp INT, v INT)`, indexed on `k`, small blocks, positive `v`.
fn base_db(seed: u64, rows: usize) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = Schema::from_pairs(&[
        ("k", DataType::Int),
        ("grp", DataType::Int),
        ("v", DataType::Int),
    ]);
    let mut b = TableBuilder::new("r", schema);
    b.block_size(32).index("k");
    for i in 0..rows {
        b.push(random_row(&mut rng, i as i64));
    }
    let mut db = Database::new();
    db.add_table(b.build());
    db
}

fn random_row(rng: &mut StdRng, k: i64) -> Row {
    vec![
        Value::Int(k),
        Value::Int(rng.gen_range(0..10i64)),
        Value::Int(rng.gen_range(1..400i64)),
    ]
}

fn having_template() -> QueryTemplate {
    QueryTemplate::new(
        "r-having",
        LogicalPlan::scan("r")
            .aggregate(
                vec!["grp"],
                vec![AggExpr::new(AggFunc::Sum, col("v"), "total")],
            )
            .filter(col("total").gt(param(0))),
    )
}

/// Queries exercising every scan access path on the recovered state.
fn query_family() -> Vec<LogicalPlan> {
    vec![
        LogicalPlan::scan("r"),
        LogicalPlan::scan("r").filter(col("k").between(lit(20), lit(120))),
        LogicalPlan::scan("r").filter(col("grp").eq(lit(3)).and(col("v").gt(lit(100)))),
        LogicalPlan::scan("r")
            .aggregate(
                vec!["grp"],
                vec![AggExpr::new(AggFunc::Sum, col("v"), "total")],
            )
            .filter(col("total").gt(lit(1_500))),
    ]
}

/// Row-vs-vectorized oracle on one database: both scan paths must return
/// byte-identical rows (a stale zone map / chunk projection / rid list in a
/// restored table would diverge immediately), and both must match `expect`.
fn assert_oracle_agrees(db: &Database, expect: &Database, ctx: &str) {
    let vectorized = Engine::new(EngineProfile::Indexed);
    let row_path = Engine::new(EngineProfile::Indexed).with_vectorization(false);
    for (qi, plan) in query_family().iter().enumerate() {
        let vec_out = vectorized.execute(db, plan).unwrap().relation;
        let row_out = row_path.execute(db, plan).unwrap().relation;
        assert_eq!(
            vec_out, row_out,
            "{ctx}: query #{qi} diverged between scan paths on the recovered db"
        );
        let expected = vectorized.execute(expect, plan).unwrap().relation;
        assert_eq!(vec_out, expected, "{ctx}: query #{qi} wrong result");
    }
}

/// Assert every stored catalog entry's capture epochs match `db` exactly.
fn assert_catalog_epoch_valid(server: &PbdsServer, ctx: &str) {
    let db = server.db();
    for entry in server.catalog().export().entries {
        for (table, epoch) in &entry.capture_epochs {
            assert_eq!(
                db.table(table).unwrap().data_epoch(),
                *epoch,
                "{ctx}: catalog entry for template {} is epoch-stale on {table}",
                entry.template_key
            );
        }
    }
}

/// A mutation step generated by the property test.
#[derive(Debug, Clone)]
enum Op {
    Append { count: usize, seed: u64 },
    Delete { lo: i64, width: i64 },
}

fn decode_op((kind, seed, x): (u8, u64, i64)) -> Op {
    if kind == 0 {
        Op::Append {
            count: (seed % 24) as usize + 1,
            seed,
        }
    } else {
        Op::Delete { lo: x, width: 30 }
    }
}

fn to_mutation(op: &Op, next_k: &mut i64) -> Mutation {
    match op {
        Op::Append { count, seed } => {
            let mut rng = StdRng::seed_from_u64(*seed);
            let rows: Vec<Row> = (0..*count)
                .map(|i| random_row(&mut rng, *next_k + i as i64))
                .collect();
            *next_k += *count as i64;
            Mutation::Append(rows)
        }
        Op::Delete { lo, width } => {
            Mutation::DeleteWhere(col("v").between(lit(*lo), lit(*lo + *width)))
        }
    }
}

// ---------------------------------------------------------------------------
// 1. Torn-tail WAL recovery at every byte prefix
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Write a checkpoint, log a random mutation/query interleaving to the
    /// WAL, then truncate the log at **every byte prefix** and reopen: the
    /// recovered state must equal the state after exactly the whole records
    /// in the prefix (rows byte-identical, scan paths agreeing), and every
    /// imported catalog entry must be epoch-valid.
    #[test]
    fn torn_wal_recovers_longest_whole_record_prefix(
        seed in 0u64..1_000_000,
        raw_ops in prop::collection::vec((0u8..2, 0u64..1_000_000, 1i64..350), 1..4),
    ) {
        let dir = test_dir("torn-wal");
        let config = ServerConfig {
            checkpoint_every: None, // everything after the checkpoint stays in the WAL
            ..ServerConfig::default()
        };
        let template = having_template();
        let mut next_k = 150i64;
        // `states[i]`: the database after `i` logged mutations; `bounds[i]`:
        // the WAL length at that point (measured, not parsed — the recovery
        // assertion must not trust the parser it is testing).
        let mut states: Vec<Arc<Database>> = Vec::new();
        let mut bounds: Vec<u64> = Vec::new();
        {
            let server = PbdsServer::create(
                &dir,
                Arc::new(base_db(seed, 150)),
                config,
            ).unwrap();
            let session = server.session();
            // Warm the catalog so recovery has entries to validate.
            session.serve(&template, &[Value::Int(4_000)]).unwrap();
            server.drain();
            server.checkpoint().unwrap();
            states.push(server.db());
            bounds.push(fs::metadata(dir.join(WAL_FILE)).unwrap().len());
            for (i, raw) in raw_ops.iter().copied().enumerate() {
                let op = decode_op(raw);
                server.apply_mutation("r", to_mutation(&op, &mut next_k)).unwrap();
                // Interleave queries so catalog maintenance runs mid-log.
                if i % 2 == 0 {
                    session.serve(&template, &[Value::Int(4_500)]).unwrap();
                }
                states.push(server.db());
                bounds.push(fs::metadata(dir.join(WAL_FILE)).unwrap().len());
            }
            server.drain();
            drop(server); // crash: no shutdown, no checkpoint
        }

        let wal_bytes = fs::read(dir.join(WAL_FILE)).unwrap();
        prop_assert_eq!(*bounds.last().unwrap() as usize, wal_bytes.len());
        // One recovery directory reused across prefixes; snapshot + catalog
        // are fixed, only the WAL prefix varies.
        let rec = test_dir("torn-wal-recovery");
        for f in ["snapshot.pbds", "catalog.pbds"] {
            fs::copy(dir.join(f), rec.join(f)).unwrap();
        }
        for cut in 0..=wal_bytes.len() {
            fs::write(rec.join(WAL_FILE), &wal_bytes[..cut]).unwrap();
            let whole = bounds.iter().filter(|&&b| b <= cut as u64).count().saturating_sub(1);
            let server = PbdsServer::open(&rec, config).unwrap();
            let report = server.recovery_report().unwrap();
            let ctx = format!("seed {seed}, cut {cut} ({whole} whole records)");
            prop_assert_eq!(report.wal_replayed, whole, "{}", &ctx);
            prop_assert_eq!(report.catalog_dropped, 0, "{}", &ctx);
            prop_assert!(report.catalog_imported >= 1, "{}", &ctx);
            let expected = &states[whole];
            prop_assert_eq!(
                server.db().table("r").unwrap().rows(),
                expected.table("r").unwrap().rows(),
                "{}: recovered rows differ from the longest-whole-prefix state",
                &ctx
            );
            assert_catalog_epoch_valid(&server, &ctx);
            // The full oracle is expensive; run it where the prefix ends on
            // a record boundary (every distinct recovered state is covered)
            // and on the final torn prefix.
            if bounds.contains(&(cut as u64)) || cut == wal_bytes.len() {
                assert_oracle_agrees(&server.db(), expected, &ctx);
                // Serving the recovered state matches plain execution.
                let served = server
                    .session()
                    .serve(&template, &[Value::Int(4_500)])
                    .unwrap();
                let plain = Engine::new(EngineProfile::Indexed)
                    .execute(&server.db(), &template.instantiate(&[Value::Int(4_500)]))
                    .unwrap();
                prop_assert!(
                    served.relation.bag_eq(&plain.relation),
                    "{}: served result diverged after recovery",
                    &ctx
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// 2. Warm catalog across restart on a Zipf stream
// ---------------------------------------------------------------------------

#[test]
fn reopened_server_serves_zipf_stream_with_warm_catalog() {
    let dir = test_dir("zipf-warm");
    let config = ServerConfig::default();
    let template = having_template();
    let pool = TemplatePool::new(
        template.clone(),
        (0..12).map(|i| vec![Value::Int(3_800 + i * 120)]).collect(),
    );
    let stream = zipf_stream(
        std::slice::from_ref(&pool),
        &StreamSpec {
            queries: 50,
            skew: 1.1,
            seed: 11,
        },
    );

    // Cold run: serve the stream, draining after each query so captures
    // land deterministically.
    let cold_actions: Vec<_>;
    {
        let server = PbdsServer::create(&dir, Arc::new(base_db(7, 1_500)), config).unwrap();
        let session = server.session();
        cold_actions = stream
            .iter()
            .map(|(t, b)| {
                let served = session.serve(t, b).unwrap();
                if served.capture_enqueued {
                    server.drain();
                }
                served.record.action
            })
            .collect();
        let (cold_captures, _) = server.capture_totals();
        assert!(cold_captures > 0, "cold run must pay capture at least once");
        server.shutdown().unwrap();
    }

    // Warm run: same stream on the reopened server.
    let server = PbdsServer::open(&dir, config).unwrap();
    let report = server.recovery_report().unwrap();
    assert!(report.catalog_imported > 0, "{report:?}");
    assert_eq!(report.catalog_dropped, 0, "{report:?}");
    assert_catalog_epoch_valid(&server, "warm reopen");
    let session = server.session();
    let engine = Engine::new(EngineProfile::Indexed);
    let mut warm_actions = Vec::new();
    for (t, b) in &stream {
        let served = session.serve(t, b).unwrap();
        assert!(
            !served.capture_enqueued,
            "warm start recaptured binding {b:?}"
        );
        let plain = engine.execute(&server.db(), &t.instantiate(b)).unwrap();
        assert!(served.relation.bag_eq(&plain.relation));
        warm_actions.push(served.record.action);
    }
    let (warm_captures, _) = server.capture_totals();
    assert_eq!(warm_captures, 0, "warm start must not pay capture");

    use pbds_core::tuning::Action;
    let first_hit = |actions: &[Action]| actions.iter().position(|a| *a == Action::UseSketch);
    let cold_first = first_hit(&cold_actions);
    let warm_first = first_hit(&warm_actions).expect("warm run never hit the catalog");
    // The cold run cannot hit before its first capture lands; the warm run
    // hits from the first repeated template (query one of this stream).
    assert!(
        cold_first.is_none_or(|c| warm_first < c) || warm_first == 0,
        "warm first hit at {warm_first}, cold at {cold_first:?}"
    );
    assert_eq!(warm_first, 0, "warm catalog must hit from the first query");
}

// ---------------------------------------------------------------------------
// 3. A catalog file lagging the snapshot is dropped, never served
// ---------------------------------------------------------------------------

#[test]
fn catalog_lagging_the_snapshot_is_dropped_on_import() {
    let dir = test_dir("stale-catalog");
    let template = having_template();
    let config = ServerConfig::default();
    {
        let server = PbdsServer::create(&dir, Arc::new(base_db(3, 800)), config).unwrap();
        server
            .session()
            .serve(&template, &[Value::Int(10_000)])
            .unwrap();
        server.drain();
        assert_eq!(server.catalog().stored_sketches(), 1);
        let final_db = server.db();
        server.shutdown().unwrap();

        // Simulate the crash window where a *newer* snapshot replaced the
        // old one but the catalog file was not rewritten: mutate the
        // database and write the snapshot directly, leaving catalog.pbds
        // (and its now-stale capture epochs) behind.
        let mut db = (*final_db).clone();
        db.append_rows(
            "r",
            vec![vec![Value::Int(800), Value::Int(1), Value::Int(5)]],
        )
        .unwrap();
        write_snapshot(&dir.join(SNAPSHOT_FILE), &db, 0).unwrap();
    }

    let server = PbdsServer::open(&dir, config).unwrap();
    let report = server.recovery_report().unwrap();
    assert_eq!(report.catalog_imported, 0, "{report:?}");
    assert_eq!(report.catalog_dropped, 1, "{report:?}");
    assert_eq!(server.catalog().stored_sketches(), 0);
    // Serving is cold but correct; the first miss re-captures.
    let served = server
        .session()
        .serve(&template, &[Value::Int(10_000)])
        .unwrap();
    let plain = Engine::new(EngineProfile::Indexed)
        .execute(&server.db(), &template.instantiate(&[Value::Int(10_000)]))
        .unwrap();
    assert!(served.relation.bag_eq(&plain.relation));
}

// ---------------------------------------------------------------------------
// 4. WAL sequence numbers make replay idempotent against the snapshot
// ---------------------------------------------------------------------------

#[test]
fn snapshot_written_after_wal_records_skips_them_on_replay() {
    let dir = test_dir("seq-idempotent");
    let config = ServerConfig {
        checkpoint_every: None,
        ..ServerConfig::default()
    };
    let expected;
    {
        let server = PbdsServer::create(&dir, Arc::new(base_db(5, 400)), config).unwrap();
        for i in 0..3i64 {
            server
                .apply_mutation(
                    "r",
                    Mutation::Append(vec![vec![
                        Value::Int(400 + i),
                        Value::Int(1),
                        Value::Int(9),
                    ]]),
                )
                .unwrap();
        }
        expected = server.db().table("r").unwrap().rows().to_vec();
        // Crash window: the checkpoint wrote the snapshot (covering all 3
        // records) but died before truncating the WAL.
        write_snapshot(&dir.join(SNAPSHOT_FILE), &server.db(), 3).unwrap();
        drop(server);
    }
    let (records, _) = read_records(&dir.join(WAL_FILE)).unwrap();
    assert_eq!(records.len(), 3, "all three records still in the WAL");

    let server = PbdsServer::open(&dir, config).unwrap();
    assert_eq!(
        server.recovery_report().unwrap().wal_replayed,
        0,
        "records covered by the snapshot must not be double-applied"
    );
    assert_eq!(server.db().table("r").unwrap().rows(), &expected[..]);
    assert_eq!(server.db().table("r").unwrap().len(), 403);
}

// ---------------------------------------------------------------------------
// 5. Group commit: batched WAL appends keep every recovery guarantee
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Pipeline a whole mutation sequence through `submit_mutation` (so the
    /// commit thread writes multi-record batches under single fsyncs), crash,
    /// then truncate the WAL at **every byte prefix**: recovery must land on
    /// a whole-*record* prefix — never a half-batch state and never a state
    /// no ticket could have observed — and the full log must replay to the
    /// exact database the live server acknowledged.
    #[test]
    fn torn_wal_from_batched_commits_recovers_whole_record_prefixes(
        seed in 0u64..1_000_000,
        raw_ops in prop::collection::vec((0u8..2, 0u64..1_000_000, 1i64..350), 6..16),
    ) {
        let dir = test_dir("torn-batched");
        let config = ServerConfig {
            checkpoint_every: None,
            ..ServerConfig::default()
        };
        // Build the mutation list once; the live server and the shadow
        // replayer both consume clones of the same deterministic sequence.
        let mut next_k = 150i64;
        let mutations: Vec<Mutation> = raw_ops
            .iter()
            .copied()
            .map(|raw| to_mutation(&decode_op(raw), &mut next_k))
            .collect();
        let outcomes: Vec<_>;
        let live_rows;
        {
            let server =
                PbdsServer::create(&dir, Arc::new(base_db(seed, 150)), config).unwrap();
            // Submit everything before waiting on anything: while the commit
            // thread fsyncs one batch, the rest of the queue accumulates
            // into the next one.
            let tickets: Vec<_> = mutations
                .iter()
                .map(|m| server.submit_mutation("r", m.clone()))
                .collect();
            outcomes = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
            live_rows = server.db().table("r").unwrap().rows().to_vec();
            drop(server); // crash: no shutdown, no checkpoint
        }
        // Effective mutations got dense WAL sequences in submission order;
        // no-ops (deletes matching nothing) were never logged.
        let logged: Vec<&Mutation> = outcomes
            .iter()
            .zip(&mutations)
            .filter(|(o, _)| o.wal_seq.is_some())
            .map(|(_, m)| m)
            .collect();
        let seqs: Vec<u64> = outcomes.iter().filter_map(|o| o.wal_seq).collect();
        prop_assert_eq!(&seqs, &(1..=logged.len() as u64).collect::<Vec<_>>());

        // Shadow states: `states[i]` is the database after the first `i`
        // logged records, computed one record at a time — exactly what
        // recovery replays, independent of how the live server batched.
        let shadow = PbdsServer::new(Arc::new(base_db(seed, 150)), config);
        let mut states: Vec<Arc<Database>> = vec![shadow.db()];
        for m in &logged {
            shadow.apply_mutation("r", (*m).clone()).unwrap();
            states.push(shadow.db());
        }
        // Batch application must equal record-at-a-time application.
        prop_assert_eq!(
            &live_rows,
            states.last().unwrap().table("r").unwrap().rows(),
            "live batched state diverged from sequential replay"
        );

        let wal_bytes = fs::read(dir.join(WAL_FILE)).unwrap();
        let rec = test_dir("torn-batched-recovery");
        for f in ["snapshot.pbds", "catalog.pbds"] {
            fs::copy(dir.join(f), rec.join(f)).unwrap();
        }
        let mut prev = 0usize;
        for cut in 0..=wal_bytes.len() {
            fs::write(rec.join(WAL_FILE), &wal_bytes[..cut]).unwrap();
            let server = PbdsServer::open(&rec, config).unwrap();
            let replayed = server.recovery_report().unwrap().wal_replayed;
            let ctx = format!("seed {seed}, cut {cut} ({replayed} whole records)");
            prop_assert!(replayed >= prev, "{}: replay count went backwards", &ctx);
            prop_assert!(replayed <= logged.len(), "{}", &ctx);
            prop_assert_eq!(
                server.db().table("r").unwrap().rows(),
                states[replayed].table("r").unwrap().rows(),
                "{}: recovered state is not the whole-record prefix state",
                &ctx
            );
            prev = replayed;
        }
        prop_assert_eq!(prev, logged.len(), "the full WAL must replay every acked record");
    }
}

/// Every acknowledged mutation of a group-committed burst survives a crash
/// that happens *after* the acks but *before* any checkpoint: the on-disk
/// snapshot still predates the burst, so the recovered state comes entirely
/// from the batched WAL records.
#[test]
fn acknowledged_batches_survive_a_crash_before_any_checkpoint() {
    let dir = test_dir("ack-before-checkpoint");
    let config = ServerConfig {
        checkpoint_every: None,
        ..ServerConfig::default()
    };
    let expected;
    {
        let server = PbdsServer::create(&dir, Arc::new(base_db(11, 200)), config).unwrap();
        let tickets: Vec<_> = (0..64i64)
            .map(|i| {
                server.submit_mutation(
                    "r",
                    Mutation::Append(vec![vec![
                        Value::Int(200 + i),
                        Value::Int(i % 10),
                        Value::Int(5 + i),
                    ]]),
                )
            })
            .collect();
        for t in tickets {
            t.wait().unwrap(); // acknowledged: durable by contract
        }
        let stats = server.commit_stats();
        assert_eq!(stats.mutations_committed, 64);
        assert!(
            stats.max_batch > 1,
            "a pipelined burst of 64 must group-commit: {stats:?}"
        );
        assert!(
            stats.fsyncs < 64,
            "group commit must amortize fsyncs: {stats:?}"
        );
        expected = server.db().table("r").unwrap().rows().to_vec();
        drop(server); // crash between ack and checkpoint
    }
    // The snapshot on disk is still the create-time one: nothing of the
    // burst was checkpointed.
    let (snap_db, _) = pbds_persist::read_snapshot(&dir.join(SNAPSHOT_FILE)).unwrap();
    assert_eq!(snap_db.table("r").unwrap().len(), 200);

    let server = PbdsServer::open(&dir, config).unwrap();
    assert_eq!(server.recovery_report().unwrap().wal_replayed, 64);
    assert_eq!(server.db().table("r").unwrap().rows(), &expected[..]);
    assert_oracle_agrees(&server.db(), &server.db().clone(), "acked-batch recovery");
}
