//! Semantic validation of the static safety and reuse checks: whenever the
//! checker claims "safe" (resp. "reusable"), evaluating the query over the
//! sketch instance must return the original answer on randomized databases.
//! This exercises Theorem 2 and Theorem 3 end-to-end.

use pbds_algebra::{col, lit, param, AggExpr, AggFunc, LogicalPlan, QueryTemplate, SortKey};
use pbds_core::{PartitionAttr, Pbds};
use pbds_provenance::restrict_database;
use pbds_storage::{DataType, Database, Schema, TableBuilder, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_db(seed: u64, rows: usize) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = Schema::from_pairs(&[
        ("id", DataType::Int),
        ("grp", DataType::Int),
        ("amount", DataType::Int),
        ("flag", DataType::Int),
    ]);
    let mut b = TableBuilder::new("fact", schema);
    b.block_size(64).index("grp");
    for i in 0..rows {
        b.push(vec![
            Value::Int(i as i64),
            Value::Int(rng.gen_range(0..25)),
            Value::Int(rng.gen_range(1..100)), // strictly positive
            Value::Int(rng.gen_range(0..2)),
        ]);
    }
    let mut db = Database::new();
    db.add_table(b.build());
    db
}

/// Query shapes paired with the attribute sets to test.
fn safety_cases() -> Vec<(&'static str, LogicalPlan, &'static str)> {
    vec![
        (
            "top-1 sum per group",
            LogicalPlan::scan("fact")
                .aggregate(
                    vec!["grp"],
                    vec![AggExpr::new(AggFunc::Sum, col("amount"), "total")],
                )
                .top_k(vec![SortKey::desc("total")], 1),
            "grp",
        ),
        (
            "HAVING lower bound on count",
            LogicalPlan::scan("fact")
                .aggregate(
                    vec!["grp"],
                    vec![AggExpr::new(AggFunc::Count, col("id"), "cnt")],
                )
                .filter(col("cnt").gt(lit(45))),
            "grp",
        ),
        (
            "HAVING lower bound on count, sketch on a non-group attribute",
            LogicalPlan::scan("fact")
                .aggregate(
                    vec!["grp"],
                    vec![AggExpr::new(AggFunc::Count, col("id"), "cnt")],
                )
                .filter(col("cnt").gt(lit(45))),
            "amount",
        ),
        (
            "two-level aggregation",
            LogicalPlan::scan("fact")
                .aggregate(
                    vec!["grp"],
                    vec![AggExpr::new(AggFunc::Sum, col("amount"), "total")],
                )
                .filter(col("total").gt(lit(2_000)))
                .aggregate(
                    vec![],
                    vec![AggExpr::new(AggFunc::Count, col("grp"), "ngroups")],
                ),
            "grp",
        ),
        (
            "selection-only query",
            LogicalPlan::scan("fact").filter(col("amount").gt(lit(90))),
            "amount",
        ),
    ]
}

#[test]
fn safe_verdicts_hold_on_random_databases() {
    let mut checked_safe = 0;
    for seed in 0..4u64 {
        let db = random_db(seed, 1_000);
        let pbds = Pbds::new(db.clone());
        for (name, plan, attr) in safety_cases() {
            let verdict = pbds.check_safety(&plan, &[PartitionAttr::new("fact", attr)]);
            if !verdict.safe {
                continue;
            }
            checked_safe += 1;
            // Use an *accurate* sketch (worst case: smallest superset).
            for fragments in [4usize, 16, 64] {
                let partition = pbds.range_partition("fact", attr, fragments).unwrap();
                let sketch = pbds.accurate_sketch(&plan, &partition).unwrap();
                let restricted = restrict_database(&db, &[sketch]).unwrap();
                let over_sketch = pbds.engine().execute(&restricted, &plan).unwrap().relation;
                let truth = pbds.execute(&plan).unwrap().relation;
                assert!(
                    truth.bag_eq(&over_sketch),
                    "seed {seed}: '{name}' declared safe on {attr} but results differ (PS{fragments})"
                );
            }
        }
    }
    assert!(
        checked_safe >= 12,
        "too few safe verdicts exercised: {checked_safe}"
    );
}

#[test]
fn unsafe_verdict_is_justified_for_the_min_topk_case() {
    // For top-1 by min(amount), a sketch on `amount` is (correctly) not
    // provably safe; the checker must say so.
    let db = random_db(7, 500);
    let pbds = Pbds::new(db);
    let plan = LogicalPlan::scan("fact")
        .aggregate(
            vec!["grp"],
            vec![AggExpr::new(AggFunc::Min, col("amount"), "m")],
        )
        .top_k(vec![SortKey::asc("m")], 1);
    assert!(
        !pbds
            .check_safety(&plan, &[PartitionAttr::new("fact", "amount")])
            .safe
    );
    assert!(
        pbds.check_safety(&plan, &[PartitionAttr::new("fact", "grp")])
            .safe
    );
}

fn having_template() -> QueryTemplate {
    QueryTemplate::new(
        "fact-having",
        LogicalPlan::scan("fact")
            .filter(col("amount").gt(param(0)))
            .aggregate(
                vec!["grp"],
                vec![AggExpr::new(AggFunc::Count, col("id"), "cnt")],
            )
            .filter(col("cnt").gt(param(1))),
    )
}

#[test]
fn reusable_verdicts_hold_on_random_databases() {
    let template = having_template();
    let mut rng = StdRng::seed_from_u64(99);
    let mut reusable_checked = 0;
    for seed in 0..4u64 {
        let db = random_db(seed, 1_500);
        let pbds = Pbds::new(db);
        for _ in 0..8 {
            let captured_binding = vec![
                Value::Int(rng.gen_range(1..60)),
                Value::Int(rng.gen_range(5..40)),
            ];
            let new_binding = vec![
                Value::Int(rng.gen_range(1..60)),
                Value::Int(rng.gen_range(5..40)),
            ];
            let verdict = pbds.check_reuse(&template, &captured_binding, &new_binding);
            if !verdict.reusable {
                continue;
            }
            reusable_checked += 1;
            // Capture for the captured binding, then answer the new instance
            // from the sketch and compare against the plain answer.
            let partition = pbds.range_partition("fact", "grp", 8).unwrap();
            let captured = pbds
                .capture(&template.instantiate(&captured_binding), &[partition])
                .unwrap();
            let new_plan = template.instantiate(&new_binding);
            let truth = pbds.execute(&new_plan).unwrap().relation;
            let from_sketch = pbds
                .execute_with_sketches(&new_plan, &captured.sketches)
                .unwrap()
                .relation;
            assert!(
                truth.bag_eq(&from_sketch),
                "seed {seed}: reuse verdict for {captured_binding:?} -> {new_binding:?} is wrong"
            );
        }
    }
    assert!(
        reusable_checked >= 4,
        "too few reusable verdicts exercised: {reusable_checked}"
    );
}

#[test]
fn reuse_is_rejected_when_the_new_instance_needs_more_data() {
    let template = having_template();
    let db = random_db(3, 800);
    let pbds = Pbds::new(db);
    // Captured with a strong filter; new instance weakens it: must not reuse.
    let verdict = pbds.check_reuse(
        &template,
        &[Value::Int(50), Value::Int(10)],
        &[Value::Int(5), Value::Int(10)],
    );
    assert!(!verdict.reusable);
}

#[test]
fn safety_check_is_fast_enough_to_run_per_template() {
    // The paper reports ~20 ms per check with an external SMT solver; the
    // built-in solver should stay well under that even in debug builds.
    let db = random_db(1, 200);
    let pbds = Pbds::new(db);
    let plan = safety_cases()[0].1.clone();
    let start = std::time::Instant::now();
    for _ in 0..10 {
        pbds.check_safety(&plan, &[PartitionAttr::new("fact", "grp")]);
    }
    let per_check = start.elapsed() / 10;
    assert!(
        per_check < std::time::Duration::from_millis(250),
        "safety check too slow: {per_check:?}"
    );
}
