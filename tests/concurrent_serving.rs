//! Concurrency-equivalence tests for the sketch-serving middleware: N
//! sessions serving the same Zipf stream concurrently must produce results
//! identical (as bags — row order of unsorted results may vary with the
//! access path) to a sequential run and to plain execution on every workload
//! covered here, while scanning fewer rows than the No-PS baseline once the
//! catalog is warm.

use pbds_core::{Action, Engine, EngineProfile, PbdsServer, ServerConfig, SketchCatalog, Strategy};
use pbds_storage::Database;
use pbds_workloads::{sof, sof_pools, zipf_stream, StreamSpec, TemplatePool};
use std::sync::Arc;

fn small_sof() -> Arc<Database> {
    Arc::new(sof::generate(&sof::SofConfig {
        users: 1_500,
        posts: 9_000,
        comments: 12_000,
        badges: 4_500,
        ..Default::default()
    }))
}

fn test_stream(
    pools: &[TemplatePool],
    queries: usize,
) -> Vec<(pbds_algebra::QueryTemplate, Vec<pbds_storage::Value>)> {
    zipf_stream(
        pools,
        &StreamSpec {
            queries,
            skew: 1.1,
            seed: 41,
        },
    )
}

#[test]
fn concurrent_sessions_match_sequential_and_plain_results() {
    let db = small_sof();
    let pools = sof_pools(10, 7);
    let stream = test_stream(&pools, 48);
    let engine = Engine::new(EngineProfile::Indexed);

    // Ground truth: plain execution of every instance, no PBDS involved.
    let truth: Vec<_> = stream
        .iter()
        .map(|(t, b)| engine.execute(&db, &t.instantiate(b)).unwrap().relation)
        .collect();

    // Sequential serving (1 thread) with an active catalog.
    let sequential = PbdsServer::new(Arc::clone(&db), ServerConfig::default());
    let seq_results = sequential.serve_stream(&stream, 1).unwrap();

    for threads in [2, 4, 8] {
        let server = PbdsServer::new(Arc::clone(&db), ServerConfig::default());
        let results = server.serve_stream(&stream, threads).unwrap();
        assert_eq!(results.len(), stream.len());
        for (i, served) in results.iter().enumerate() {
            // Identical contents to the sequential serve AND to plain
            // execution (bag comparison: middleware makes no row-order
            // promise across actions, but contents must match exactly).
            assert!(
                served.relation.bag_eq(&truth[i]),
                "query {i} at {threads} threads diverged from plain execution \
                 (action {:?})",
                served.record.action
            );
            assert!(
                served.relation.bag_eq(&seq_results[i].relation),
                "query {i} at {threads} threads diverged from sequential serving"
            );
        }
        server.drain();
    }
}

#[test]
fn warm_catalog_scans_fewer_rows_than_no_ps_at_every_thread_count() {
    let db = small_sof();
    let pools = sof_pools(8, 11);
    let stream = test_stream(&pools, 36);

    for threads in [1, 2, 4, 8] {
        let total_rows = |strategy: Strategy| -> (u64, u64) {
            let server = PbdsServer::new(
                Arc::clone(&db),
                ServerConfig {
                    strategy,
                    fragments: 300,
                    ..ServerConfig::default()
                },
            );
            // Warm pass lets capture-on-miss land its sketches.
            server.serve_stream(&stream, threads).unwrap();
            server.drain();
            let served = server.serve_stream(&stream, threads).unwrap();
            let rows = served.iter().map(|s| s.record.stats.rows_scanned).sum();
            let hits = served
                .iter()
                .filter(|s| s.record.action == Action::UseSketch)
                .count() as u64;
            (rows, hits)
        };
        let (no_ps_rows, _) = total_rows(Strategy::NoPbds);
        let (catalog_rows, hits) = total_rows(Strategy::Eager {
            selectivity_threshold: 0.75,
        });
        assert!(
            hits > 0,
            "warm catalog produced no sketch hits at {threads} threads"
        );
        assert!(
            catalog_rows < no_ps_rows,
            "{threads} threads: catalog scanned {catalog_rows} rows, No-PS {no_ps_rows}"
        );
    }
}

#[test]
fn shared_catalog_is_warmed_across_servers() {
    // Two servers sharing one catalog: sketches captured while serving on
    // the first are hits on the second from its very first query.
    let db = small_sof();
    let catalog = Arc::new(SketchCatalog::default());
    let pools = sof_pools(6, 13);
    let stream = test_stream(&pools, 24);

    {
        let first = PbdsServer::with_catalog(
            Arc::clone(&db),
            Arc::clone(&catalog),
            ServerConfig::default(),
        );
        first.serve_stream(&stream, 4).unwrap();
        first.drain();
    }
    assert!(catalog.stored_sketches() > 0);

    let second = PbdsServer::with_catalog(
        Arc::clone(&db),
        Arc::clone(&catalog),
        ServerConfig::default(),
    );
    let served = second.serve_stream(&stream, 4).unwrap();
    let hits = served
        .iter()
        .filter(|s| s.record.action == Action::UseSketch)
        .count();
    assert!(
        hits > served.len() / 2,
        "expected a mostly-warm second server, got {hits}/{} hits",
        served.len()
    );
}

#[test]
fn byte_budget_keeps_serving_correct_under_eviction() {
    // A catalog too small to hold every sketch keeps evicting, but results
    // must stay correct and counters consistent.
    let db = small_sof();
    // A budget no sketch can fit: every insert keeps the newest entry and
    // evicts every other resident one, so eviction is exercised on every
    // capture after the first — deterministically, regardless of entry
    // sizes (which vary with whichever binding's background capture lands
    // first; a size-based budget sometimes fit all three templates at once
    // and the eviction assertion below went vacuously false).
    let catalog = Arc::new(SketchCatalog::with_byte_budget(1));
    let pools = sof_pools(8, 19);
    let stream = test_stream(&pools, 30);
    let engine = Engine::new(EngineProfile::Indexed);

    let server = PbdsServer::with_catalog(
        Arc::clone(&db),
        Arc::clone(&catalog),
        ServerConfig::default(),
    );
    let served = server.serve_stream(&stream, 4).unwrap();
    server.drain();
    for (i, s) in served.iter().enumerate() {
        let (t, b) = &stream[i];
        let truth = engine.execute(&db, &t.instantiate(b)).unwrap().relation;
        assert!(
            s.relation.bag_eq(&truth),
            "query {i} diverged under eviction"
        );
    }
    let stats = catalog.stats();
    assert!(
        stats.evictions > 0,
        "over-budget catalog never evicted: {stats:?}"
    );
    // Keep-newest residency: at most one entry (the latest insert) stays.
    assert!(stats.bytes <= 256, "budget overshot: {stats:?}");
}
