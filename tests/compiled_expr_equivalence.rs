//! Property tests: the compiled expression evaluator and the vectorized
//! block filter are drop-in equivalents of the row interpreter.
//!
//! * `eval_expr == CompiledExpr::eval` for random expressions over random
//!   schemas and rows — same values **and** same errors (NULLs, mixed-type
//!   columns, unknown columns, unbound parameters);
//! * `eval_filter_block` produces exactly the selection the per-row
//!   interpreter would, chunk by chunk, and errors whenever it would.

use pbds_algebra::{BinOp, Expr, RangeLookup};
use pbds_exec::vector::eval_filter_block;
use pbds_exec::{eval_expr, eval_predicate, CompiledExpr};
use pbds_storage::{ColumnarChunks, DataType, Row, Schema, Value, ValueRange};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const COLUMNS: [(&str, DataType); 4] = [
    ("a", DataType::Int),
    ("b", DataType::Float),
    ("s", DataType::Str),
    ("t", DataType::Str),
];

fn schema() -> Schema {
    Schema::from_pairs(&COLUMNS)
}

const STRINGS: [&str; 5] = ["AK", "CA", "NY", "TX", "zz"];

fn random_value(rng: &mut StdRng) -> Value {
    match rng.gen_range(0..10) {
        0 => Value::Null,
        1..=4 => Value::Int(rng.gen_range(-30..30)),
        5..=6 => Value::Float(rng.gen_range(-30.0..30.0)),
        7 => Value::Bool(rng.gen_range(0..2) == 1),
        _ => Value::from(STRINGS[rng.gen_range(0..STRINGS.len())]),
    }
}

/// A row with deliberate type-mix: each column usually carries its declared
/// type, but sometimes any value at all (the dynamically typed row store
/// allows that, and the engine must agree with the interpreter on it).
fn random_row(rng: &mut StdRng) -> Row {
    COLUMNS
        .iter()
        .map(|(_, dtype)| {
            if rng.gen_range(0..10) == 0 {
                return random_value(rng); // type-mix / NULL
            }
            match dtype {
                DataType::Int => Value::Int(rng.gen_range(-30..30)),
                DataType::Float => Value::Float(rng.gen_range(-30.0..30.0)),
                DataType::Str => Value::from(STRINGS[rng.gen_range(0..STRINGS.len())]),
                DataType::Bool => Value::Bool(rng.gen_range(0..2) == 1),
            }
        })
        .collect()
}

fn random_column(rng: &mut StdRng) -> String {
    // Mostly valid names, sometimes an unknown one (must error identically).
    if rng.gen_range(0..12) == 0 {
        "nope".to_string()
    } else {
        COLUMNS[rng.gen_range(0..COLUMNS.len())].0.to_string()
    }
}

fn random_ranges(rng: &mut StdRng) -> Vec<ValueRange> {
    // Ordered, non-overlapping ranges as `Expr::InRanges` requires.
    let mut bounds: Vec<i64> = (0..rng.gen_range(2..6))
        .map(|_| rng.gen_range(-30..30))
        .collect();
    bounds.sort_unstable();
    bounds.dedup();
    bounds
        .chunks(2)
        .map(|c| ValueRange {
            lo: Some(Value::Int(c[0])),
            hi: c.get(1).map(|&h| Value::Int(h)),
        })
        .collect()
}

fn random_expr(rng: &mut StdRng, depth: usize) -> Expr {
    let leaf = depth == 0 || rng.gen_range(0..3) == 0;
    if leaf {
        return match rng.gen_range(0..8) {
            0..=3 => Expr::Column(random_column(rng)),
            4..=5 => Expr::Literal(random_value(rng)),
            6 => Expr::Param(rng.gen_range(0..2)),
            _ => Expr::InRanges {
                column: random_column(rng),
                ranges: random_ranges(rng),
                lookup: if rng.gen_range(0..2) == 0 {
                    RangeLookup::Linear
                } else {
                    RangeLookup::BinarySearch
                },
            },
        };
    }
    let sub = |rng: &mut StdRng| Box::new(random_expr(rng, depth - 1));
    match rng.gen_range(0..7) {
        0 => {
            let ops = [
                BinOp::Add,
                BinOp::Sub,
                BinOp::Mul,
                BinOp::Div,
                BinOp::Eq,
                BinOp::Ne,
                BinOp::Lt,
                BinOp::Le,
                BinOp::Gt,
                BinOp::Ge,
            ];
            Expr::Binary {
                op: ops[rng.gen_range(0..ops.len())],
                left: sub(rng),
                right: sub(rng),
            }
        }
        1 => Expr::And(
            (0..rng.gen_range(2..4))
                .map(|_| random_expr(rng, depth - 1))
                .collect(),
        ),
        2 => Expr::Or(
            (0..rng.gen_range(2..4))
                .map(|_| random_expr(rng, depth - 1))
                .collect(),
        ),
        3 => Expr::Not(sub(rng)),
        4 => Expr::IsNull(sub(rng)),
        5 => Expr::Case {
            branches: (0..rng.gen_range(1..3))
                .map(|_| (random_expr(rng, depth - 1), random_expr(rng, depth - 1)))
                .collect(),
            otherwise: sub(rng),
        },
        _ => {
            let columns: Vec<String> = (0..rng.gen_range(1..3))
                .map(|_| random_column(rng))
                .collect();
            let mut keys: Vec<Vec<Value>> = (0..rng.gen_range(0..5))
                .map(|_| (0..columns.len()).map(|_| random_value(rng)).collect())
                .collect();
            keys.sort();
            keys.dedup();
            Expr::InList { columns, keys }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Value- and error-parity of `CompiledExpr::eval` against `eval_expr`.
    #[test]
    fn compiled_eval_matches_interpreter(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let schema = schema();
        let expr = random_expr(&mut rng, 3);
        let compiled = CompiledExpr::compile(&expr, &schema);
        for _ in 0..16 {
            let row = random_row(&mut rng);
            let expected = eval_expr(&expr, &schema, &row);
            let actual = compiled.eval(&row);
            prop_assert_eq!(
                &actual, &expected,
                "expr {} over {:?}", expr, row
            );
        }
    }

    /// The vectorized block filter selects exactly the rows the per-row
    /// interpreter selects — and errors whenever the interpreter would.
    #[test]
    fn block_filter_matches_row_interpreter(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let schema = schema();
        let pred = random_expr(&mut rng, 3);
        let rows: Vec<Row> = (0..96).map(|_| random_row(&mut rng)).collect();
        let chunks = ColumnarChunks::build(&schema, &rows, 40);
        let compiled = CompiledExpr::compile(&pred, &schema);
        for chunk in chunks.chunks() {
            let expected: Result<Vec<bool>, _> = rows[chunk.start..chunk.end]
                .iter()
                .map(|r| eval_predicate(&pred, &schema, r))
                .collect();
            let actual = eval_filter_block(&compiled, chunk, &rows, chunk.start, chunk.end);
            match expected {
                Ok(bits) => {
                    let sel = actual.expect("interpreter succeeded, block eval must too");
                    for (j, want) in bits.iter().enumerate() {
                        prop_assert_eq!(
                            sel.get(j), *want,
                            "row {} of {}", chunk.start + j, pred
                        );
                    }
                }
                Err(_) => {
                    prop_assert!(
                        actual.is_err(),
                        "interpreter errored but block eval succeeded for {}", pred
                    );
                }
            }
        }
    }
}
