//! Property tests: the compiled expression evaluator and the vectorized
//! block filter are drop-in equivalents of the row interpreter.
//!
//! * `eval_expr == CompiledExpr::eval` for random expressions over random
//!   schemas and rows — same values **and** same errors (NULLs, mixed-type
//!   columns, unknown columns, unbound parameters);
//! * `eval_filter_block` produces exactly the selection the per-row
//!   interpreter would, chunk by chunk, and errors whenever it would.

use pbds_algebra::{BinOp, Expr, RangeLookup};
use pbds_exec::vector::eval_filter_block;
use pbds_exec::{eval_expr, eval_predicate, CompiledExpr};
use pbds_storage::{ColumnarChunks, DataType, Row, Schema, Value, ValueRange};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const COLUMNS: [(&str, DataType); 4] = [
    ("a", DataType::Int),
    ("b", DataType::Float),
    ("s", DataType::Str),
    ("t", DataType::Str),
];

fn schema() -> Schema {
    Schema::from_pairs(&COLUMNS)
}

const STRINGS: [&str; 5] = ["AK", "CA", "NY", "TX", "zz"];

fn random_value(rng: &mut StdRng) -> Value {
    match rng.gen_range(0..10) {
        0 => Value::Null,
        1..=4 => Value::Int(rng.gen_range(-30..30)),
        5..=6 => Value::Float(rng.gen_range(-30.0..30.0)),
        7 => Value::Bool(rng.gen_range(0..2) == 1),
        _ => Value::from(STRINGS[rng.gen_range(0..STRINGS.len())]),
    }
}

/// A row with deliberate type-mix: each column usually carries its declared
/// type, but sometimes any value at all (the dynamically typed row store
/// allows that, and the engine must agree with the interpreter on it).
fn random_row(rng: &mut StdRng) -> Row {
    COLUMNS
        .iter()
        .map(|(_, dtype)| {
            if rng.gen_range(0..10) == 0 {
                return random_value(rng); // type-mix / NULL
            }
            match dtype {
                DataType::Int => Value::Int(rng.gen_range(-30..30)),
                DataType::Float => Value::Float(rng.gen_range(-30.0..30.0)),
                DataType::Str => Value::from(STRINGS[rng.gen_range(0..STRINGS.len())]),
                DataType::Bool => Value::Bool(rng.gen_range(0..2) == 1),
            }
        })
        .collect()
}

fn random_column(rng: &mut StdRng) -> String {
    // Mostly valid names, sometimes an unknown one (must error identically).
    if rng.gen_range(0..12) == 0 {
        "nope".to_string()
    } else {
        COLUMNS[rng.gen_range(0..COLUMNS.len())].0.to_string()
    }
}

fn random_ranges(rng: &mut StdRng) -> Vec<ValueRange> {
    // Ordered, non-overlapping ranges as `Expr::InRanges` requires.
    let mut bounds: Vec<i64> = (0..rng.gen_range(2..6))
        .map(|_| rng.gen_range(-30..30))
        .collect();
    bounds.sort_unstable();
    bounds.dedup();
    bounds
        .chunks(2)
        .map(|c| ValueRange {
            lo: Some(Value::Int(c[0])),
            hi: c.get(1).map(|&h| Value::Int(h)),
        })
        .collect()
}

fn random_expr(rng: &mut StdRng, depth: usize) -> Expr {
    let leaf = depth == 0 || rng.gen_range(0..3) == 0;
    if leaf {
        return match rng.gen_range(0..8) {
            0..=3 => Expr::Column(random_column(rng)),
            4..=5 => Expr::Literal(random_value(rng)),
            6 => Expr::Param(rng.gen_range(0..2)),
            _ => Expr::InRanges {
                column: random_column(rng),
                ranges: random_ranges(rng),
                lookup: if rng.gen_range(0..2) == 0 {
                    RangeLookup::Linear
                } else {
                    RangeLookup::BinarySearch
                },
            },
        };
    }
    let sub = |rng: &mut StdRng| Box::new(random_expr(rng, depth - 1));
    match rng.gen_range(0..7) {
        0 => {
            let ops = [
                BinOp::Add,
                BinOp::Sub,
                BinOp::Mul,
                BinOp::Div,
                BinOp::Eq,
                BinOp::Ne,
                BinOp::Lt,
                BinOp::Le,
                BinOp::Gt,
                BinOp::Ge,
            ];
            Expr::Binary {
                op: ops[rng.gen_range(0..ops.len())],
                left: sub(rng),
                right: sub(rng),
            }
        }
        1 => Expr::And(
            (0..rng.gen_range(2..4))
                .map(|_| random_expr(rng, depth - 1))
                .collect(),
        ),
        2 => Expr::Or(
            (0..rng.gen_range(2..4))
                .map(|_| random_expr(rng, depth - 1))
                .collect(),
        ),
        3 => Expr::Not(sub(rng)),
        4 => Expr::IsNull(sub(rng)),
        5 => Expr::Case {
            branches: (0..rng.gen_range(1..3))
                .map(|_| (random_expr(rng, depth - 1), random_expr(rng, depth - 1)))
                .collect(),
            otherwise: sub(rng),
        },
        _ => {
            let columns: Vec<String> = (0..rng.gen_range(1..3))
                .map(|_| random_column(rng))
                .collect();
            let mut keys: Vec<Vec<Value>> = (0..rng.gen_range(0..5))
                .map(|_| (0..columns.len()).map(|_| random_value(rng)).collect())
                .collect();
            keys.sort();
            keys.dedup();
            Expr::InList { columns, keys }
        }
    }
}

/// Rows shaped so the per-chunk-column encoding heuristic actually fires:
/// long runs of identical small ints (RLE / frame-of-reference), runny
/// low-cardinality strings (RLE over dict codes), occasional NULLs (merged
/// into the surrounding run), and — rarely — a type-mixed cell that forces
/// the plain `Mixed` fallback for that chunk-column.
fn runny_rows(rng: &mut StdRng, n: usize) -> Vec<Row> {
    let mut a = rng.gen_range(0..8i64);
    let mut s = STRINGS[rng.gen_range(0..3)];
    let mut t = STRINGS[rng.gen_range(0..STRINGS.len())];
    (0..n)
        .map(|_| {
            if rng.gen_range(0..6) == 0 {
                a = rng.gen_range(0..8);
            }
            if rng.gen_range(0..8) == 0 {
                s = STRINGS[rng.gen_range(0..3)];
            }
            if rng.gen_range(0..4) == 0 {
                t = STRINGS[rng.gen_range(0..STRINGS.len())];
            }
            vec![
                if rng.gen_range(0..40) == 0 {
                    Value::Null
                } else {
                    Value::Int(a)
                },
                Value::Float(a as f64 * 0.5),
                if rng.gen_range(0..50) == 0 {
                    Value::Null
                } else {
                    Value::from(s)
                },
                if rng.gen_range(0..60) == 0 {
                    random_value(rng) // type-mix: plain fallback territory
                } else {
                    Value::from(t)
                },
            ]
        })
        .collect()
}

/// Guard against the property tests below going vacuous: the runny generator
/// must actually produce encoded chunk-columns.
#[test]
fn runny_rows_actually_encode() {
    let mut rng = StdRng::seed_from_u64(7);
    let rows = runny_rows(&mut rng, 192);
    let enc = ColumnarChunks::build(&schema(), &rows, 64);
    let encoded: usize = enc.chunks().iter().map(|c| c.encoded_columns()).sum();
    assert!(encoded > 0, "generator produced no encoded chunk-columns");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Encoded chunks are lossless: every cell decodes back to the source
    /// row value, and incrementally extending the tail chunk lands on the
    /// same encodings (and bytes) as a fresh build over the same rows.
    #[test]
    fn encoded_chunks_roundtrip_and_extend_deterministically(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let schema = schema();
        let n = rng.gen_range(40..220usize);
        let rows = runny_rows(&mut rng, n);
        let block = [32usize, 64, 100][rng.gen_range(0..3)];
        let fresh = ColumnarChunks::build(&schema, &rows, block);
        for chunk in fresh.chunks() {
            for (i, row) in rows.iter().enumerate().take(chunk.end).skip(chunk.start) {
                for (c, cell) in row.iter().enumerate() {
                    prop_assert_eq!(
                        chunk.column(c).value(i - chunk.start),
                        cell.clone(),
                        "column {} row {}", c, i
                    );
                }
            }
        }
        // Incremental path: build a prefix, extend with the rest.
        let split = rng.gen_range(0..=n);
        let mut inc = ColumnarChunks::build(&schema, &rows[..split], block);
        inc.extend(&schema, &rows, split);
        prop_assert_eq!(inc.chunks().len(), fresh.chunks().len());
        for c in 0..COLUMNS.len() {
            prop_assert_eq!(
                inc.column_encoding_counts(c),
                fresh.column_encoding_counts(c),
                "column {} split {}", c, split
            );
        }
        prop_assert_eq!(inc.approx_bytes(), fresh.approx_bytes());
        for (ic, fc) in inc.chunks().iter().zip(fresh.chunks()) {
            for c in 0..COLUMNS.len() {
                for j in 0..(ic.end - ic.start) {
                    prop_assert_eq!(ic.column(c).value(j), fc.column(c).value(j));
                }
            }
        }
    }

    /// The encoded kernels select exactly what the plain (decoded) chunks
    /// select, for arbitrary predicates — and error in exactly the same
    /// cases.
    #[test]
    fn block_filter_agrees_on_encoded_and_plain_chunks(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let schema = schema();
        let pred = random_expr(&mut rng, 3);
        let rows = runny_rows(&mut rng, 192);
        let enc = ColumnarChunks::build(&schema, &rows, 64);
        let plain = ColumnarChunks::build_plain(&schema, &rows, 64);
        let compiled = CompiledExpr::compile(&pred, &schema);
        for (ec, pc) in enc.chunks().iter().zip(plain.chunks()) {
            let a = eval_filter_block(&compiled, ec, &rows, ec.start, ec.end);
            let b = eval_filter_block(&compiled, pc, &rows, pc.start, pc.end);
            match (a, b) {
                (Ok(x), Ok(y)) => prop_assert_eq!(x, y, "pred {}", pred),
                (Err(_), Err(_)) => {}
                (a, b) => prop_assert!(
                    false,
                    "divergent outcomes (encoded ok: {}, plain ok: {}) for {}",
                    a.is_ok(), b.is_ok(), pred
                ),
            }
        }
    }

    /// Value- and error-parity of `CompiledExpr::eval` against `eval_expr`.
    #[test]
    fn compiled_eval_matches_interpreter(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let schema = schema();
        let expr = random_expr(&mut rng, 3);
        let compiled = CompiledExpr::compile(&expr, &schema);
        for _ in 0..16 {
            let row = random_row(&mut rng);
            let expected = eval_expr(&expr, &schema, &row);
            let actual = compiled.eval(&row);
            prop_assert_eq!(
                &actual, &expected,
                "expr {} over {:?}", expr, row
            );
        }
    }

    /// The vectorized block filter selects exactly the rows the per-row
    /// interpreter selects — and errors whenever the interpreter would.
    #[test]
    fn block_filter_matches_row_interpreter(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let schema = schema();
        let pred = random_expr(&mut rng, 3);
        let rows: Vec<Row> = (0..96).map(|_| random_row(&mut rng)).collect();
        let chunks = ColumnarChunks::build(&schema, &rows, 40);
        let compiled = CompiledExpr::compile(&pred, &schema);
        for chunk in chunks.chunks() {
            let expected: Result<Vec<bool>, _> = rows[chunk.start..chunk.end]
                .iter()
                .map(|r| eval_predicate(&pred, &schema, r))
                .collect();
            let actual = eval_filter_block(&compiled, chunk, &rows, chunk.start, chunk.end);
            match expected {
                Ok(bits) => {
                    let sel = actual.expect("interpreter succeeded, block eval must too");
                    for (j, want) in bits.iter().enumerate() {
                        prop_assert_eq!(
                            sel.get(j), *want,
                            "row {} of {}", chunk.start + j, pred
                        );
                    }
                }
                Err(_) => {
                    prop_assert!(
                        actual.is_err(),
                        "interpreter errored but block eval succeeded for {}", pred
                    );
                }
            }
        }
    }
}
