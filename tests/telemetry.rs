//! End-to-end telemetry tests: histogram determinism (property-based) and
//! the server round-trip — every legacy stats struct (`CommitStats`,
//! `CatalogStats`, `RobustnessEvents`) is now a *view* over the metrics
//! registry, so the numbers in `PbdsServer::metrics_snapshot()` must agree
//! exactly with the struct APIs, and the text exposition must carry the
//! whole `pbds_*` namespace.

use pbds_algebra::{col, lit, param, AggExpr, AggFunc, LogicalPlan, QueryTemplate};
use pbds_core::{HealthState, Mutation, PbdsServer, ServerConfig};
use pbds_storage::{DataType, Database, Row, Schema, TableBuilder, Value};
use pbds_telemetry::hist::{bucket_bound, bucket_index};
use pbds_telemetry::{spans_enabled, Histogram, HistogramSnapshot};
use proptest::prelude::*;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Histogram determinism (property-based)
// ---------------------------------------------------------------------------

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new(1.0);
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Recording the same multiset of values in any order produces an
    /// identical snapshot: same count, sum, buckets and every quantile.
    #[test]
    fn histogram_is_order_invariant(values in prop::collection::vec(0u64..1_000_000_000, 1..200)) {
        let fwd = snapshot_of(&values);
        let mut rev = values.clone();
        rev.reverse();
        let bwd = snapshot_of(&rev);
        prop_assert_eq!(fwd.count(), bwd.count());
        prop_assert_eq!(fwd.sum(), bwd.sum());
        prop_assert_eq!(fwd.cumulative(), bwd.cumulative());
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            prop_assert_eq!(fwd.quantile(q), bwd.quantile(q));
        }
    }

    /// Merging two histograms equals one histogram fed both value streams,
    /// and count/sum are exact (no sampling in the registry).
    #[test]
    fn histogram_merge_equals_union(a in prop::collection::vec(0u64..1_000_000, 0..100),
                                    b in prop::collection::vec(0u64..1_000_000, 0..100)) {
        let mut merged = snapshot_of(&a);
        merged.merge(&snapshot_of(&b));
        let both: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        let union = snapshot_of(&both);
        prop_assert_eq!(merged.count(), union.count());
        prop_assert_eq!(merged.sum(), union.sum());
        prop_assert_eq!(merged.cumulative(), union.cumulative());
        prop_assert_eq!(both.len() as u64, union.count());
        prop_assert_eq!(both.iter().sum::<u64>(), union.sum());
    }

    /// The log-linear bucketing keeps relative error under 1/16: every
    /// value maps to a bucket whose bound is ≥ the value and within
    /// `v + v/16 + 1` of it, and quantiles are monotone in q.
    #[test]
    fn bucket_bounds_and_quantiles_are_tight(values in prop::collection::vec(0u64..u64::MAX / 2, 1..100)) {
        for &v in &values {
            let bound = bucket_bound(bucket_index(v));
            prop_assert!(bound >= v, "bound {bound} < value {v}");
            prop_assert!(bound - v <= v / 16 + 1, "bound {bound} too far above {v}");
        }
        let snap = snapshot_of(&values);
        let max = *values.iter().max().unwrap();
        let mut prev = 0u64;
        for q in [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let x = snap.quantile(q);
            prop_assert!(x >= prev, "quantile not monotone at q={q}");
            prop_assert!(x <= bucket_bound(bucket_index(max)));
            prev = x;
        }
    }
}

// ---------------------------------------------------------------------------
// Server round-trip
// ---------------------------------------------------------------------------

fn tiny_db() -> Arc<Database> {
    let schema = Schema::from_pairs(&[
        ("k", DataType::Int),
        ("grp", DataType::Int),
        ("v", DataType::Int),
    ]);
    let mut b = TableBuilder::new("r", schema);
    b.block_size(64).index("k");
    for i in 0..600i64 {
        b.push(vec![
            Value::Int(i),
            Value::Int(i % 7),
            Value::Int(1 + (i * 37) % 400),
        ]);
    }
    let mut db = Database::new();
    db.add_table(b.build());
    Arc::new(db)
}

fn templates() -> Vec<QueryTemplate> {
    vec![
        QueryTemplate::new(
            "r-range",
            LogicalPlan::scan("r").filter(col("k").between(param(0), param(1))),
        ),
        QueryTemplate::new(
            "r-having",
            LogicalPlan::scan("r")
                .aggregate(
                    vec!["grp"],
                    vec![AggExpr::new(AggFunc::Sum, col("v"), "total")],
                )
                .filter(col("total").gt(param(0))),
        ),
        QueryTemplate::new(
            "r-point",
            LogicalPlan::scan("r").filter(col("grp").eq(param(0)).and(col("v").gt(lit(50)))),
        ),
    ]
}

fn small_stream(n: usize) -> Vec<(QueryTemplate, Vec<Value>)> {
    let ts = templates();
    (0..n)
        .map(|i| {
            let t = ts[i % ts.len()].clone();
            let binds = match i % ts.len() {
                0 => vec![Value::Int((i as i64 * 13) % 500), Value::Int(550)],
                1 => vec![Value::Int(2_000 + (i as i64 % 5) * 700)],
                _ => vec![Value::Int(i as i64 % 7)],
            };
            (t, binds)
        })
        .collect()
}

/// The registry numbers must agree exactly with the legacy struct views
/// (`commit_stats`, `catalog().stats()`, `robustness_events`), and the
/// rendered exposition must carry every `pbds_*` family the README
/// documents.
#[test]
fn metrics_snapshot_agrees_with_stats_structs() {
    let server = PbdsServer::new(tiny_db(), ServerConfig::default());
    let stream = small_stream(24);
    // Two passes so the second one gets catalog hits, then a write burst.
    server.serve_stream(&stream, 2).unwrap();
    server.drain();
    server.serve_stream(&stream, 2).unwrap();
    for i in 0..9i64 {
        let rows: Vec<Row> = vec![vec![Value::Int(600 + i), Value::Int(i % 7), Value::Int(10)]];
        server.apply_mutation("r", Mutation::Append(rows)).unwrap();
    }

    let snap = server.metrics_snapshot();
    let c = |name: &str| -> u64 {
        *snap
            .counters
            .get(name)
            .unwrap_or_else(|| panic!("missing counter {name}: {:?}", snap.counters.keys()))
    };

    assert_eq!(c("pbds_queries_served"), 48);

    let commit = server.commit_stats();
    assert_eq!(
        c("pbds_commit_mutations_submitted"),
        commit.mutations_submitted
    );
    assert_eq!(
        c("pbds_commit_mutations_committed"),
        commit.mutations_committed
    );
    assert_eq!(c("pbds_commit_batches"), commit.batched_commits);
    assert_eq!(c("pbds_wal_fsyncs"), commit.fsyncs);
    assert_eq!(commit.mutations_committed, 9);
    assert_eq!(
        snap.gauges.get("pbds_commit_max_batch").copied().unwrap(),
        commit.max_batch as i64
    );

    let cat = server.catalog().stats();
    assert_eq!(c("pbds_catalog_hits"), cat.hits);
    assert_eq!(c("pbds_catalog_misses"), cat.misses);
    assert_eq!(c("pbds_catalog_evictions"), cat.evictions);
    assert_eq!(c("pbds_catalog_memo_hits"), cat.memo_hits);
    assert_eq!(c("pbds_catalog_invalidated"), cat.invalidated);
    assert_eq!(
        snap.gauges.get("pbds_catalog_bytes").copied().unwrap(),
        cat.bytes as i64
    );
    assert_eq!(
        snap.gauges.get("pbds_catalog_stored").copied().unwrap(),
        cat.stored as i64
    );
    assert!(
        cat.hits + cat.misses > 0,
        "serving never consulted the catalog"
    );

    let rb = server.robustness_events();
    assert_eq!(c("pbds_robustness_commit_panics"), rb.commit_panics);
    assert_eq!(
        c("pbds_robustness_wal_append_failures"),
        rb.wal_append_failures
    );
    assert_eq!(c("pbds_robustness_repair_attempts"), rb.repair_attempts);

    assert_eq!(server.health(), HealthState::Healthy);
    assert_eq!(snap.gauges.get("pbds_health_state").copied(), Some(0));

    // Latency histograms saw every query / commit.
    let qh = snap.histograms.get("pbds_query_seconds").unwrap();
    assert_eq!(qh.count(), 48);
    assert!(qh.quantile_scaled(0.99) >= qh.quantile_scaled(0.5));
    let mh = snap.histograms.get("pbds_mutation_commit_seconds").unwrap();
    assert_eq!(mh.count(), 9);

    // Exposition carries the whole namespace, sorted and parseable.
    let text = snap.render_text();
    for family in [
        "pbds_queries_served",
        "pbds_catalog_hits",
        "pbds_commit_mutations_committed",
        "pbds_health_state",
        "pbds_query_seconds_bucket",
        "pbds_query_seconds_count 48",
        "pbds_exec_rows_scanned",
    ] {
        assert!(
            text.contains(family),
            "exposition missing {family}:\n{text}"
        );
    }
    // Lock-hold gauges ride along whenever the pbds-sync tracked wrappers
    // are armed (debug builds or --features lock-order); plain release
    // builds have passthrough locks and no hold stats.
    if !rb.lock_holds.is_empty() {
        assert!(
            text.contains("pbds_lock_"),
            "exposition missing lock gauges"
        );
    }
}

/// Snapshots are monotone across servings: counters never decrease, and
/// merging two snapshots adds counters.
#[test]
fn snapshots_are_monotone_and_mergeable() {
    let server = PbdsServer::new(tiny_db(), ServerConfig::default());
    let stream = small_stream(8);
    server.serve_stream(&stream, 1).unwrap();
    let a = server.metrics_snapshot();
    server.serve_stream(&stream, 1).unwrap();
    let b = server.metrics_snapshot();
    for (name, &v) in &a.counters {
        assert!(
            b.counters.get(name).copied().unwrap_or(0) >= v,
            "counter {name} went backwards"
        );
    }
    let mut merged = a.clone();
    merged.merge(b.clone());
    assert_eq!(
        merged.counters["pbds_queries_served"],
        a.counters["pbds_queries_served"] + b.counters["pbds_queries_served"]
    );
    assert_eq!(
        merged.histograms["pbds_query_seconds"].count(),
        a.histograms["pbds_query_seconds"].count() + b.histograms["pbds_query_seconds"].count()
    );
}

/// When the span tracer is armed (debug builds or `--features telemetry`),
/// serving a stream leaves query-lifecycle spans in the journal; in plain
/// release builds the tracer reports disabled and records nothing.
#[test]
fn span_journal_traces_query_lifecycle_when_armed() {
    let server = PbdsServer::new(tiny_db(), ServerConfig::default());
    server.serve_stream(&small_stream(6), 1).unwrap();
    server.drain();
    if spans_enabled() {
        let journal = pbds_telemetry::journal();
        let names: Vec<&str> = journal.iter().map(|e| e.name).collect();
        for phase in ["query.serve", "query.admit", "query.template_match"] {
            assert!(
                names.contains(&phase),
                "armed tracer missing span {phase}; saw {names:?}"
            );
        }
        let rendered = pbds_telemetry::render_journal();
        assert!(rendered.contains("query.serve"));
    } else {
        assert!(
            pbds_telemetry::journal().is_empty(),
            "disabled tracer must record nothing"
        );
        assert_eq!(pbds_telemetry::render_journal(), "");
    }
}
