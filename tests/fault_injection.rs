//! Fail-safe degradation scenarios, end to end through `PbdsServer`.
//!
//! Where `fault_torture` sweeps a seeded grid and checks state invariants,
//! these tests pin down the *behavioral* contract of each degradation path:
//! which health state the server enters, which typed error callers see,
//! whether reads keep serving, and how the server gets back to healthy —
//! janitor repair, explicit checkpoint, or not at all (fail-stop).

use pbds_algebra::{col, param, AggExpr, AggFunc, LogicalPlan, QueryTemplate};
use pbds_core::{HealthState, Mutation, PbdsError, PbdsServer, ServerConfig};
use pbds_persist::{
    read_snapshot, FaultInjector, FaultIo, FaultKind, FaultSpec, FileClass, CATALOG_FILE,
    SNAPSHOT_FILE,
};
use pbds_storage::{DataType, Database, Schema, TableBuilder, Value};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn test_dir(name: &str) -> PathBuf {
    static UNIQUE: AtomicU64 = AtomicU64::new(0);
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"))
        .join("fault_injection")
        .join(format!("{name}-{}", UNIQUE.fetch_add(1, Ordering::Relaxed)));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create test dir");
    dir
}

fn base_db() -> Database {
    let schema = Schema::from_pairs(&[
        ("k", DataType::Int),
        ("grp", DataType::Int),
        ("v", DataType::Int),
    ]);
    let mut b = TableBuilder::new("r", schema);
    b.block_size(16).index("k");
    for k in 0..64i64 {
        b.push(vec![
            Value::Int(k),
            Value::Int(k % 6),
            Value::Int((k * 7) % 100),
        ]);
    }
    let mut db = Database::new();
    db.add_table(b.build());
    db
}

fn having_template() -> QueryTemplate {
    QueryTemplate::new(
        "r-having",
        LogicalPlan::scan("r")
            .aggregate(
                vec!["grp"],
                vec![AggExpr::new(AggFunc::Sum, col("v"), "total")],
            )
            .filter(col("total").gt(param(0))),
    )
}

fn append(k: i64) -> Mutation {
    Mutation::Append(vec![vec![
        Value::Int(k),
        Value::Int(k % 6),
        Value::Int(k % 100),
    ]])
}

fn await_health(server: &PbdsServer, want: HealthState) -> bool {
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if server.health() == want {
            return true;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    server.health() == want
}

/// A failed WAL fsync refuses the write (never a silent ack), flips the
/// server read-only, and the janitor repairs it back to healthy — after
/// which writes resume and a crash + reopen shows exactly the acked rows.
#[test]
fn wal_fsync_failure_refuses_the_write_then_the_janitor_heals() {
    let dir = test_dir("fsync-heal");
    let config = ServerConfig {
        capture_workers: 1,
        checkpoint_every: None,
        ..ServerConfig::default()
    };
    let injector = FaultInjector::new(7);
    {
        let server = PbdsServer::create_with_io(
            &dir,
            Arc::new(base_db()),
            config,
            Arc::new(FaultIo::new(Arc::clone(&injector))),
        )
        .unwrap();
        injector.inject(FaultSpec {
            kind: FaultKind::FsyncFail,
            class: FileClass::Wal,
            skip: 0,
        });
        let err = server.apply_mutation("r", append(1_000)).unwrap_err();
        assert!(
            matches!(err, PbdsError::Persist(_)),
            "refused write must carry the I/O cause, got {err}"
        );
        let events = server.robustness_events();
        assert_eq!(events.wal_append_failures, 1, "{events:?}");
        assert!(!events.messages.is_empty(), "{events:?}");

        assert!(
            await_health(&server, HealthState::Healthy),
            "janitor never repaired: health {:?}, events {:?}",
            server.health(),
            server.robustness_events()
        );
        let events = server.robustness_events();
        assert!(events.repairs_succeeded >= 1, "{events:?}");

        // Writes resume after repair, on a verified fresh descriptor.
        server.apply_mutation("r", append(2_000)).unwrap();
        drop(server); // crash
    }
    let server = PbdsServer::open(&dir, config).unwrap();
    let db = server.db();
    let ks: Vec<&Value> = db
        .table("r")
        .unwrap()
        .rows()
        .iter()
        .map(|r| &r[0])
        .collect();
    assert!(
        !ks.contains(&&Value::Int(1_000)),
        "the refused write resurfaced after repair truncated it"
    );
    assert!(ks.contains(&&Value::Int(2_000)), "an acked write was lost");
}

/// With background repair disabled, a WAL failure leaves the server in a
/// *stable* read-only state: reads serve, writes fail fast with the typed
/// `ReadOnly` error, and an explicit checkpoint is the way back to healthy.
#[test]
fn read_only_is_stable_without_a_janitor_and_an_explicit_checkpoint_heals() {
    let dir = test_dir("stable-readonly");
    let config = ServerConfig {
        capture_workers: 1,
        checkpoint_every: None,
        repair_attempts: 0, // no janitor
        ..ServerConfig::default()
    };
    let injector = FaultInjector::new(11);
    let server = PbdsServer::create_with_io(
        &dir,
        Arc::new(base_db()),
        config,
        Arc::new(FaultIo::new(Arc::clone(&injector))),
    )
    .unwrap();
    injector.inject(FaultSpec {
        kind: FaultKind::FsyncFail,
        class: FileClass::Wal,
        skip: 0,
    });
    let template = having_template();
    let session = server.session();

    server.apply_mutation("r", append(1_000)).unwrap_err();
    assert_eq!(server.health(), HealthState::ReadOnly);
    std::thread::sleep(Duration::from_millis(25));
    assert_eq!(
        server.health(),
        HealthState::ReadOnly,
        "read-only must be stable with repair_attempts = 0"
    );

    // Reads keep serving the last committed state.
    let served = session.serve(&template, &[Value::Int(0)]).unwrap();
    assert_eq!(served.relation.len(), 6, "one group per grp value");

    // Writes fail fast with the typed error, before touching the queue.
    let err = server.apply_mutation("r", append(1_001)).unwrap_err();
    assert_eq!(err, PbdsError::ReadOnly);

    // The operator's explicit checkpoint repairs and settles the server.
    server.checkpoint().unwrap();
    assert_eq!(server.health(), HealthState::Healthy);
    server.apply_mutation("r", append(2_000)).unwrap();
    assert_eq!(server.db().table("r").unwrap().len(), 65);
}

/// When every repair attempt fails too, read-only escalates to fail-stop:
/// the server refuses reads as well as writes, permanently, rather than
/// serving answers it can no longer reconcile with durable state.
#[test]
fn repair_exhaustion_escalates_read_only_to_fail_stop() {
    let dir = test_dir("fail-stop");
    let config = ServerConfig {
        capture_workers: 1,
        checkpoint_every: None,
        repair_attempts: 2,
        ..ServerConfig::default()
    };
    let injector = FaultInjector::new(13);
    let server = PbdsServer::create_with_io(
        &dir,
        Arc::new(base_db()),
        config,
        Arc::new(FaultIo::new(Arc::clone(&injector))),
    )
    .unwrap();
    injector.inject(FaultSpec {
        kind: FaultKind::FsyncFail,
        class: FileClass::Wal,
        skip: 0,
    });
    // Make every repair checkpoint fail as well: each attempt eats one spec.
    for _ in 0..4 {
        injector.inject(FaultSpec {
            kind: FaultKind::Enospc,
            class: FileClass::Snapshot,
            skip: 0,
        });
    }
    let session = server.session();

    server.apply_mutation("r", append(1_000)).unwrap_err();
    assert!(
        await_health(&server, HealthState::FailStop),
        "exhausted repair never escalated: health {:?}, events {:?}",
        server.health(),
        server.robustness_events()
    );
    let events = server.robustness_events();
    assert!(events.repair_attempts >= 2, "{events:?}");
    assert_eq!(events.repairs_succeeded, 0, "{events:?}");

    let err = session
        .serve(&having_template(), &[Value::Int(0)])
        .unwrap_err();
    assert_eq!(err, PbdsError::FailStop, "fail-stop must refuse reads");
    let err = server.apply_mutation("r", append(1_001)).unwrap_err();
    assert_eq!(err, PbdsError::FailStop, "fail-stop must refuse writes");
}

/// A snapshot that hits ENOSPC during an automatic checkpoint degrades the
/// server without failing the acked batch: the previous snapshot survives
/// intact (atomic replacement), writes keep flowing, and the janitor's
/// retried checkpoint eventually covers the new mutations.
#[test]
fn snapshot_enospc_during_auto_checkpoint_degrades_but_keeps_serving() {
    let dir = test_dir("enospc-degrade");
    let config = ServerConfig {
        capture_workers: 1,
        checkpoint_every: Some(2),
        ..ServerConfig::default()
    };
    let injector = FaultInjector::new(17);
    let server = PbdsServer::create_with_io(
        &dir,
        Arc::new(base_db()),
        config,
        Arc::new(FaultIo::new(Arc::clone(&injector))),
    )
    .unwrap();
    injector.inject(FaultSpec {
        kind: FaultKind::Enospc,
        class: FileClass::Snapshot,
        skip: 0,
    });

    // Both mutations ack: a checkpoint failure is the janitor's problem,
    // never the batch's.
    server.apply_mutation("r", append(1_000)).unwrap();
    server.apply_mutation("r", append(1_001)).unwrap();

    // The failure was observed and the old snapshot is still whole.
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.robustness_events().checkpoint_failures == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(
        server.robustness_events().checkpoint_failures >= 1,
        "{:?}",
        server.robustness_events()
    );
    let (old_snap, old_seq) = read_snapshot(&dir.join(SNAPSHOT_FILE)).unwrap();
    assert_eq!(
        old_snap.table("r").unwrap().len(),
        64,
        "old snapshot damaged"
    );
    assert_eq!(old_seq, 0);

    // Writes keep flowing while degraded, and the janitor's retry lands a
    // snapshot that finally covers the mutations.
    server.apply_mutation("r", append(1_002)).unwrap();
    assert!(
        await_health(&server, HealthState::Healthy),
        "janitor never recovered the checkpoint: {:?}",
        server.robustness_events()
    );
    let (new_snap, new_seq) = read_snapshot(&dir.join(SNAPSHOT_FILE)).unwrap();
    assert!(new_seq >= 2, "repaired snapshot covers the acked mutations");
    assert!(new_snap.table("r").unwrap().len() >= 66);
}

/// A catalog file corrupted *on disk* is quarantined at open: the server
/// comes up cold (answers intact, sketches gone), preserves the damaged
/// file for inspection, and the next restart treats the missing catalog as
/// a plain cold start.
#[test]
fn corrupted_catalog_on_disk_is_quarantined_and_the_server_comes_up_cold() {
    let dir = test_dir("catalog-quarantine");
    let config = ServerConfig {
        capture_workers: 1,
        ..ServerConfig::default()
    };
    let template = having_template();
    {
        let server = PbdsServer::create(&dir, Arc::new(base_db()), config).unwrap();
        server.session().serve(&template, &[Value::Int(0)]).unwrap();
        server.drain();
        assert_eq!(server.catalog().stored_sketches(), 1);
        server.shutdown().unwrap();
    }
    // Bit rot in the middle of the catalog file.
    let path = dir.join(CATALOG_FILE);
    let mut bytes = fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    fs::write(&path, &bytes).unwrap();

    let server = PbdsServer::open(&dir, config).unwrap();
    let report = server.recovery_report().unwrap();
    assert!(report.catalog_quarantined, "{report:?}");
    assert_eq!(report.catalog_imported, 0, "{report:?}");
    assert_eq!(server.catalog().stored_sketches(), 0);
    let events = server.robustness_events();
    assert_eq!(events.catalogs_quarantined, 1, "{events:?}");
    assert!(!events.messages.is_empty(), "{events:?}");
    assert!(!path.exists(), "the damaged catalog must be renamed aside");
    let quarantined = dir.join("catalog.pbds.quarantined");
    assert_eq!(fs::read(&quarantined).unwrap(), bytes, "preserved verbatim");

    // Cold but correct: serving recaptures instead of failing.
    let served = server.session().serve(&template, &[Value::Int(0)]).unwrap();
    assert_eq!(served.relation.len(), 6, "one group per grp value");
    server.drain();
    assert_eq!(server.catalog().stored_sketches(), 1);
    drop(server);

    // The next restart sees no catalog file: cold start, not damage.
    let server = PbdsServer::open(&dir, config).unwrap();
    let report = server.recovery_report().unwrap();
    assert!(!report.catalog_quarantined, "{report:?}");
    assert_eq!(server.health(), HealthState::Healthy);
}
