//! End-to-end reproduction of the paper's running example (Fig. 1, Ex. 1–8,
//! Fig. 5/7/8): the `cities` relation, queries Q1/Q2, the state and popden
//! partitions, sketch capture, sketch safety and sketch reuse.

use pbds_algebra::{col, lit, param, AggExpr, AggFunc, LogicalPlan, QueryTemplate, SortKey};
use pbds_core::{PartitionAttr, Pbds, UsePredicateStyle};
use pbds_provenance::{capture_lineage, restrict_database};
use pbds_storage::{DataType, Database, Partition, RangePartition, Schema, TableBuilder, Value};
use std::sync::Arc;

/// The `cities` relation of Fig. 1b.
fn cities_db() -> Database {
    let schema = Schema::from_pairs(&[
        ("popden", DataType::Int),
        ("city", DataType::Str),
        ("state", DataType::Str),
    ]);
    let mut b = TableBuilder::new("cities", schema);
    b.block_size(2).index("state");
    for (popden, city, state) in [
        (4200, "Anchorage", "AK"),
        (6000, "San Diego", "CA"),
        (5000, "Sacramento", "CA"),
        (7000, "New York", "NY"),
        (2000, "Buffalo", "NY"),
        (3700, "Austin", "TX"),
        (2500, "Houston", "TX"),
    ] {
        b.push(vec![
            Value::Int(popden),
            Value::from(city),
            Value::from(state),
        ]);
    }
    let mut db = Database::new();
    db.add_table(b.build());
    db
}

/// Q1 of Fig. 1a.
fn q1() -> LogicalPlan {
    LogicalPlan::scan("cities")
        .filter(col("state").eq(lit("CA")))
        .project(vec![(col("city"), "city"), (col("popden"), "popden")])
}

/// Q2 of Fig. 1a.
fn q2() -> LogicalPlan {
    LogicalPlan::scan("cities")
        .aggregate(
            vec!["state"],
            vec![AggExpr::new(AggFunc::Avg, col("popden"), "avgden")],
        )
        .top_k(vec![SortKey::desc("avgden")], 1)
}

/// The state partition of Fig. 1e (top).
fn state_partition() -> Arc<Partition> {
    Arc::new(Partition::Range(RangePartition::from_uppers(
        "cities",
        "state",
        vec![Value::from("DE"), Value::from("MI"), Value::from("OK")],
    )))
}

/// The popden partition of Fig. 1e (bottom): g1 = [1000,4000], g2 = (4000,∞).
fn popden_partition() -> Arc<Partition> {
    Arc::new(Partition::Range(RangePartition::from_uppers(
        "cities",
        "popden",
        vec![Value::Int(4000)],
    )))
}

#[test]
fn example1_q1_returns_fig1c() {
    let pbds = Pbds::new(cities_db());
    let out = pbds.execute(&q1()).unwrap().relation;
    assert_eq!(out.len(), 2);
    assert_eq!(out.value(0, "city"), Some(&Value::from("San Diego")));
    assert_eq!(out.value(0, "popden"), Some(&Value::Int(6000)));
    assert_eq!(out.value(1, "city"), Some(&Value::from("Sacramento")));
}

#[test]
fn example2_q2_returns_fig1d() {
    let pbds = Pbds::new(cities_db());
    let out = pbds.execute(&q2()).unwrap().relation;
    assert_eq!(out.len(), 1);
    assert_eq!(out.value(0, "state"), Some(&Value::from("CA")));
    assert_eq!(out.value(0, "avgden"), Some(&Value::Float(5500.0)));
}

#[test]
fn example3_provenance_and_sketch_of_q2() {
    // The provenance of Q2 is {t2, t3}; the sketch on F_state is {f1}.
    let db = cities_db();
    let lineage = capture_lineage(&db, &q2()).unwrap();
    assert_eq!(lineage.rows_of("cities"), vec![1, 2]);
    let pbds = Pbds::new(db);
    let captured = pbds.capture(&q2(), &[state_partition()]).unwrap();
    assert_eq!(captured.sketches[0].selected_fragments(), vec![0]);
    assert_eq!(captured.sketches[0].bitset().to_string(), "1000");
}

#[test]
fn example4_instrumented_q2_produces_the_same_result() {
    // Q2[P_state] adds `state BETWEEN 'AL' AND 'DE'` and returns Fig. 1d.
    let pbds = Pbds::new(cities_db());
    let captured = pbds.capture(&q2(), &[state_partition()]).unwrap();
    for style in [
        UsePredicateStyle::BinarySearch,
        UsePredicateStyle::OrConditions,
    ] {
        let out = pbds
            .execute_with_sketches_styled(&q2(), &captured.sketches, style)
            .unwrap();
        assert_eq!(out.relation.value(0, "state"), Some(&Value::from("CA")));
        assert_eq!(out.relation.value(0, "avgden"), Some(&Value::Float(5500.0)));
        // Only fragment f1 (3 rows) is read instead of the whole table.
        assert!(out.stats.rows_scanned <= 4);
    }
}

#[test]
fn example5_popden_sketch_is_unsafe_in_practice() {
    // Evaluating Q2 over the instance of the popden sketch {g2} returns
    // (NY, 7000) instead of (CA, 5500) — the sketch is unsafe.
    let db = cities_db();
    let pbds = Pbds::new(db.clone());
    let captured = pbds.capture(&q2(), &[popden_partition()]).unwrap();
    assert_eq!(captured.sketches[0].selected_fragments(), vec![1]); // g2
    let restricted = restrict_database(&db, &captured.sketches).unwrap();
    assert_eq!(restricted.table("cities").unwrap().len(), 4); // t1..t4
    let engine = pbds.engine();
    let over_sketch = engine.execute(&restricted, &q2()).unwrap().relation;
    assert_eq!(over_sketch.value(0, "state"), Some(&Value::from("NY")));
    assert_eq!(over_sketch.value(0, "avgden"), Some(&Value::Float(7000.0)));
    // ... and is different from the true answer.
    let truth = pbds.execute(&q2()).unwrap().relation;
    assert!(!truth.bag_eq(&over_sketch));
}

#[test]
fn theorem1_static_check_flags_popden_unsafe_and_state_safe() {
    let pbds = Pbds::new(cities_db());
    assert!(
        pbds.check_safety(&q2(), &[PartitionAttr::new("cities", "state")])
            .safe
    );
    assert!(
        !pbds
            .check_safety(&q2(), &[PartitionAttr::new("cities", "popden")])
            .safe
    );
}

#[test]
fn example6_sum_having_query_popden_is_not_provably_safe() {
    // Q_popState = σ_{totden < 7000}(γ_{state; sum(popden) → totden}(cities)).
    let plan = LogicalPlan::scan("cities")
        .aggregate(
            vec!["state"],
            vec![AggExpr::new(AggFunc::Sum, col("popden"), "totden")],
        )
        .filter(col("totden").lt(lit(7000)));
    let pbds = Pbds::new(cities_db());
    assert!(
        !pbds
            .check_safety(&plan, &[PartitionAttr::new("cities", "popden")])
            .safe
    );
    assert!(
        pbds.check_safety(&plan, &[PartitionAttr::new("cities", "state")])
            .safe
    );
}

#[test]
fn example7_fig5_reuse_direction() {
    // T: SELECT state, count(city) cntcity FROM cities WHERE popden > $1
    //    GROUP BY state HAVING cntcity > $2
    let template = QueryTemplate::new(
        "fig5",
        LogicalPlan::scan("cities")
            .filter(col("popden").gt(param(0)))
            .aggregate(
                vec!["state"],
                vec![AggExpr::new(AggFunc::Count, col("city"), "cntcity")],
            )
            .filter(col("cntcity").gt(param(1))),
    );
    let pbds = Pbds::new(cities_db());
    // Q = (100, 10), Q' = (100, 15): reusable (Ex. 7).
    assert!(
        pbds.check_reuse(
            &template,
            &[Value::Int(100), Value::Int(10)],
            &[Value::Int(100), Value::Int(15)]
        )
        .reusable
    );
    // The opposite direction is not.
    assert!(
        !pbds
            .check_reuse(
                &template,
                &[Value::Int(100), Value::Int(15)],
                &[Value::Int(100), Value::Int(10)]
            )
            .reusable
    );
}

#[test]
fn example8_and_fig7_capture_intermediates() {
    // The capture run produces the ordinary answer of Q2 (Fig. 7d) and the
    // final sketch 1000 (Fig. 7b).
    let pbds = Pbds::new(cities_db());
    let captured = pbds.capture(&q2(), &[state_partition()]).unwrap();
    assert_eq!(captured.result.len(), 1);
    assert_eq!(captured.result.value(0, "state"), Some(&Value::from("CA")));
    assert_eq!(captured.sketches[0].bitset().to_string(), "1000");
}

#[test]
fn lemma5_adding_fragments_to_a_safe_sketch_keeps_the_result_correct() {
    let db = cities_db();
    let pbds = Pbds::new(db.clone());
    let captured = pbds.capture(&q2(), &[state_partition()]).unwrap();
    let mut widened = captured.sketches[0].clone();
    widened.add_fragment(2);
    let out = pbds
        .execute_with_sketches(&q2(), &[widened])
        .unwrap()
        .relation;
    assert!(out.bag_eq(&pbds.execute(&q2()).unwrap().relation));
}
