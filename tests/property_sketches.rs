//! Property-based tests (proptest) for the core PBDS invariants:
//! partitions cover the domain, sketches over-approximate provenance, sketch
//! instrumentation never changes results of safe queries, bitset algebra laws
//! hold, and the solver's validity answers are consistent with evaluation.

use pbds_algebra::{col, lit, AggExpr, AggFunc, LogicalPlan, SortKey};
use pbds_core::{PartitionAttr, Pbds};
use pbds_provenance::{Annotation, FragmentBitset, MergeStrategy};
use pbds_solver::{implies, CmpOp, Formula, LinExpr};
use pbds_storage::{DataType, Database, Partition, RangePartition, Schema, TableBuilder, Value};
use proptest::prelude::*;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Range partitions
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every non-null value maps to exactly one fragment, the fragment's range
    /// contains it, and binary search agrees with the linear lookup.
    #[test]
    fn partition_covers_domain(values in prop::collection::vec(-10_000i64..10_000, 2..300),
                               fragments in 1usize..40) {
        let vals: Vec<Value> = values.iter().map(|&v| Value::Int(v)).collect();
        if let Some(p) = RangePartition::equi_depth("t", "a", &vals, fragments) {
            prop_assert!(p.num_fragments() >= 1);
            for v in &vals {
                let f = p.fragment_of(v).unwrap();
                prop_assert!(f < p.num_fragments());
                prop_assert_eq!(Some(f), p.fragment_of_linear(v));
                prop_assert!(p.range_of(f).contains(v));
            }
            // Probe values outside the observed domain too.
            for probe in [-1_000_000i64, 1_000_000] {
                let v = Value::Int(probe);
                let f = p.fragment_of(&v).unwrap();
                prop_assert!(p.range_of(f).contains(&v));
            }
        }
    }

    /// Merged adjacent ranges cover exactly the rows of the selected
    /// fragments.
    #[test]
    fn merged_ranges_equal_fragment_union(values in prop::collection::vec(0i64..5_000, 10..200),
                                          fragments in 2usize..20,
                                          selected_bits in prop::collection::vec(any::<bool>(), 20)) {
        let vals: Vec<Value> = values.iter().map(|&v| Value::Int(v)).collect();
        if let Some(p) = RangePartition::equi_depth("t", "a", &vals, fragments) {
            let selected: Vec<usize> = (0..p.num_fragments())
                .filter(|&i| selected_bits.get(i).copied().unwrap_or(false))
                .collect();
            let merged = p.merged_ranges(&selected);
            for v in &vals {
                let in_fragments = selected.contains(&p.fragment_of(v).unwrap());
                let in_ranges = merged.iter().any(|r| r.contains(v));
                prop_assert_eq!(in_fragments, in_ranges);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Fragment bitsets
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// All merge strategies compute the same set union, and the union is a
    /// superset of both operands.
    #[test]
    fn bitset_union_laws(nbits in 1usize..300,
                         a in prop::collection::vec(any::<u16>(), 0..40),
                         b in prop::collection::vec(any::<u16>(), 0..40)) {
        let mut x = FragmentBitset::new(nbits);
        let mut y = FragmentBitset::new(nbits);
        for v in &a { x.set(*v as usize % nbits); }
        for v in &b { y.set(*v as usize % nbits); }
        let or1 = x.or(&y);
        let or2 = y.or(&x);
        prop_assert_eq!(&or1, &or2);
        let mut inplace = x.clone();
        inplace.or_assign(&y);
        prop_assert_eq!(&or1, &inplace);
        prop_assert!(x.is_subset_of(&or1));
        prop_assert!(y.is_subset_of(&or1));
        prop_assert_eq!(or1.count(), or1.ones().len());
    }

    /// Folding annotations with any strategy yields the same set of fragments.
    #[test]
    fn annotation_merge_strategies_agree(nbits in 1usize..200,
                                         frags in prop::collection::vec(any::<u16>(), 1..60)) {
        let frags: Vec<u32> = frags.iter().map(|&f| (f as usize % nbits) as u32).collect();
        let mut reference: Vec<usize> = frags.iter().map(|&f| f as usize).collect();
        reference.sort_unstable();
        reference.dedup();
        for strategy in [
            MergeStrategy::BytewiseBitor,
            MergeStrategy::Bitor,
            MergeStrategy::Delay,
            MergeStrategy::DelayNoCopy,
        ] {
            let mut acc = Annotation::Empty;
            for &f in &frags {
                acc.merge(&Annotation::Single(f), nbits, strategy);
            }
            prop_assert_eq!(acc.to_bitset(nbits).ones(), reference.clone());
        }
    }
}

// ---------------------------------------------------------------------------
// Sketches end-to-end
// ---------------------------------------------------------------------------

fn db_from_rows(rows: &[(i64, i64)]) -> Database {
    let schema = Schema::from_pairs(&[("grp", DataType::Int), ("v", DataType::Int)]);
    let mut b = TableBuilder::new("t", schema);
    b.block_size(16).index("grp");
    for (g, v) in rows {
        b.push(vec![Value::Int(*g), Value::Int(*v)]);
    }
    let mut db = Database::new();
    db.add_table(b.build());
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For randomly generated tables: the captured sketch of a top-1 /
    /// HAVING query on a safe attribute always (a) covers the accurate
    /// sketch and (b) yields the original result when used for skipping.
    #[test]
    fn sketches_are_supersets_and_safe(rows in prop::collection::vec((0i64..30, 1i64..100), 5..200),
                                       fragments in 1usize..12,
                                       threshold in 50i64..400) {
        let db = db_from_rows(&rows);
        let pbds = Pbds::new(db);
        let queries = vec![
            LogicalPlan::scan("t")
                .aggregate(vec!["grp"], vec![AggExpr::new(AggFunc::Sum, col("v"), "total")])
                .top_k(vec![SortKey::desc("total")], 1),
            LogicalPlan::scan("t")
                .aggregate(vec!["grp"], vec![AggExpr::new(AggFunc::Count, col("v"), "cnt")])
                .filter(col("cnt").gt(lit(3))),
            LogicalPlan::scan("t")
                .aggregate(vec!["grp"], vec![AggExpr::new(AggFunc::Sum, col("v"), "total")])
                .filter(col("total").gt(lit(threshold))),
        ];
        for plan in queries {
            prop_assert!(pbds.check_safety(&plan, &[PartitionAttr::new("t", "grp")]).safe);
            let partition = pbds.range_partition("t", "grp", fragments).unwrap();
            let captured = pbds.capture(&plan, std::slice::from_ref(&partition)).unwrap();
            let accurate = pbds.accurate_sketch(&plan, &partition).unwrap();
            prop_assert!(captured.sketches[0].is_superset_of(&accurate));
            let plain = pbds.execute(&plan).unwrap().relation;
            let fast = pbds.execute_with_sketches(&plan, &captured.sketches).unwrap().relation;
            prop_assert!(plain.bag_eq(&fast));
        }
    }

    /// The sketch of a selection-only query covers exactly the fragments of
    /// the qualifying rows, and restricting the database to any superset of
    /// those fragments preserves the result.
    #[test]
    fn selection_sketch_round_trip(rows in prop::collection::vec((0i64..50, 1i64..100), 5..150),
                                   bound in 1i64..100) {
        let db = db_from_rows(&rows);
        let pbds = Pbds::new(db);
        let plan = LogicalPlan::scan("t").filter(col("v").ge(lit(bound)));
        let partition = pbds.range_partition("t", "grp", 6).unwrap();
        let captured = pbds.capture(&plan, std::slice::from_ref(&partition)).unwrap();
        // Every qualifying row's fragment is in the sketch.
        let table = pbds.db().table("t").unwrap();
        for row in table.rows() {
            if row[1] >= Value::Int(bound) {
                let frag = partition.fragment_of_row(table.schema(), row).unwrap();
                prop_assert!(captured.sketches[0].selected_fragments().contains(&frag));
            }
        }
        let plain = pbds.execute(&plan).unwrap().relation;
        let fast = pbds.execute_with_sketches(&plan, &captured.sketches).unwrap().relation;
        prop_assert!(plain.bag_eq(&fast));
    }
}

// ---------------------------------------------------------------------------
// Solver consistency
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// If the solver claims `a <= c1 -> a <= c2` is valid, then c1 <= c2 must
    /// hold (and vice versa) — validity agrees with arithmetic.
    #[test]
    fn solver_interval_implication_matches_arithmetic(c1 in -500i64..500, c2 in -500i64..500) {
        let premise = Formula::cmp(LinExpr::var("a"), CmpOp::Le, LinExpr::constant(c1 as f64));
        let conclusion = Formula::cmp(LinExpr::var("a"), CmpOp::Le, LinExpr::constant(c2 as f64));
        prop_assert_eq!(implies(&premise, &conclusion), c1 <= c2);
    }

    /// Chained bounds: (a <= b ∧ b <= c1) -> a <= c2 is valid iff c1 <= c2.
    #[test]
    fn solver_transitive_bound(c1 in -200i64..200, c2 in -200i64..200) {
        let premise = Formula::and_all(vec![
            Formula::var_cmp_var("a", CmpOp::Le, "b"),
            Formula::cmp(LinExpr::var("b"), CmpOp::Le, LinExpr::constant(c1 as f64)),
        ]);
        let conclusion = Formula::cmp(LinExpr::var("a"), CmpOp::Le, LinExpr::constant(c2 as f64));
        prop_assert_eq!(implies(&premise, &conclusion), c1 <= c2);
    }
}

// ---------------------------------------------------------------------------
// Composite (PSMIX) partitions
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Composite partitions assign rows with equal keys to the same fragment
    /// and rows with different keys to different fragments.
    #[test]
    fn composite_partition_is_a_bijection_on_keys(rows in prop::collection::vec((0i64..8, 0i64..8), 2..100)) {
        let db = db_from_rows(&rows);
        let table = db.table("t").unwrap();
        let comp = pbds_storage::CompositePartition::build("t", table.schema(), table.rows(), &["grp", "v"]).unwrap();
        let part = Arc::new(Partition::Composite(comp));
        for a in table.rows() {
            for b in table.rows() {
                let fa = part.fragment_of_row(table.schema(), a).unwrap();
                let fb = part.fragment_of_row(table.schema(), b).unwrap();
                prop_assert_eq!(a == b || (a[0] == b[0] && a[1] == b[1]), fa == fb);
            }
        }
    }
}
