//! Cross-crate correctness checks: for every workload query, the captured
//! sketch must (a) be a superset of the accurate (lineage-derived) sketch and
//! (b) — when built over attributes the safety checker approves — produce
//! exactly the same query result when used for data skipping.

use pbds_core::{PartitionAttr, Pbds, UsePredicateStyle};
use pbds_provenance::restrict_database;
use pbds_workloads::{crimes, movies, sof, tpch, BenchQuery, SketchSpec};

fn build_partition(pbds: &Pbds, spec: &SketchSpec, fragments: usize) -> pbds_storage::PartitionRef {
    match spec {
        SketchSpec::Range { table, attr } => pbds.range_partition(table, attr, fragments).unwrap(),
        SketchSpec::Composite { table, attrs } => {
            let attrs: Vec<&str> = attrs.iter().map(|s| s.as_str()).collect();
            pbds.composite_partition(table, &attrs).unwrap()
        }
    }
}

fn check_query(pbds: &Pbds, query: &BenchQuery, fragments: usize) {
    let plan = query.default_plan();
    let partition = build_partition(pbds, &query.sketch, fragments);

    // (a) Captured sketch covers the accurate sketch.
    let captured = pbds
        .capture(&plan, std::slice::from_ref(&partition))
        .unwrap();
    let accurate = pbds.accurate_sketch(&plan, &partition).unwrap();
    assert!(
        captured.sketches[0].is_superset_of(&accurate),
        "{}: captured sketch misses provenance fragments",
        query.name
    );

    // The capture run also computes the plain result.
    let plain_out = pbds.execute(&plan).unwrap();
    let plain = plain_out.relation.clone();
    assert!(
        captured.result.bag_eq(&plain),
        "{}: capture result differs from plain execution",
        query.name
    );

    // (b) Safety check on the sketch attributes; when safe, the instrumented
    // query must return the plain result (both predicate styles), and so must
    // evaluating the query over the sketch-restricted database.
    let attrs: Vec<PartitionAttr> = match &query.sketch {
        SketchSpec::Range { table, attr } => vec![PartitionAttr::new(table.clone(), attr.clone())],
        SketchSpec::Composite { table, attrs } => attrs
            .iter()
            .map(|a| PartitionAttr::new(table.clone(), a.clone()))
            .collect(),
    };
    let safety = pbds.check_safety(&plan, &attrs);
    assert!(
        safety.safe,
        "{}: expected sketch attributes {:?} to be safe",
        query.name, attrs
    );

    for style in [
        UsePredicateStyle::BinarySearch,
        UsePredicateStyle::OrConditions,
    ] {
        let out = pbds
            .execute_with_sketches_styled(&plan, &captured.sketches, style)
            .unwrap();
        assert!(
            out.relation.bag_eq(&plain),
            "{}: instrumented query ({style:?}) returned a different result",
            query.name
        );
        // Runtime top-k re-validation (footnote 1, Sec. 5): whenever the
        // plain execution fed at least k rows into a top-k operator, the
        // sketch-restricted execution must do so as well.
        if plain_out.stats.topk_safety_revalidated() {
            assert!(
                out.stats.topk_safety_revalidated(),
                "{}: top-k runtime re-validation failed",
                query.name
            );
        }
    }

    let restricted = restrict_database(pbds.db(), &captured.sketches).unwrap();
    let over_instance = pbds.engine().execute(&restricted, &plan).unwrap().relation;
    assert!(
        over_instance.bag_eq(&plain),
        "{}: evaluating over the sketch instance D_P changed the result",
        query.name
    );
}

#[test]
fn tpch_queries_sketches_are_safe_and_correct() {
    let db = tpch::generate(&tpch::TpchConfig {
        scale: 0.002,
        seed: 3,
        block_size: 128,
    });
    let pbds = Pbds::new(db);
    for query in tpch::queries() {
        for fragments in [32, 256] {
            check_query(&pbds, &query, fragments);
        }
    }
}

#[test]
fn movies_queries_sketches_are_safe_and_correct() {
    let db = movies::generate(&movies::MoviesConfig {
        movies: 400,
        ratings: 15_000,
        ..Default::default()
    });
    let pbds = Pbds::new(db);
    for query in movies::queries() {
        check_query(&pbds, &query, 64);
    }
}

#[test]
fn sof_queries_sketches_are_safe_and_correct() {
    let db = sof::generate(&sof::SofConfig {
        users: 1_000,
        posts: 8_000,
        comments: 10_000,
        badges: 4_000,
        ..Default::default()
    });
    let pbds = Pbds::new(db);
    for query in sof::queries() {
        check_query(&pbds, &query, 128);
    }
}

#[test]
fn crimes_queries_with_composite_sketches_are_safe_and_correct() {
    let db = crimes::generate(&crimes::CrimesConfig {
        rows: 15_000,
        ..Default::default()
    });
    let pbds = Pbds::new(db);
    for query in crimes::queries() {
        check_query(&pbds, &query, 1);
    }
}

#[test]
fn columnar_profile_also_returns_correct_results_with_sketches() {
    // MonetDB-like profile: no skipping, but the sketch filter must not
    // change any result.
    let db = movies::generate(&movies::MoviesConfig {
        movies: 300,
        ratings: 10_000,
        ..Default::default()
    });
    let pbds = Pbds::with_profile(db, pbds_core::EngineProfile::ColumnarScan);
    for query in movies::queries() {
        let plan = query.default_plan();
        let partition = build_partition(&pbds, &query.sketch, 64);
        let captured = pbds.capture(&plan, &[partition]).unwrap();
        let plain = pbds.execute(&plan).unwrap().relation;
        let fast = pbds
            .execute_with_sketches(&plan, &captured.sketches)
            .unwrap()
            .relation;
        assert!(plain.bag_eq(&fast), "{}", query.name);
    }
}
