//! Differential testing of the execution engine.
//!
//! The lineage-capturing evaluator in `pbds-provenance` is an independent
//! implementation of the same bag-relational-algebra semantics as the engine
//! in `pbds-exec`. Running both over randomized databases and a family of
//! query shapes and comparing results catches semantic drift in either one.
//! The engine profiles (indexed vs columnar) must also agree with each other.

use pbds_algebra::{col, lit, AggExpr, AggFunc, LogicalPlan, SortKey};
use pbds_core::{Engine, EngineProfile};
use pbds_provenance::capture_lineage;
use pbds_storage::{DataType, Database, Schema, TableBuilder, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_db(seed: u64, rows: usize) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = Schema::from_pairs(&[
        ("k", DataType::Int),
        ("grp", DataType::Int),
        ("v", DataType::Int),
        ("name", DataType::Str),
    ]);
    let mut b = TableBuilder::new("r", schema);
    b.block_size(32).index("k");
    for i in 0..rows {
        b.push(vec![
            Value::Int(i as i64),
            Value::Int(rng.gen_range(0..10)),
            Value::Int(rng.gen_range(-50..50)),
            Value::from(format!("n{}", rng.gen_range(0..5))),
        ]);
    }
    let schema_s = Schema::from_pairs(&[("grp_id", DataType::Int), ("weight", DataType::Int)]);
    let mut s = TableBuilder::new("s", schema_s);
    for g in 0..10i64 {
        s.push(vec![Value::Int(g), Value::Int(rng.gen_range(1..5))]);
    }
    let mut db = Database::new();
    db.add_table(b.build());
    db.add_table(s.build());
    db
}

/// A family of query shapes covering every operator.
fn query_family() -> Vec<LogicalPlan> {
    vec![
        // Plain selection + projection.
        LogicalPlan::scan("r")
            .filter(col("v").gt(lit(0)).and(col("grp").le(lit(5))))
            .project(vec![(col("k"), "k"), (col("v").mul(lit(2)), "v2")]),
        // Group-by aggregation with every aggregate function.
        LogicalPlan::scan("r").aggregate(
            vec!["grp"],
            vec![
                AggExpr::new(AggFunc::Count, col("k"), "cnt"),
                AggExpr::new(AggFunc::Sum, col("v"), "sum_v"),
                AggExpr::new(AggFunc::Avg, col("v"), "avg_v"),
                AggExpr::new(AggFunc::Min, col("v"), "min_v"),
                AggExpr::new(AggFunc::Max, col("v"), "max_v"),
            ],
        ),
        // HAVING.
        LogicalPlan::scan("r")
            .aggregate(
                vec!["grp"],
                vec![AggExpr::new(AggFunc::Sum, col("v"), "total")],
            )
            .filter(col("total").gt(lit(10))),
        // Top-k over an aggregate.
        LogicalPlan::scan("r")
            .aggregate(
                vec!["grp"],
                vec![AggExpr::new(AggFunc::Count, col("k"), "cnt")],
            )
            .top_k(vec![SortKey::desc("cnt")], 3),
        // Join + aggregate.
        LogicalPlan::scan("r")
            .join(LogicalPlan::scan("s"), "grp", "grp_id")
            .aggregate(
                vec!["weight"],
                vec![AggExpr::new(AggFunc::Count, col("k"), "cnt")],
            ),
        // Distinct projection.
        LogicalPlan::scan("r")
            .project(vec![(col("grp"), "grp"), (col("name"), "name")])
            .distinct(),
        // Union.
        LogicalPlan::scan("r")
            .filter(col("v").gt(lit(25)))
            .project(vec![(col("k"), "k")])
            .union(
                LogicalPlan::scan("r")
                    .filter(col("v").lt(lit(-25)))
                    .project(vec![(col("k"), "k")]),
            ),
        // Cross product of two small aggregates.
        LogicalPlan::scan("r")
            .aggregate(vec![], vec![AggExpr::new(AggFunc::Max, col("v"), "mx")])
            .cross(
                LogicalPlan::scan("r")
                    .aggregate(vec![], vec![AggExpr::new(AggFunc::Min, col("v"), "mn")]),
            ),
        // Two-level aggregation.
        LogicalPlan::scan("r")
            .aggregate(
                vec!["grp"],
                vec![AggExpr::new(AggFunc::Count, col("k"), "cnt")],
            )
            .filter(col("cnt").ge(lit(3)))
            .aggregate(
                vec![],
                vec![AggExpr::new(AggFunc::Count, col("grp"), "groups")],
            ),
    ]
}

#[test]
fn engine_agrees_with_lineage_evaluator_on_random_databases() {
    for seed in 0..5u64 {
        let db = random_db(seed, 300);
        let engine = Engine::new(EngineProfile::Indexed);
        for (i, plan) in query_family().iter().enumerate() {
            let fast = engine.execute(&db, plan).unwrap().relation;
            let reference = capture_lineage(&db, plan).unwrap().relation;
            assert!(
                fast.bag_eq(&reference),
                "seed {seed}, query #{i}: engine and lineage evaluator disagree\n{}",
                plan.display_tree()
            );
        }
    }
}

#[test]
fn engine_profiles_agree_on_random_databases() {
    for seed in 10..14u64 {
        let db = random_db(seed, 500);
        let indexed = Engine::new(EngineProfile::Indexed);
        let columnar = Engine::new(EngineProfile::ColumnarScan);
        for (i, plan) in query_family().iter().enumerate() {
            let a = indexed.execute(&db, plan).unwrap().relation;
            let b = columnar.execute(&db, plan).unwrap().relation;
            assert!(a.bag_eq(&b), "seed {seed}, query #{i}: profiles disagree");
        }
    }
}

#[test]
fn range_predicates_use_access_paths_and_agree_with_full_scans() {
    let mut rng = StdRng::seed_from_u64(77);
    let db = random_db(123, 2_000);
    let indexed = Engine::new(EngineProfile::Indexed);
    let columnar = Engine::new(EngineProfile::ColumnarScan);
    for _ in 0..20 {
        let lo = rng.gen_range(0..1_800i64);
        let hi = lo + rng.gen_range(0..200i64);
        let plan = LogicalPlan::scan("r")
            .filter(col("k").between(lit(lo), lit(hi)))
            .aggregate(vec![], vec![AggExpr::new(AggFunc::Count, col("k"), "cnt")]);
        let a = indexed.execute(&db, &plan).unwrap();
        let b = columnar.execute(&db, &plan).unwrap();
        assert!(a.relation.bag_eq(&b.relation));
        // The indexed profile must touch at most as many rows as the full scan.
        assert!(a.stats.rows_scanned <= b.stats.rows_scanned);
    }
}

#[test]
fn top_k_is_a_prefix_of_the_full_ordering() {
    let db = random_db(5, 400);
    let engine = Engine::new(EngineProfile::Indexed);
    let full = LogicalPlan::scan("r")
        .aggregate(
            vec!["grp"],
            vec![AggExpr::new(AggFunc::Sum, col("v"), "total")],
        )
        .top_k(vec![SortKey::desc("total")], 100);
    let top3 = LogicalPlan::scan("r")
        .aggregate(
            vec!["grp"],
            vec![AggExpr::new(AggFunc::Sum, col("v"), "total")],
        )
        .top_k(vec![SortKey::desc("total")], 3);
    let full_rows = engine.execute(&db, &full).unwrap().relation;
    let top_rows = engine.execute(&db, &top3).unwrap().relation;
    assert_eq!(top_rows.len(), 3);
    assert_eq!(&full_rows.rows()[..3], top_rows.rows());
}

#[test]
fn aggregate_values_match_a_hand_computation() {
    let db = random_db(21, 200);
    let engine = Engine::new(EngineProfile::Indexed);
    let plan = LogicalPlan::scan("r").aggregate(
        vec!["grp"],
        vec![
            AggExpr::new(AggFunc::Count, col("k"), "cnt"),
            AggExpr::new(AggFunc::Sum, col("v"), "sum_v"),
        ],
    );
    let out = engine.execute(&db, &plan).unwrap().relation;
    // Hand-compute from the base table.
    let table = db.table("r").unwrap();
    let mut counts = std::collections::HashMap::new();
    let mut sums = std::collections::HashMap::new();
    for row in table.rows() {
        let g = row[1].as_i64().unwrap();
        *counts.entry(g).or_insert(0i64) += 1;
        *sums.entry(g).or_insert(0i64) += row[2].as_i64().unwrap();
    }
    assert_eq!(out.len(), counts.len());
    for row in out.rows() {
        let g = row[0].as_i64().unwrap();
        assert_eq!(row[1], Value::Int(counts[&g]));
        assert_eq!(row[2], Value::Int(sums[&g]));
    }
}
