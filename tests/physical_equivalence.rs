//! Logical-vs-physical equivalence tests.
//!
//! The physical operator pipeline (`pbds_exec::physical`) is the only
//! production interpreter of query plans. To guard it against semantic
//! drift, this suite re-implements the bag-relational-algebra semantics as a
//! deliberately naive *oracle* interpreter (no access paths, no batches, no
//! pushdown) and checks that lowering + pipeline execution produce identical
//! relations and row counts for every query shape of `engine_semantics.rs`,
//! under both engine profiles.
//!
//! A second group asserts capture equivalence: the sketches produced by the
//! unified pipeline (capture as a tag-policy *mode*) still match the paper's
//! worked examples — the values the seed's standalone capture interpreter
//! produced — for every capture configuration and on both profiles.

use pbds_algebra::{col, lit, AggExpr, AggFunc, LogicalPlan, SortKey};
use pbds_exec::{
    eval_expr, eval_predicate, execute_logical_parallel_with, execute_logical_with, Engine,
    EngineProfile, ExecError, ExecOptions, ExecStats,
};
use pbds_provenance::{
    capture_lineage, capture_sketches_with_profile, CaptureConfig, FragmentAssigner, LookupMethod,
    MergeStrategy, ProvenanceSketch, SketchTagPolicy,
};
use pbds_storage::{
    DataType, Database, Partition, PartitionRef, RangePartition, Relation, Row, Schema,
    TableBuilder, Value,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// The oracle: a direct, materializing interpreter of the logical algebra.
// ---------------------------------------------------------------------------

fn oracle(db: &Database, plan: &LogicalPlan) -> Result<Relation, ExecError> {
    let rows = oracle_rows(db, plan)?;
    Ok(Relation::new(plan.schema(db)?, rows))
}

fn oracle_rows(db: &Database, plan: &LogicalPlan) -> Result<Vec<Row>, ExecError> {
    match plan {
        LogicalPlan::TableScan { table } => Ok(db.table(table)?.rows().to_vec()),
        LogicalPlan::Selection { predicate, input } => {
            let schema = input.schema(db)?;
            let mut out = Vec::new();
            for row in oracle_rows(db, input)? {
                if eval_predicate(predicate, &schema, &row)? {
                    out.push(row);
                }
            }
            Ok(out)
        }
        LogicalPlan::Projection { exprs, input } => {
            let schema = input.schema(db)?;
            oracle_rows(db, input)?
                .into_iter()
                .map(|row| {
                    exprs
                        .iter()
                        .map(|(e, _)| eval_expr(e, &schema, &row))
                        .collect()
                })
                .collect()
        }
        LogicalPlan::Aggregate {
            group_by,
            aggregates,
            input,
        } => {
            let schema = input.schema(db)?;
            let group_idx: Vec<usize> = group_by
                .iter()
                .map(|g| {
                    schema
                        .index_of(g)
                        .ok_or_else(|| ExecError::UnknownColumn(g.clone()))
                })
                .collect::<Result<_, _>>()?;
            let mut order: Vec<Vec<Value>> = Vec::new();
            let mut members: Vec<Vec<Row>> = Vec::new();
            for row in oracle_rows(db, input)? {
                let key: Vec<Value> = group_idx.iter().map(|&i| row[i].clone()).collect();
                match order.iter().position(|k| *k == key) {
                    Some(i) => members[i].push(row),
                    None => {
                        order.push(key);
                        members.push(vec![row]);
                    }
                }
            }
            if order.is_empty() && group_by.is_empty() {
                let row = aggregates
                    .iter()
                    .map(|a| match a.func {
                        AggFunc::Count => Value::Int(0),
                        _ => Value::Null,
                    })
                    .collect();
                return Ok(vec![row]);
            }
            let mut out = Vec::with_capacity(order.len());
            for (key, rows) in order.into_iter().zip(members) {
                let mut result = key;
                for agg in aggregates {
                    let vals: Vec<Value> = rows
                        .iter()
                        .map(|r| eval_expr(&agg.input, &schema, r))
                        .collect::<Result<_, _>>()?;
                    result.push(pbds_provenance::lineage::aggregate_value(agg.func, &vals));
                }
                out.push(result);
            }
            Ok(out)
        }
        LogicalPlan::Join {
            left,
            right,
            left_col,
            right_col,
        } => {
            let ls = left.schema(db)?;
            let rs = right.schema(db)?;
            let li = ls
                .index_of(left_col)
                .ok_or_else(|| ExecError::UnknownColumn(left_col.clone()))?;
            let ri = rs
                .index_of(right_col)
                .ok_or_else(|| ExecError::UnknownColumn(right_col.clone()))?;
            let lrows = oracle_rows(db, left)?;
            let rrows = oracle_rows(db, right)?;
            let mut out = Vec::new();
            for lrow in &lrows {
                if lrow[li].is_null() {
                    continue;
                }
                for rrow in &rrows {
                    if !rrow[ri].is_null() && lrow[li] == rrow[ri] {
                        let mut row = lrow.clone();
                        row.extend(rrow.iter().cloned());
                        out.push(row);
                    }
                }
            }
            Ok(out)
        }
        LogicalPlan::CrossProduct { left, right } => {
            let lrows = oracle_rows(db, left)?;
            let rrows = oracle_rows(db, right)?;
            let mut out = Vec::new();
            for lrow in &lrows {
                for rrow in &rrows {
                    let mut row = lrow.clone();
                    row.extend(rrow.iter().cloned());
                    out.push(row);
                }
            }
            Ok(out)
        }
        LogicalPlan::Distinct { input } => {
            let mut out: Vec<Row> = Vec::new();
            for row in oracle_rows(db, input)? {
                if !out.contains(&row) {
                    out.push(row);
                }
            }
            Ok(out)
        }
        LogicalPlan::TopK {
            order_by,
            limit,
            input,
        } => {
            let schema = input.schema(db)?;
            let key_idx: Vec<(usize, bool)> = order_by
                .iter()
                .map(|k| {
                    schema
                        .index_of(&k.column)
                        .map(|i| (i, k.descending))
                        .ok_or_else(|| ExecError::UnknownColumn(k.column.clone()))
                })
                .collect::<Result<_, _>>()?;
            let mut rows = oracle_rows(db, input)?;
            rows.sort_by(|a, b| {
                for &(idx, desc) in &key_idx {
                    let ord = a[idx].cmp(&b[idx]);
                    let ord = if desc { ord.reverse() } else { ord };
                    if !ord.is_eq() {
                        return ord;
                    }
                }
                a.cmp(b)
            });
            rows.truncate(*limit);
            Ok(rows)
        }
        LogicalPlan::Union { left, right } => {
            let mut rows = oracle_rows(db, left)?;
            rows.extend(oracle_rows(db, right)?);
            Ok(rows)
        }
    }
}

// ---------------------------------------------------------------------------
// Shared fixtures (mirroring engine_semantics.rs and the paper examples).
// ---------------------------------------------------------------------------

fn random_db(seed: u64, rows: usize) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = Schema::from_pairs(&[
        ("k", DataType::Int),
        ("grp", DataType::Int),
        ("v", DataType::Int),
        ("name", DataType::Str),
    ]);
    let mut b = TableBuilder::new("r", schema);
    b.block_size(32).index("k");
    // Runny, small-domain columns so the columnar build picks real encodings
    // (RLE runs over `grp`, frame-of-reference packing over `k`/`v`, RLE over
    // dict codes for `name`) and the oracle comparison below also covers the
    // encoded kernels and the aggregation pushdown over them. Occasional
    // NULLs exercise the null fix-up passes.
    let mut grp = rng.gen_range(0..10i64);
    let mut name = rng.gen_range(0..5u32);
    for i in 0..rows {
        if rng.gen_range(0..5) == 0 {
            grp = rng.gen_range(0..10);
        }
        if rng.gen_range(0..7) == 0 {
            name = rng.gen_range(0..5);
        }
        b.push(vec![
            Value::Int(i as i64),
            Value::Int(grp),
            if rng.gen_range(0..30) == 0 {
                Value::Null
            } else {
                Value::Int(rng.gen_range(-50..50))
            },
            Value::from(format!("n{name}")),
        ]);
    }
    let schema_s = Schema::from_pairs(&[("grp_id", DataType::Int), ("weight", DataType::Int)]);
    let mut s = TableBuilder::new("s", schema_s);
    for g in 0..10i64 {
        s.push(vec![Value::Int(g), Value::Int(rng.gen_range(1..5))]);
    }
    let mut db = Database::new();
    db.add_table(b.build());
    db.add_table(s.build());
    db
}

/// The `engine_semantics.rs` query family: one query per operator shape.
fn query_family() -> Vec<LogicalPlan> {
    vec![
        LogicalPlan::scan("r")
            .filter(col("v").gt(lit(0)).and(col("grp").le(lit(5))))
            .project(vec![(col("k"), "k"), (col("v").mul(lit(2)), "v2")]),
        LogicalPlan::scan("r").aggregate(
            vec!["grp"],
            vec![
                AggExpr::new(AggFunc::Count, col("k"), "cnt"),
                AggExpr::new(AggFunc::Sum, col("v"), "sum_v"),
                AggExpr::new(AggFunc::Avg, col("v"), "avg_v"),
                AggExpr::new(AggFunc::Min, col("v"), "min_v"),
                AggExpr::new(AggFunc::Max, col("v"), "max_v"),
            ],
        ),
        LogicalPlan::scan("r")
            .aggregate(
                vec!["grp"],
                vec![AggExpr::new(AggFunc::Sum, col("v"), "total")],
            )
            .filter(col("total").gt(lit(10))),
        LogicalPlan::scan("r")
            .aggregate(
                vec!["grp"],
                vec![AggExpr::new(AggFunc::Count, col("k"), "cnt")],
            )
            .top_k(vec![SortKey::desc("cnt")], 3),
        LogicalPlan::scan("r")
            .join(LogicalPlan::scan("s"), "grp", "grp_id")
            .aggregate(
                vec!["weight"],
                vec![AggExpr::new(AggFunc::Count, col("k"), "cnt")],
            ),
        LogicalPlan::scan("r")
            .project(vec![(col("grp"), "grp"), (col("name"), "name")])
            .distinct(),
        LogicalPlan::scan("r")
            .filter(col("v").gt(lit(25)))
            .project(vec![(col("k"), "k")])
            .union(
                LogicalPlan::scan("r")
                    .filter(col("v").lt(lit(-25)))
                    .project(vec![(col("k"), "k")]),
            ),
        LogicalPlan::scan("r")
            .aggregate(vec![], vec![AggExpr::new(AggFunc::Max, col("v"), "mx")])
            .cross(
                LogicalPlan::scan("r")
                    .aggregate(vec![], vec![AggExpr::new(AggFunc::Min, col("v"), "mn")]),
            ),
        LogicalPlan::scan("r")
            .aggregate(
                vec!["grp"],
                vec![AggExpr::new(AggFunc::Count, col("k"), "cnt")],
            )
            .filter(col("cnt").ge(lit(3)))
            .aggregate(
                vec![],
                vec![AggExpr::new(AggFunc::Count, col("grp"), "groups")],
            ),
        // Range predicates that exercise the index / zone-map access paths.
        LogicalPlan::scan("r")
            .filter(col("k").between(lit(40), lit(160)))
            .aggregate(vec![], vec![AggExpr::new(AggFunc::Count, col("k"), "cnt")]),
        LogicalPlan::scan("r")
            .filter(col("k").ge(lit(10)))
            .filter(col("k").le(lit(120)))
            .top_k(vec![SortKey::asc("v"), SortKey::desc("k")], 7),
    ]
}

#[test]
fn pipeline_matches_direct_evaluation_on_every_query_and_profile() {
    for seed in 0..4u64 {
        let db = random_db(seed, 300);
        for profile in [EngineProfile::Indexed, EngineProfile::ColumnarScan] {
            let engine = Engine::new(profile);
            for (i, plan) in query_family().iter().enumerate() {
                let expected = oracle(&db, plan).unwrap();
                let actual = engine.execute(&db, plan).unwrap().relation;
                assert_eq!(
                    actual.len(),
                    expected.len(),
                    "seed {seed}, query #{i}, {profile:?}: row counts differ\n{}",
                    plan.display_tree()
                );
                assert!(
                    actual.bag_eq(&expected),
                    "seed {seed}, query #{i}, {profile:?}: relations differ\n{}",
                    plan.display_tree()
                );
            }
        }
    }
}

/// The random fixture must actually hit the encoded kernels, or the oracle
/// comparisons above prove nothing about them.
#[test]
fn random_db_produces_encoded_chunks() {
    let db = random_db(0, 300);
    let chunks = db.table("r").unwrap().columnar_chunks();
    let encoded: usize = chunks.chunks().iter().map(|c| c.encoded_columns()).sum();
    assert!(encoded > 0, "fixture produced no encoded chunk-columns");
}

#[test]
fn pipeline_reports_errors_like_the_oracle() {
    let db = random_db(1, 50);
    let bad_plans = vec![
        LogicalPlan::scan("missing"),
        LogicalPlan::scan("r").filter(col("nope").gt(lit(1))),
        LogicalPlan::scan("r").aggregate(
            vec!["nope"],
            vec![AggExpr::new(AggFunc::Count, col("k"), "cnt")],
        ),
        LogicalPlan::scan("r").top_k(vec![SortKey::asc("nope")], 2),
    ];
    let engine = Engine::new(EngineProfile::Indexed);
    for plan in bad_plans {
        let oracle_err = oracle(&db, &plan);
        let engine_err = engine.execute(&db, &plan);
        assert!(oracle_err.is_err() && engine_err.is_err(), "both must fail");
    }
}

// ---------------------------------------------------------------------------
// Capture equivalence: the unified pipeline reproduces the seed capture
// results on the paper's worked examples.
// ---------------------------------------------------------------------------

fn cities_db() -> Database {
    let schema = Schema::from_pairs(&[
        ("popden", DataType::Int),
        ("city", DataType::Str),
        ("state", DataType::Str),
    ]);
    let mut b = TableBuilder::new("cities", schema);
    b.block_size(2);
    for (popden, city, state) in [
        (4200, "Anchorage", "AK"),
        (6000, "San Diego", "CA"),
        (5000, "Sacramento", "CA"),
        (7000, "New York", "NY"),
        (2000, "Buffalo", "NY"),
        (3700, "Austin", "TX"),
        (2500, "Houston", "TX"),
    ] {
        b.push(vec![
            Value::Int(popden),
            Value::from(city),
            Value::from(state),
        ]);
    }
    let mut db = Database::new();
    db.add_table(b.build());
    db
}

fn state_partition() -> PartitionRef {
    Arc::new(Partition::Range(RangePartition::from_uppers(
        "cities",
        "state",
        vec![Value::from("DE"), Value::from("MI"), Value::from("OK")],
    )))
}

fn popden_partition() -> PartitionRef {
    Arc::new(Partition::Range(RangePartition::from_uppers(
        "cities",
        "popden",
        vec![Value::Int(4000)],
    )))
}

fn q2() -> LogicalPlan {
    LogicalPlan::scan("cities")
        .aggregate(
            vec!["state"],
            vec![AggExpr::new(AggFunc::Avg, col("popden"), "avgden")],
        )
        .top_k(vec![SortKey::desc("avgden")], 1)
}

fn all_configs() -> Vec<CaptureConfig> {
    vec![
        CaptureConfig::naive(),
        CaptureConfig::optimized(),
        CaptureConfig {
            lookup: LookupMethod::BinarySearch,
            merge: MergeStrategy::Delay,
            minmax_narrowing: false,
        },
        CaptureConfig {
            lookup: LookupMethod::CaseLinear,
            merge: MergeStrategy::Bitor,
            minmax_narrowing: true,
        },
    ]
}

#[test]
fn unified_pipeline_reproduces_seed_capture_on_paper_examples() {
    let db = cities_db();
    for profile in [EngineProfile::Indexed, EngineProfile::ColumnarScan] {
        for config in all_configs() {
            // Ex. 3: the sketch of Q2 on the state partition is {f1}.
            let res =
                capture_sketches_with_profile(&db, &q2(), &[state_partition()], &config, profile)
                    .unwrap();
            assert_eq!(
                res.sketches[0].selected_fragments(),
                vec![0],
                "{profile:?} {config:?}"
            );
            assert_eq!(res.sketches[0].bitset().to_string(), "1000");
            assert_eq!(res.result.value(0, "state"), Some(&Value::from("CA")));

            // Ex. 5: the popden-partition sketch of Q2 is {g2}.
            let res =
                capture_sketches_with_profile(&db, &q2(), &[popden_partition()], &config, profile)
                    .unwrap();
            assert_eq!(
                res.sketches[0].selected_fragments(),
                vec![1],
                "{profile:?} {config:?}"
            );
        }
    }
}

#[test]
fn captured_sketches_cover_lineage_on_both_profiles() {
    let db = cities_db();
    let queries = vec![
        q2(),
        LogicalPlan::scan("cities")
            .filter(col("popden").gt(lit(2400)))
            .aggregate(
                vec!["state"],
                vec![AggExpr::new(AggFunc::Count, col("city"), "cnt")],
            )
            .filter(col("cnt").gt(lit(1))),
        // No min/max-narrowed aggregate here: narrowing deliberately keeps
        // only the witness fragment, which under-approximates full Lineage
        // while remaining safe (covered by the dedicated test below).
    ];
    let table_schema = db.table("cities").unwrap().schema().clone();
    for plan in queries {
        let lineage = capture_lineage(&db, &plan).unwrap();
        let accurate = ProvenanceSketch::from_rows(
            state_partition(),
            &table_schema,
            lineage
                .rows_of("cities")
                .into_iter()
                .map(|rid| db.table("cities").unwrap().rows()[rid as usize].clone()),
        );
        for profile in [EngineProfile::Indexed, EngineProfile::ColumnarScan] {
            for config in all_configs() {
                let res = capture_sketches_with_profile(
                    &db,
                    &plan,
                    &[state_partition()],
                    &config,
                    profile,
                )
                .unwrap();
                assert!(
                    res.sketches[0].is_superset_of(&accurate),
                    "sketch must cover lineage ({profile:?}, {config:?})\n{}",
                    plan.display_tree()
                );
            }
        }
    }
}

#[test]
fn minmax_narrowing_still_selects_only_the_witness_fragment() {
    let db = cities_db();
    let plan = LogicalPlan::scan("cities")
        .aggregate(vec![], vec![AggExpr::new(AggFunc::Max, col("popden"), "m")]);
    for profile in [EngineProfile::Indexed, EngineProfile::ColumnarScan] {
        let narrowed = capture_sketches_with_profile(
            &db,
            &plan,
            &[state_partition()],
            &CaptureConfig::optimized(),
            profile,
        )
        .unwrap();
        // The max row (New York, 7000) is in fragment f3 (index 2).
        assert_eq!(narrowed.sketches[0].selected_fragments(), vec![2]);
        let full = capture_sketches_with_profile(
            &db,
            &plan,
            &[state_partition()],
            &CaptureConfig {
                minmax_narrowing: false,
                ..CaptureConfig::optimized()
            },
            profile,
        )
        .unwrap();
        assert_eq!(full.sketches[0].num_selected(), 3);
    }
}

// ---------------------------------------------------------------------------
// Vectorized vs row-interpreter scan path: byte-identical rows *and* tags.
// ---------------------------------------------------------------------------

/// Run one plan through both scan paths and assert the result relations are
/// identical row for row (not just bag-equal) with equal tag vectors.
fn assert_paths_identical<P>(
    db: &Database,
    plan: &LogicalPlan,
    profile: EngineProfile,
    workers: usize,
    policy: &P,
    context: &str,
) where
    P: pbds_exec::TagPolicy + Sync,
    P::Tag: Send + PartialEq + std::fmt::Debug,
{
    let run = |vectorized: bool| {
        // Adaptive lowering off: the A/B must pin each arm to its path so the
        // vectorized arm really exercises the bitmap kernels and the
        // scan→aggregate pushdown rather than adaptively re-picking the row
        // loop (both arms of the adaptive decision are row/tag-identical by
        // construction — this test is what proves it for each pinned path).
        let opts = ExecOptions {
            vectorized,
            adaptive: false,
            ..ExecOptions::default()
        };
        let mut stats = ExecStats::default();
        let out = if workers > 1 {
            execute_logical_parallel_with(db, plan, profile, policy, workers, opts, &mut stats)
        } else {
            execute_logical_with(db, plan, profile, policy, opts, &mut stats)
        }
        .unwrap();
        (out, stats)
    };
    let ((rel_row, tags_row), stats_row) = run(false);
    let ((rel_vec, tags_vec), stats_vec) = run(true);
    assert_eq!(
        rel_row,
        rel_vec,
        "{context}: relations differ between scan paths\n{}",
        plan.display_tree()
    );
    assert_eq!(
        tags_row,
        tags_vec,
        "{context}: tags differ between scan paths\n{}",
        plan.display_tree()
    );
    // The machine-independent scan accounting must agree too.
    assert_eq!(stats_row.rows_scanned, stats_vec.rows_scanned, "{context}");
    assert_eq!(stats_row.full_scans, stats_vec.full_scans, "{context}");
    assert_eq!(stats_row.index_scans, stats_vec.index_scans, "{context}");
    assert_eq!(
        stats_row.blocks_skipped, stats_vec.blocks_skipped,
        "{context}"
    );
}

#[test]
fn vectorized_path_is_byte_identical_for_plain_execution() {
    for seed in 0..3u64 {
        let db = random_db(seed, 300);
        for profile in [EngineProfile::Indexed, EngineProfile::ColumnarScan] {
            for workers in [1usize, 4] {
                for (i, plan) in query_family().iter().enumerate() {
                    assert_paths_identical(
                        &db,
                        plan,
                        profile,
                        workers,
                        &pbds_exec::NoTag,
                        &format!("seed {seed}, query #{i}, {profile:?}, workers {workers}"),
                    );
                }
            }
        }
    }
}

#[test]
fn vectorized_path_is_byte_identical_for_sketch_capture_tags() {
    let db = random_db(11, 300);
    let part: PartitionRef = Arc::new(Partition::Range(RangePartition::from_uppers(
        "r",
        "grp",
        vec![Value::Int(2), Value::Int(5), Value::Int(7)],
    )));
    let config = CaptureConfig::optimized();
    let assigners = vec![FragmentAssigner::new(part, config.lookup)];
    let policy = SketchTagPolicy::new(&assigners, &config);
    for profile in [EngineProfile::Indexed, EngineProfile::ColumnarScan] {
        for workers in [1usize, 4] {
            for (i, plan) in query_family().iter().enumerate() {
                assert_paths_identical(
                    &db,
                    plan,
                    profile,
                    workers,
                    &policy,
                    &format!("capture query #{i}, {profile:?}, workers {workers}"),
                );
            }
        }
    }
}

#[test]
fn capture_result_relation_matches_plain_execution() {
    let db = random_db(7, 250);
    let part: PartitionRef = Arc::new(Partition::Range(RangePartition::from_uppers(
        "r",
        "grp",
        vec![Value::Int(2), Value::Int(5), Value::Int(7)],
    )));
    for profile in [EngineProfile::Indexed, EngineProfile::ColumnarScan] {
        let engine = Engine::new(profile);
        for (i, plan) in query_family().iter().enumerate() {
            let plain = engine.execute(&db, plan).unwrap().relation;
            let captured = capture_sketches_with_profile(
                &db,
                plan,
                std::slice::from_ref(&part),
                &CaptureConfig::optimized(),
                profile,
            )
            .unwrap();
            assert!(
                plain.bag_eq(&captured.result),
                "query #{i}, {profile:?}: capture by-product differs from execution"
            );
        }
    }
}
