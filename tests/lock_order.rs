//! Integration tests for the `pbds-sync` lock-order (would-be-deadlock)
//! checker: a deliberate ABBA interleaving must be caught deterministically
//! — with both lock names in the panic — and the lock-ordered re-run of the
//! same workload must pass. Also checks that hold-time counters surface
//! through `RobustnessEvents`.
//!
//! All assertions are gated on `pbds::sync::tracking_enabled()`: in a
//! release build without the `lock-order` feature the wrappers are
//! passthroughs and the ABBA scenario would genuinely deadlock, so the
//! tests skip themselves there. CI runs this suite in release with
//! `--features lock-order` to cover the tracked release configuration.

use std::sync::{Arc, Barrier};

use pbds::sync::{tracking_enabled, TrackedMutex};

/// The classic ABBA deadlock, forced deterministically with a barrier:
/// thread 1 establishes the order A → B and only then (barrier) does
/// thread 2 attempt B → A. The checker panics at thread 2's second
/// acquisition — before it would block — naming both lock classes.
#[test]
fn abba_interleaving_is_caught_deterministically_with_both_names() {
    if !tracking_enabled() {
        eprintln!("lock-order tracking off (release without feature); skipping");
        return;
    }
    let a = Arc::new(TrackedMutex::new("test.lockorder.abba.A", 0u32));
    let b = Arc::new(TrackedMutex::new("test.lockorder.abba.B", 0u32));
    let barrier = Arc::new(Barrier::new(2));

    let t1 = {
        let (a, b, barrier) = (Arc::clone(&a), Arc::clone(&b), Arc::clone(&barrier));
        std::thread::spawn(move || {
            {
                let _ga = a.lock();
                let _gb = b.lock(); // records the edge A → B
            }
            barrier.wait(); // only now may thread 2 try the reverse
        })
    };
    let t2 = {
        let (a, b, barrier) = (Arc::clone(&a), Arc::clone(&b), Arc::clone(&barrier));
        std::thread::spawn(move || {
            barrier.wait();
            let _gb = b.lock();
            let _ga = a.lock(); // would-be ABBA: must panic, not deadlock
        })
    };

    t1.join().expect("thread 1 uses the consistent order");
    let err = t2
        .join()
        .expect_err("thread 2's reverse acquisition must panic deterministically");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "<non-string panic payload>".to_string());
    assert!(msg.contains("lock-order violation"), "panic message: {msg}");
    assert!(
        msg.contains("test.lockorder.abba.A") && msg.contains("test.lockorder.abba.B"),
        "panic must name both lock classes: {msg}"
    );
}

/// The lock-ordered re-run of the same two-thread workload: both threads
/// acquire A then B, overlapping (barrier between first and second
/// acquisition), and nothing panics.
#[test]
fn lock_ordered_rerun_passes() {
    let a = Arc::new(TrackedMutex::new("test.lockorder.ordered.A", 0u32));
    let b = Arc::new(TrackedMutex::new("test.lockorder.ordered.B", 0u32));
    let barrier = Arc::new(Barrier::new(2));

    let threads: Vec<_> = (0..2)
        .map(|_| {
            let (a, b, barrier) = (Arc::clone(&a), Arc::clone(&b), Arc::clone(&barrier));
            std::thread::spawn(move || {
                for _ in 0..4 {
                    barrier.wait(); // race both threads into the same order
                    let mut ga = a.lock();
                    *ga += 1;
                    let mut gb = b.lock();
                    *gb += 1;
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("consistent A -> B order never panics");
    }
    assert_eq!(*a.lock(), 8);
    assert_eq!(*b.lock(), 8);
}

/// Hold-time counters from the migrated server lock sites surface through
/// `RobustnessEvents::lock_holds`.
#[test]
fn server_lock_holds_surface_in_robustness_events() {
    use pbds::core::{Mutation, PbdsServer, ServerConfig};
    use pbds::storage::{DataType, Database, Schema, TableBuilder, Value};

    if !tracking_enabled() {
        eprintln!("lock-order tracking off (release without feature); skipping");
        return;
    }

    let schema = Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)]);
    let mut b = TableBuilder::new("t", schema);
    b.push(vec![Value::Int(1), Value::Int(10)]);
    let mut db = Database::new();
    db.add_table(b.build());
    let server = PbdsServer::new(Arc::new(db), ServerConfig::default());
    server
        .apply_mutation(
            "t",
            Mutation::Append(vec![vec![Value::Int(2), Value::Int(20)]]),
        )
        .unwrap();
    server.drain();

    let holds = server.robustness_events().lock_holds;
    assert!(!holds.is_empty(), "tracked builds report hold stats");
    for expected in ["server.db", "server.mutation", "server.ticket"] {
        let stat = holds
            .iter()
            .find(|h| h.name == expected)
            .unwrap_or_else(|| panic!("lock class {expected} missing from {holds:?}"));
        assert!(stat.acquisitions > 0);
        assert!(stat.total_held >= stat.max_held);
    }
}
