//! End-to-end tests of the self-tuning framework (Sec. 9.5): correctness of
//! every strategy on mixed-template workloads, sketch reuse accumulation, and
//! the work-saving effect of PBDS measured through engine counters.

use pbds_algebra::QueryTemplate;
use pbds_core::{Action, EngineProfile, SelfTuningExecutor, Strategy};
use pbds_storage::Value;
use pbds_workloads::{crimes, normal, sof};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn sof_db() -> pbds_storage::Database {
    sof::generate(&sof::SofConfig {
        users: 1_500,
        posts: 10_000,
        comments: 12_000,
        badges: 5_000,
        ..Default::default()
    })
}

fn sof_workload(n: usize, mean: f64, sdv: f64, seed: u64) -> Vec<(QueryTemplate, Vec<Value>)> {
    let templates = sof::end_to_end_templates();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let t = templates[rng.gen_range(0..templates.len())].clone();
            (
                t,
                vec![Value::Int(normal(&mut rng, mean, sdv).max(1.0) as i64)],
            )
        })
        .collect()
}

#[test]
fn all_strategies_return_identical_results_for_every_query() {
    let db = sof_db();
    let workload = sof_workload(40, 30.0, 4.0, 11);
    let strategies = [
        ("no-ps", Strategy::NoPbds),
        (
            "eager",
            Strategy::Eager {
                selectivity_threshold: 0.75,
            },
        ),
        (
            "adaptive",
            Strategy::Adaptive {
                selectivity_threshold: 0.75,
                evidence_threshold: 2,
            },
        ),
    ];
    let mut results: Vec<Vec<usize>> = Vec::new();
    for (_, strategy) in strategies {
        let mut exec = SelfTuningExecutor::new(&db, EngineProfile::Indexed, strategy, 200);
        let records = exec.run_workload(&workload).unwrap();
        results.push(records.iter().map(|r| r.result_rows).collect());
    }
    assert_eq!(results[0], results[1], "eager changed some query result");
    assert_eq!(results[0], results[2], "adaptive changed some query result");
}

#[test]
fn eager_strategy_accumulates_reuse_and_saves_scanned_rows() {
    let db = sof_db();
    // Clustered parameters: most instances can share a handful of sketches.
    let workload = sof_workload(60, 35.0, 3.0, 5);

    let mut no_ps = SelfTuningExecutor::new(&db, EngineProfile::Indexed, Strategy::NoPbds, 200);
    let baseline = no_ps.run_workload(&workload).unwrap();

    let mut eager = SelfTuningExecutor::new(
        &db,
        EngineProfile::Indexed,
        Strategy::Eager {
            selectivity_threshold: 0.75,
        },
        200,
    );
    let records = eager.run_workload(&workload).unwrap();
    let reused = records
        .iter()
        .filter(|r| r.action == Action::UseSketch)
        .count();
    let captured = records
        .iter()
        .filter(|r| r.action == Action::Capture)
        .count();
    assert!(captured >= 1, "eager never captured a sketch");
    assert!(
        reused > workload.len() / 2,
        "expected most instances to reuse a sketch, got {reused}/{}",
        workload.len()
    );
    // Reused executions scan fewer rows than the plain baseline overall
    // (capture runs do not skip, so compare only the sketch-using tail).
    let eager_rows: u64 = records
        .iter()
        .filter(|r| r.action == Action::UseSketch)
        .map(|r| r.stats.rows_scanned)
        .sum();
    let baseline_tail: u64 = baseline
        .iter()
        .zip(&records)
        .filter(|(_, e)| e.action == Action::UseSketch)
        .map(|(b, _)| b.stats.rows_scanned)
        .sum();
    assert!(
        eager_rows < baseline_tail,
        "sketch-using executions did not reduce scanned rows ({eager_rows} vs {baseline_tail})"
    );
}

#[test]
fn adaptive_strategy_captures_fewer_sketches_than_eager_on_spread_parameters() {
    let db = sof_db();
    // Widely spread parameters: eager captures many sketches, adaptive waits
    // for evidence and captures fewer.
    let workload = sof_workload(50, 30.0, 20.0, 17);
    let run = |strategy| {
        let mut exec = SelfTuningExecutor::new(&db, EngineProfile::Indexed, strategy, 200);
        let records = exec.run_workload(&workload).unwrap();
        records
            .iter()
            .filter(|r| r.action == Action::Capture)
            .count()
    };
    let eager_caps = run(Strategy::Eager {
        selectivity_threshold: 0.75,
    });
    let adaptive_caps = run(Strategy::Adaptive {
        selectivity_threshold: 0.75,
        evidence_threshold: 4,
    });
    assert!(
        adaptive_caps <= eager_caps,
        "adaptive captured more sketches ({adaptive_caps}) than eager ({eager_caps})"
    );
}

#[test]
fn crimes_mixed_template_workload_is_correct_under_eager() {
    let db = crimes::generate(&crimes::CrimesConfig {
        rows: 12_000,
        ..Default::default()
    });
    let templates = crimes::end_to_end_templates();
    let mut rng = StdRng::seed_from_u64(3);
    let workload: Vec<(QueryTemplate, Vec<Value>)> = (0..30)
        .map(|_| {
            let t = templates[rng.gen_range(0..templates.len())].clone();
            let binding: Vec<Value> = (0..t.num_params())
                .map(|i| {
                    if i == 0 {
                        Value::Int(normal(&mut rng, 150.0, 40.0).max(1.0) as i64)
                    } else {
                        Value::Int(rng.gen_range(0..20))
                    }
                })
                .collect();
            (t, binding)
        })
        .collect();

    let mut plain = SelfTuningExecutor::new(&db, EngineProfile::Indexed, Strategy::NoPbds, 64);
    let baseline = plain.run_workload(&workload).unwrap();
    let mut eager = SelfTuningExecutor::new(
        &db,
        EngineProfile::Indexed,
        Strategy::Eager {
            selectivity_threshold: 0.75,
        },
        64,
    );
    let records = eager.run_workload(&workload).unwrap();
    for (b, e) in baseline.iter().zip(&records) {
        assert_eq!(
            b.result_rows, e.result_rows,
            "template {} diverged",
            b.template
        );
    }
}

#[test]
fn columnar_profile_self_tuning_is_also_correct() {
    let db = sof_db();
    let workload = sof_workload(20, 30.0, 4.0, 29);
    let mut plain =
        SelfTuningExecutor::new(&db, EngineProfile::ColumnarScan, Strategy::NoPbds, 200);
    let baseline = plain.run_workload(&workload).unwrap();
    let mut eager = SelfTuningExecutor::new(
        &db,
        EngineProfile::ColumnarScan,
        Strategy::Eager {
            selectivity_threshold: 0.75,
        },
        200,
    );
    let records = eager.run_workload(&workload).unwrap();
    for (b, e) in baseline.iter().zip(&records) {
        assert_eq!(b.result_rows, e.result_rows);
    }
}
